"""Document wrapper: node table, per-tag streams and document order.

The structural-join algorithms (TwigJoin, Staircase join) do not navigate
the tree; they scan *streams*: for each element tag, the sorted (by
``pre``) list of elements with that tag.  :class:`IndexedDocument` builds
these streams once per document, together with a dense array of all
nodes indexed by ``pre`` number.

Since the columnar refactor the class is a *two-way facade* over
:class:`~repro.xmltree.columnar.ColumnarDocument`:

tree-first
    built from a parsed :class:`DocumentNode` (the historical path);
    the node table and streams are built eagerly as before, and the
    integer columns the join inner loops scan are derived lazily on
    first access to :attr:`columns`.
column-first
    built from a :class:`ColumnarDocument` — typically mmap-opened from
    a saved index file via :meth:`IndexedDocument.open`.  The joins run
    directly on the integer columns; the object tree (and every
    node-level accessor: :attr:`root`, :attr:`nodes_by_pre`,
    :attr:`tag_streams`, …) is materialized lazily, in one linear pass
    with no re-parse and no re-indexing, the first time something
    actually needs node objects (usually result serialization).

Either way, every consumer of the old API — the seven strategies, the
path summary, the prefilter, serve, trace — sees the same attributes
with the same meaning.

The module also provides :func:`ddo` — sorting by document order with
duplicate elimination — the dynamic counterpart of the special function
``fs:distinct-doc-order`` that the paper's normalization inserts.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left, bisect_right
from operator import attrgetter
from typing import Iterable, Optional, Sequence, Union

from .columnar import (KIND_ATTRIBUTE, KIND_DOCUMENT, KIND_ELEMENT,
                       ColumnarDocument, StorageError)
from .node import AttributeNode, DocumentNode, ElementNode, Node, TextNode
from .parser import parse_xml

_PRE_KEY = attrgetter("pre")


class IndexedDocument:
    """A parsed document plus the indexes the join algorithms need.

    Construct with a parsed ``root`` (tree-first) or a ``columns``
    store (column-first) — exactly one of the two.
    """

    def __init__(self, root: Optional[DocumentNode] = None, *,
                 columns: Optional[ColumnarDocument] = None) -> None:
        if (root is None) == (columns is None):
            raise ValueError(
                "IndexedDocument takes exactly one of root= or columns=")
        self._root = root
        self._columns = columns
        self._nodes_by_pre: Optional[list[Node]] = None
        self._pres: Optional[list[int]] = None
        self._tag_streams: Optional[dict[str, list[ElementNode]]] = None
        self._tag_pres: Optional[dict[str, Sequence[int]]] = None
        self._attribute_streams: Optional[
            dict[str, list[AttributeNode]]] = None
        self._text_stream: Optional[list[TextNode]] = None
        self._summary = None
        self._summary_lock = threading.Lock()
        self._columns_lock = threading.Lock()
        self._tree_lock = threading.Lock()
        self._store_kind = "object" if root is not None else "columnar"
        if root is not None:
            self._build()
        else:
            # Streams of pre numbers come straight from the columns; no
            # node object exists until something dereferences one.
            self._tag_pres = columns.tag_pres

    @classmethod
    def from_string(cls, text: str, uri: str = "") -> "IndexedDocument":
        return cls(parse_xml(text, uri))

    @classmethod
    def open(cls, path: Union[str, os.PathLike],
             verify: bool = True) -> "IndexedDocument":
        """Open a saved columnar index file (see
        :meth:`ColumnarDocument.open`): O(1) mmap, no re-parse."""
        return cls(columns=ColumnarDocument.open(path, verify=verify))

    def save(self, path: Union[str, os.PathLike]) -> int:
        """Persist the document's columnar form to ``path``; returns
        the byte size written."""
        return self.columns.save(path)

    # -- store identity -----------------------------------------------------

    @property
    def store_kind(self) -> str:
        """``"columnar"`` when column-first (opened from a saved index
        or built from a :class:`ColumnarDocument`), ``"object"`` when
        built from a parsed tree."""
        return self._store_kind

    # -- lazy column derivation (tree-first documents) -----------------------

    @property
    def columns(self) -> ColumnarDocument:
        """The document's integer-column form (see
        :mod:`repro.xmltree.columnar`), the representation the
        staircase/twig join inner loops scan.

        Column-first documents carry it from birth; tree-first
        documents derive it lazily, exactly once (double-check
        locked), from the dense node table.
        """
        if self._columns is None:
            with self._columns_lock:
                if self._columns is None:
                    self._columns = ColumnarDocument.from_nodes(
                        self._nodes_by_pre, uri=self._root.uri)
        return self._columns

    @property
    def has_columns(self) -> bool:
        """True when the columnar form already exists (no build cost
        behind :attr:`columns`)."""
        return self._columns is not None

    # -- lazy tree materialization (column-first documents) ------------------

    @property
    def root(self) -> DocumentNode:
        if self._root is None:
            self._materialize()
        return self._root

    @property
    def nodes_by_pre(self) -> list[Node]:
        if self._nodes_by_pre is None:
            self._materialize()
        return self._nodes_by_pre

    @property
    def tag_streams(self) -> dict[str, list[ElementNode]]:
        if self._tag_streams is None:
            self._materialize()
        return self._tag_streams

    @property
    def tag_pres(self) -> dict[str, Sequence[int]]:
        # Available without any node object in both modes.
        return self._tag_pres

    @property
    def attribute_streams(self) -> dict[str, list[AttributeNode]]:
        if self._attribute_streams is None:
            self._materialize()
        return self._attribute_streams

    @property
    def text_stream(self) -> list[TextNode]:
        if self._text_stream is None:
            self._materialize()
        return self._text_stream

    def _build(self) -> None:
        table: list[Node] = []
        stack: list[Node] = [self._root]
        while stack:
            node = stack.pop()
            table.append(node)
            if isinstance(node, ElementNode):
                for attribute in node.attributes:
                    table.append(attribute)
            stack.extend(reversed(node.children))
        table.sort(key=_PRE_KEY)
        self._nodes_by_pre = table
        tag_streams: dict[str, list[ElementNode]] = {}
        attribute_streams: dict[str, list[AttributeNode]] = {}
        text_stream: list[TextNode] = []
        for node in table:
            if isinstance(node, ElementNode):
                tag_streams.setdefault(node.name, []).append(node)
            elif isinstance(node, AttributeNode):
                attribute_streams.setdefault(node.name, []).append(node)
            elif isinstance(node, TextNode):
                text_stream.append(node)
        self._tag_streams = tag_streams
        self._attribute_streams = attribute_streams
        self._text_stream = text_stream
        self._tag_pres = {
            tag: [element.pre for element in stream]
            for tag, stream in tag_streams.items()
        }

    def _materialize(self) -> None:
        """Rebuild the object tree from the columns: one linear pass,
        region numbers copied straight from the columns — no XML
        parse, no :func:`~repro.xmltree.node.assign_regions`, no sort.

        Double-check locked so concurrent first dereferences (a serve
        worker pool serializing its first results) materialize once.
        """
        with self._tree_lock:
            if self._nodes_by_pre is not None:
                return
            columns = self._columns
            if columns is None:
                raise StorageError(
                    "document store was closed before its node tree "
                    "was materialized", check="closed")
            kind_col = columns.kind
            post_col = columns.post
            level_col = columns.level
            end_col = columns.end
            parent_col = columns.parent
            n = columns.n
            table: list[Node] = []
            tag_streams: dict[str, list[ElementNode]] = {}
            attribute_streams: dict[str, list[AttributeNode]] = {}
            text_stream: list[TextNode] = []
            root: Optional[DocumentNode] = None
            for pre in range(n):
                kind = kind_col[pre]
                node: Node
                if kind == KIND_ELEMENT:
                    node = ElementNode(columns.name_of(pre))
                    tag_streams.setdefault(node.name, []).append(node)
                elif kind == KIND_ATTRIBUTE:
                    node = AttributeNode(columns.name_of(pre),
                                         columns.text_of(pre))
                    attribute_streams.setdefault(node.name,
                                                 []).append(node)
                elif kind == KIND_DOCUMENT:
                    node = DocumentNode(columns.uri)
                    root = node
                else:
                    node = TextNode(columns.text_of(pre))
                    text_stream.append(node)
                node.pre = pre
                node.post = post_col[pre]
                node.level = level_col[pre]
                node.end = end_col[pre]
                parent_pre = parent_col[pre]
                if parent_pre >= 0:
                    parent = table[parent_pre]
                    node.parent = parent
                    if kind == KIND_ATTRIBUTE:
                        parent._attributes.append(node)
                    else:
                        parent._children.append(node)
                table.append(node)
            if root is None:
                raise StorageError("column store has no document node",
                                   check="root", path=columns.path)
            # Publish the complete structures in one step; readers that
            # race past the lock see either nothing or everything.
            self._tag_streams = tag_streams
            self._attribute_streams = attribute_streams
            self._text_stream = text_stream
            self._root = root
            self._nodes_by_pre = table

    # -- stream access ------------------------------------------------------

    @property
    def size(self) -> int:
        """Total node count — answered from the columns when the node
        table does not exist yet."""
        if self._nodes_by_pre is not None:
            return len(self._nodes_by_pre)
        return self._columns.n

    def stream(self, tag: str) -> list[ElementNode]:
        """All elements with ``tag``, sorted by ``pre``."""
        return self.tag_streams.get(tag, [])

    def all_elements(self) -> list[ElementNode]:
        return [node for node in self.nodes_by_pre
                if isinstance(node, ElementNode)]

    def stream_in_region(self, tag: str, context: Node,
                         include_self: bool = False) -> list[ElementNode]:
        """Elements with ``tag`` inside the subtree of ``context``.

        Performs a binary search on the integer tag stream to the start
        of the context's region, then slices the containment interval —
        the ``log(|input|)`` index lookup cost per step that Section 5.3
        of the paper attributes to the stream-based algorithms.  Only
        the nodes inside the slice are dereferenced.
        """
        pres = self._tag_pres.get(tag)
        if not pres:
            return []
        low_key = context.pre if include_self else context.pre + 1
        low = bisect_left(pres, low_key)
        high = bisect_right(pres, context.end)
        if low >= high:
            return []
        stream = self.tag_streams[tag]
        return stream[low:high]

    @property
    def summary(self):
        """The document's structural path summary (see
        :mod:`repro.xmltree.summary`), built on first access and cached
        for the document's lifetime — documents are immutable, so the
        summary never needs invalidation.

        The build is double-check locked: concurrent first accesses
        (e.g. a :mod:`repro.serve` worker pool warming one document)
        build the summary exactly once, and the fast path after that
        stays a single attribute read.
        """
        if self._summary is None:
            with self._summary_lock:
                if self._summary is None:
                    from .summary import PathSummary
                    self._summary = PathSummary(self)
        return self._summary

    def node_at(self, pre: int) -> Node:
        """The node with the given ``pre`` number.

        O(1) by construction on densely numbered tables (the normal
        case: :func:`~repro.xmltree.node.assign_regions` numbers every
        node, attributes included, consecutively).  If the table is
        *not* dense — e.g. a document wrapped around a re-rooted
        fragment that kept its original numbers — the lookup degrades
        to a binary search instead of silently returning the wrong
        node.  Unknown ``pre`` values raise :class:`KeyError`, never
        :class:`IndexError` and never a negative-index alias.
        """
        table = self.nodes_by_pre
        if 0 <= pre < len(table):
            node = table[pre]
            if node.pre == pre:
                return node
        if pre >= 0:
            # Sparse table: fall back to bisect over the sorted pres.
            if self._pres is None:
                self._pres = [node.pre for node in table]
            index = bisect_left(self._pres, pre)
            if index < len(table) and table[index].pre == pre:
                return table[index]
        raise KeyError(f"no node with pre={pre}")

    def close(self) -> None:
        """Release the mmap behind a column-first document (no-op for
        tree-first documents).

        The integer streams are detached into plain lists first, so a
        document whose object tree was already materialized keeps
        answering queries (it simply becomes an ordinary in-memory
        document)."""
        if self._columns is not None and self._columns.is_mapped:
            self._tag_pres = {tag: list(stream)
                              for tag, stream in self._tag_pres.items()}
            self._columns.close()
            self._columns = None


def document_order(nodes: Iterable[Node]) -> list[Node]:
    """Sort nodes by document order (within one tree)."""
    return sorted(nodes, key=_PRE_KEY)


def ddo(nodes: Iterable[Node]) -> list[Node]:
    """Distinct-doc-order: sort by document order and drop duplicates.

    Duplicates are determined by ``pre`` number, which coincides with
    node identity inside a single tree (the paper's setting) and stays
    correct when the same logical node is reachable through both the
    object table and a columnar materialization.
    """
    ordered = sorted(nodes, key=_PRE_KEY)
    result: list[Node] = []
    previous = -1
    for node in ordered:
        if node.pre != previous:
            result.append(node)
            previous = node.pre
    return result


def is_distinct_doc_ordered(nodes: Sequence[Node]) -> bool:
    """True if the sequence is strictly increasing in document order."""
    return all(nodes[index].pre < nodes[index + 1].pre
               for index in range(len(nodes) - 1))
