"""Document wrapper: node table, per-tag streams and document order.

The structural-join algorithms (TwigJoin, Staircase join) do not navigate
the tree; they scan *streams*: for each element tag, the sorted (by
``pre``) list of elements with that tag.  :class:`IndexedDocument` builds
these streams once per document, together with a dense array of all
nodes indexed by ``pre`` number.

The module also provides :func:`ddo` — sorting by document order with
duplicate elimination — the dynamic counterpart of the special function
``fs:distinct-doc-order`` that the paper's normalization inserts.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right
from typing import Iterable, Sequence

from .node import AttributeNode, DocumentNode, ElementNode, Node, TextNode
from .parser import parse_xml


class IndexedDocument:
    """A parsed document plus the indexes the join algorithms need."""

    def __init__(self, root: DocumentNode) -> None:
        self.root = root
        self.nodes_by_pre: list[Node] = []
        self.tag_streams: dict[str, list[ElementNode]] = {}
        self.tag_pres: dict[str, list[int]] = {}
        self.attribute_streams: dict[str, list[AttributeNode]] = {}
        self.text_stream: list[TextNode] = []
        self._summary = None
        self._summary_lock = threading.Lock()
        self._build()

    @classmethod
    def from_string(cls, text: str, uri: str = "") -> "IndexedDocument":
        return cls(parse_xml(text, uri))

    def _build(self) -> None:
        table: list[Node] = []
        stack: list[Node] = [self.root]
        while stack:
            node = stack.pop()
            table.append(node)
            if isinstance(node, ElementNode):
                for attribute in node.attributes:
                    table.append(attribute)
            stack.extend(reversed(node.children))
        table.sort(key=lambda item: item.pre)
        self.nodes_by_pre = table
        for node in table:
            if isinstance(node, ElementNode):
                self.tag_streams.setdefault(node.name, []).append(node)
            elif isinstance(node, AttributeNode):
                self.attribute_streams.setdefault(node.name, []).append(node)
            elif isinstance(node, TextNode):
                self.text_stream.append(node)
        self.tag_pres = {
            tag: [element.pre for element in stream]
            for tag, stream in self.tag_streams.items()
        }

    # -- stream access ------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.nodes_by_pre)

    def stream(self, tag: str) -> list[ElementNode]:
        """All elements with ``tag``, sorted by ``pre``."""
        return self.tag_streams.get(tag, [])

    def all_elements(self) -> list[ElementNode]:
        return [node for node in self.nodes_by_pre if isinstance(node, ElementNode)]

    def stream_in_region(self, tag: str, context: Node,
                         include_self: bool = False) -> list[ElementNode]:
        """Elements with ``tag`` inside the subtree of ``context``.

        Performs a binary search on the tag stream to the start of the
        context's region, then slices the containment interval — the
        ``log(|input|)`` index lookup cost per step that Section 5.3 of
        the paper attributes to the stream-based algorithms.
        """
        stream = self.tag_streams.get(tag)
        if not stream:
            return []
        pres = self.tag_pres[tag]
        low_key = context.pre if include_self else context.pre + 1
        low = bisect_left(pres, low_key)
        high = bisect_right(pres, context.end)
        return stream[low:high]

    @property
    def summary(self):
        """The document's structural path summary (see
        :mod:`repro.xmltree.summary`), built on first access and cached
        for the document's lifetime — documents are immutable, so the
        summary never needs invalidation.

        The build is double-check locked: concurrent first accesses
        (e.g. a :mod:`repro.serve` worker pool warming one document)
        build the summary exactly once, and the fast path after that
        stays a single attribute read.
        """
        if self._summary is None:
            with self._summary_lock:
                if self._summary is None:
                    from .summary import PathSummary
                    self._summary = PathSummary(self)
        return self._summary

    def node_at(self, pre: int) -> Node:
        node = self.nodes_by_pre[pre]
        if node.pre != pre:
            raise KeyError(f"no node with pre={pre}")
        return node


def document_order(nodes: Iterable[Node]) -> list[Node]:
    """Sort nodes by document order (within one tree)."""
    return sorted(nodes, key=lambda node: node.pre)


def ddo(nodes: Iterable[Node]) -> list[Node]:
    """Distinct-doc-order: sort by document order and drop duplicates.

    Duplicates are determined by node identity; the input may mix nodes
    from a single tree only (the paper's setting).
    """
    ordered = sorted(nodes, key=lambda node: node.pre)
    result: list[Node] = []
    previous: Node | None = None
    for node in ordered:
        if node is not previous:
            result.append(node)
        previous = node
    return result


def is_distinct_doc_ordered(nodes: Sequence[Node]) -> bool:
    """True if the sequence is strictly increasing in document order."""
    return all(nodes[index].pre < nodes[index + 1].pre
               for index in range(len(nodes) - 1))
