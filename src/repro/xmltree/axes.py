"""XPath axis navigation primitives.

Each axis is a function from a single context node to the sequence of
nodes on that axis, *in axis order* (forward axes in document order,
reverse axes in reverse document order, per the XPath 1.0/2.0 data
model).  These primitives are what the navigational ``TreeJoin`` operator
and the NLJoin tree-pattern strategy execute directly; the index-based
strategies (TwigJoin, SCJoin) bypass them in favour of per-tag streams.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Iterator, List

from .node import AttributeNode, DocumentNode, ElementNode, Node
from .nodetest import NodeTest


class Axis(str, Enum):
    """All axes supported by the engine."""

    CHILD = "child"
    DESCENDANT = "descendant"
    DESCENDANT_OR_SELF = "descendant-or-self"
    SELF = "self"
    ATTRIBUTE = "attribute"
    PARENT = "parent"
    ANCESTOR = "ancestor"
    ANCESTOR_OR_SELF = "ancestor-or-self"
    FOLLOWING_SIBLING = "following-sibling"
    PRECEDING_SIBLING = "preceding-sibling"
    FOLLOWING = "following"
    PRECEDING = "preceding"

    @property
    def is_forward(self) -> bool:
        return self not in _REVERSE_AXES

    @property
    def is_reverse(self) -> bool:
        return self in _REVERSE_AXES

    @property
    def principal_kind(self) -> str:
        return "attribute" if self is Axis.ATTRIBUTE else "element"

    @property
    def is_downward(self) -> bool:
        """True for the axes allowed inside tree patterns."""
        return self in (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF,
                        Axis.SELF, Axis.ATTRIBUTE)

    def __str__(self) -> str:
        return self.value


_REVERSE_AXES = frozenset({
    Axis.PARENT, Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF,
    Axis.PRECEDING_SIBLING, Axis.PRECEDING,
})


def _children(node: Node) -> Iterator[Node]:
    return iter(node.children)


def _descendants(node: Node) -> Iterator[Node]:
    return node.iter_descendants()


def _descendants_or_self(node: Node) -> Iterator[Node]:
    return node.iter_descendants_or_self()


def _self(node: Node) -> Iterator[Node]:
    yield node


def _attributes(node: Node) -> Iterator[Node]:
    if isinstance(node, ElementNode):
        yield from node.attributes


def _parent(node: Node) -> Iterator[Node]:
    if node.parent is not None:
        yield node.parent


def _ancestors(node: Node) -> Iterator[Node]:
    return node.iter_ancestors()


def _ancestors_or_self(node: Node) -> Iterator[Node]:
    yield node
    yield from node.iter_ancestors()


def _siblings(node: Node) -> List[Node]:
    if node.parent is None or isinstance(node, AttributeNode):
        return []
    return list(node.parent.children)


def _following_siblings(node: Node) -> Iterator[Node]:
    siblings = _siblings(node)
    emit = False
    for sibling in siblings:
        if emit:
            yield sibling
        elif sibling is node:
            emit = True


def _preceding_siblings(node: Node) -> Iterator[Node]:
    collected: list[Node] = []
    for sibling in _siblings(node):
        if sibling is node:
            break
        collected.append(sibling)
    return iter(reversed(collected))


def _following(node: Node) -> Iterator[Node]:
    """Nodes after the end of ``node``'s subtree, excluding ancestors."""
    current: Node | None = node
    while current is not None:
        for sibling in _following_siblings(current):
            yield from sibling.iter_descendants_or_self()
        current = current.parent


def _preceding(node: Node) -> Iterator[Node]:
    """Nodes entirely before ``node``, excluding ancestors, reverse order."""
    collected: list[Node] = []
    current: Node | None = node
    while current is not None:
        before: list[Node] = []
        for sibling in _siblings(current):
            if sibling is current:
                break
            before.append(sibling)
        for sibling in before:
            collected.extend(sibling.iter_descendants_or_self())
        current = current.parent
    collected.sort(key=lambda item: item.pre)
    return iter(reversed(collected))


_AXIS_FUNCTIONS: dict[Axis, Callable[[Node], Iterator[Node]]] = {
    Axis.CHILD: _children,
    Axis.DESCENDANT: _descendants,
    Axis.DESCENDANT_OR_SELF: _descendants_or_self,
    Axis.SELF: _self,
    Axis.ATTRIBUTE: _attributes,
    Axis.PARENT: _parent,
    Axis.ANCESTOR: _ancestors,
    Axis.ANCESTOR_OR_SELF: _ancestors_or_self,
    Axis.FOLLOWING_SIBLING: _following_siblings,
    Axis.PRECEDING_SIBLING: _preceding_siblings,
    Axis.FOLLOWING: _following,
    Axis.PRECEDING: _preceding,
}


def axis_nodes(node: Node, axis: Axis) -> Iterator[Node]:
    """All nodes on ``axis`` from ``node``, in axis order."""
    return _AXIS_FUNCTIONS[axis](node)


def step(node: Node, axis: Axis, test: NodeTest) -> list[Node]:
    """Evaluate one location step from a single context node.

    Returns nodes in axis order (document order for forward axes); with a
    single context node the result is duplicate-free by construction.
    """
    kind = axis.principal_kind
    return [candidate for candidate in axis_nodes(node, axis)
            if test.matches(candidate, kind)]


def axis_from_string(text: str) -> Axis:
    try:
        return Axis(text)
    except ValueError as error:
        raise ValueError(f"unknown axis {text!r}") from error
