"""Structural path summary (a DataGuide over tag paths).

A :class:`PathSummary` is built from an :class:`IndexedDocument` in one
pass and never invalidated (documents are immutable).  It maps every
distinct root-to-node *tag path* — the tuple of element names from the
document element down to a node — to its statistics: how many elements
share the path, the depth range of the subtrees below it, which child
tags, attributes and text occur under it.

Two consumers sit on top:

* the **pattern prefilter** (:meth:`PathSummary.can_match`): decide,
  without touching a single document node, whether a pattern path could
  possibly embed into the document.  Child steps are matched exactly
  against the summary trie; descendant steps through summary
  reachability.  The answer is *conservative*: ``False`` is proof that
  the pattern has no match (so the physical algorithms can return empty
  immediately), ``True`` only means "maybe".
* **selectivity estimation** (:meth:`PathSummary.pattern_volume`):
  per-query-node candidate cardinalities for the cost model of
  :mod:`repro.physical.cost`, replacing flat document-wide tag counts.

Both are memoized per (pattern, start point): the prefilter runs once
per ``TupleTreePattern`` evaluation, which happens per input tuple.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional,
                    Set, Tuple, Union)

from .axes import Axis
from .node import (AttributeNode, DocumentNode, ElementNode, Node, TextNode)
from .nodetest import (AnyKindTest, ElementTest, NameTest, TextTest,
                       WildcardTest)

if TYPE_CHECKING:  # pattern imports xmltree; keep this one-directional.
    from ..pattern import PatternPath

__all__ = ["PathStats", "PathSummary", "SUMMARY_AXES"]

#: a root-to-node tag path; ``()`` denotes the document node itself.
TagPath = Tuple[str, ...]

#: non-element match points the prefilter tracks symbolically.
_ATTR = "@attribute"
_TEXT = "@text"

Point = Union[TagPath, str]

#: the axes the summary can reason about; a pattern using any other axis
#: is outside the downward fragment and is never pruned.
SUMMARY_AXES = frozenset({
    Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF,
    Axis.SELF, Axis.ATTRIBUTE,
})


class _Unsupported(Exception):
    """Internal: the pattern leaves the fragment the summary models."""


@dataclass
class PathStats:
    """Statistics for one distinct root-to-node tag path."""

    path: TagPath
    #: elements sharing this exact tag path.
    count: int = 0
    #: child elements by tag, summed over all elements at this path —
    #: the path's child-tag fanout.
    child_tags: Counter = field(default_factory=Counter)
    #: attribute names seen on elements at this path.
    attributes: Set[str] = field(default_factory=set)
    #: text-node children over all elements at this path.
    text_count: int = 0
    #: maximum element-depth below this path (0 for leaf paths).
    height: int = 0
    #: text nodes anywhere in subtrees at this path (self included).
    text_below: int = 0

    @property
    def depth(self) -> int:
        return len(self.path)

    @property
    def depth_range(self) -> Tuple[int, int]:
        """(own depth, deepest element depth under this path)."""
        return (self.depth, self.depth + self.height)

    @property
    def fanout(self) -> int:
        """Distinct child tags under this path."""
        return len(self.child_tags)


class PathSummary:
    """Per-document structural summary over root-to-node tag paths."""

    def __init__(self, document) -> None:
        self.document = document
        #: stats per distinct element tag path (length ≥ 1).
        self.stats: Dict[TagPath, PathStats] = {}
        #: child tags per path, *including* the document point ``()``.
        self.children: Dict[TagPath, Set[str]] = {(): set()}
        #: text-node children per path, including ``()``.
        self.text_counts: Dict[TagPath, int] = {(): 0}
        #: all paths ending in a given tag (for descendant steps).
        self.tag_paths: Dict[str, List[TagPath]] = {}
        self.total_elements = 0
        self.total_text = 0
        self._node_paths: Dict[int, Point] = {}
        self._embed_cache: Dict[Tuple[object, Point], bool] = {}
        self._volume_cache: Dict[object, Optional[float]] = {}
        self._patterns: Dict[int, object] = {}
        self._build(document.root)

    # -- construction -------------------------------------------------------

    def _build(self, root: DocumentNode) -> None:
        interned: Dict[Tuple[int, str], TagPath] = {}
        stack: List[Tuple[Node, TagPath]] = [(root, ())]
        while stack:
            node, parent_path = stack.pop()
            for child in node.children:
                if isinstance(child, ElementNode):
                    key = (id(parent_path), child.name)
                    path = interned.get(key)
                    if path is None:
                        path = parent_path + (child.name,)
                        interned[key] = path
                    stats = self.stats.get(path)
                    if stats is None:
                        stats = PathStats(path)
                        self.stats[path] = stats
                        self.children[path] = set()
                        self.text_counts[path] = 0
                        self.tag_paths.setdefault(child.name, []).append(path)
                    stats.count += 1
                    self.total_elements += 1
                    self.children[parent_path].add(child.name)
                    if parent_path:
                        self.stats[parent_path].child_tags[child.name] += 1
                    for attribute in child.attributes:
                        stats.attributes.add(attribute.name)
                    stack.append((child, path))
                elif isinstance(child, TextNode):
                    self.text_counts[parent_path] += 1
                    self.total_text += 1
                    if parent_path:
                        self.stats[parent_path].text_count += 1
        # Bottom-up pass: subtree height and text reachability per path.
        for path in sorted(self.stats, key=len, reverse=True):
            stats = self.stats[path]
            stats.text_below += stats.text_count
            parent = path[:-1]
            if parent:
                parent_stats = self.stats[parent]
                parent_stats.height = max(parent_stats.height,
                                          stats.height + 1)
                parent_stats.text_below += stats.text_below

    # -- basic lookups ------------------------------------------------------

    def __len__(self) -> int:
        """Number of distinct element tag paths."""
        return len(self.stats)

    def path_count(self, path: Iterable[str]) -> int:
        """Elements at exactly this tag path (0 when absent)."""
        stats = self.stats.get(tuple(path))
        return stats.count if stats is not None else 0

    def path_of(self, node: Node) -> Point:
        """The summary point a document node maps to."""
        if isinstance(node, AttributeNode):
            return _ATTR
        if isinstance(node, TextNode):
            return _TEXT
        cached = self._node_paths.get(node.pre)
        if cached is not None:
            return cached
        names: List[str] = []
        current: Optional[Node] = node
        while current is not None and isinstance(current, ElementNode):
            names.append(current.name)
            current = current.parent
        path: Point = tuple(reversed(names))
        self._node_paths[node.pre] = path
        return path

    def _strict_descendants(self, prefix: TagPath) -> Iterator[TagPath]:
        stack = [prefix + (tag,) for tag in self.children.get(prefix, ())]
        while stack:
            path = stack.pop()
            yield path
            stack.extend(path + (tag,)
                         for tag in self.children.get(path, ()))

    def _text_below(self, path: TagPath) -> int:
        if not path:
            return self.total_text
        stats = self.stats.get(path)
        return stats.text_below if stats is not None else 0

    # -- the prefilter ------------------------------------------------------

    def can_match(self, path: "PatternPath",
                  contexts: Optional[Iterable[Node]] = None) -> bool:
        """Conservative embeddability test for a pattern path.

        Returns ``False`` only when *no* document node reachable from
        ``contexts`` (any node, when omitted) can produce a match —
        child steps are looked up exactly in the summary trie,
        descendant steps through reachability, predicate branches
        recursively.  Patterns using axes outside the downward fragment
        are never pruned.
        """
        if contexts is None:
            points: Iterable[Point] = self._all_points()
        else:
            points = {self.path_of(node) for node in contexts}
        try:
            return any(self._point_embeds(path, point) for point in points)
        except _Unsupported:
            return True

    def _all_points(self) -> Iterator[Point]:
        yield ()
        yield from self.stats

    def _point_embeds(self, path: "PatternPath", point: Point) -> bool:
        key = (self._pattern_key(path), point)
        cached = self._embed_cache.get(key)
        if cached is None:
            cached = self._embeds(path.steps, {point})
            self._embed_cache[key] = cached
        return cached

    def _pattern_key(self, path: "PatternPath") -> object:
        # Patterns inside a compiled plan are stable objects; keying the
        # memo by identity avoids rehashing the recursive dataclass on
        # every input tuple.
        self._patterns[id(path)] = path
        return id(path)

    def _embeds(self, steps, points: Set[Point]) -> bool:
        current = points
        for step in steps:
            if step.axis not in SUMMARY_AXES:
                raise _Unsupported(step.axis)
            current = self._advance(current, step)
            if step.predicates:
                current = {
                    point for point in current
                    if all(self._branch_embeds(branch, point)
                           for branch in step.predicates)}
            if not current:
                return False
            # step.position only filters further; ignoring it keeps the
            # test conservative.
        return True

    def _branch_embeds(self, branch: "PatternPath", point: Point) -> bool:
        key = (self._pattern_key(branch), point)
        cached = self._embed_cache.get(key)
        if cached is None:
            cached = self._embeds(branch.steps, {point})
            self._embed_cache[key] = cached
        return cached

    # -- one-step transitions ----------------------------------------------

    def _advance(self, points: Set[Point], step) -> Set[Point]:
        axis, test = step.axis, step.test
        out: Set[Point] = set()
        for point in points:
            if point == _ATTR or point == _TEXT:
                # Attribute and text nodes have no children, descendants
                # or attributes; only self:: can keep them alive.
                if axis in (Axis.SELF, Axis.DESCENDANT_OR_SELF):
                    if isinstance(test, AnyKindTest):
                        out.add(point)
                    elif isinstance(test, TextTest) and point == _TEXT:
                        out.add(point)
                continue
            if axis in (Axis.SELF, Axis.DESCENDANT_OR_SELF):
                self._self_points(point, test, out)
            if axis is Axis.CHILD:
                self._child_points(point, test, out)
            if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
                self._descendant_points(point, test, out)
            if axis is Axis.ATTRIBUTE:
                if point and self._attribute_matches(point, test):
                    out.add(_ATTR)
        return out

    def _self_points(self, path: TagPath, test, out: Set[Point]) -> None:
        if not path:
            # The document node is neither an element nor text.
            if isinstance(test, AnyKindTest):
                out.add(path)
            return
        if isinstance(test, NameTest):
            if path[-1] == test.name:
                out.add(path)
        elif isinstance(test, ElementTest):
            if test.name is None or path[-1] == test.name:
                out.add(path)
        elif isinstance(test, (WildcardTest, AnyKindTest)):
            out.add(path)

    def _child_points(self, path: TagPath, test, out: Set[Point]) -> None:
        children = self.children.get(path)
        if children is None:
            return
        if isinstance(test, NameTest) or (isinstance(test, ElementTest)
                                          and test.name is not None):
            name = test.name
            if name in children:
                out.add(path + (name,))
            return
        if isinstance(test, (WildcardTest, ElementTest)):
            out.update(path + (tag,) for tag in children)
            return
        if isinstance(test, TextTest):
            if self.text_counts.get(path, 0):
                out.add(_TEXT)
            return
        if isinstance(test, AnyKindTest):
            out.update(path + (tag,) for tag in children)
            if self.text_counts.get(path, 0):
                out.add(_TEXT)

    def _descendant_points(self, path: TagPath, test,
                           out: Set[Point]) -> None:
        if isinstance(test, NameTest) or (isinstance(test, ElementTest)
                                          and test.name is not None):
            depth = len(path)
            for candidate in self.tag_paths.get(test.name, ()):
                if len(candidate) > depth and candidate[:depth] == path:
                    out.add(candidate)
            return
        if isinstance(test, (WildcardTest, ElementTest)):
            out.update(self._strict_descendants(path))
            return
        if isinstance(test, TextTest):
            if self._text_below(path):
                out.add(_TEXT)
            return
        if isinstance(test, AnyKindTest):
            out.update(self._strict_descendants(path))
            if self._text_below(path):
                out.add(_TEXT)

    def _attribute_matches(self, path: TagPath, test) -> bool:
        stats = self.stats.get(path)
        if stats is None:
            return False
        if isinstance(test, NameTest):
            return test.name in stats.attributes
        if isinstance(test, (WildcardTest, AnyKindTest)):
            return bool(stats.attributes)
        return False

    # -- selectivity estimation ---------------------------------------------

    def pattern_volume(self, path: "PatternPath") -> Optional[float]:
        """Total candidate cardinality over a pattern's query nodes.

        For each step (spine and predicate branches alike) the summary
        yields the number of document nodes that can match that query
        node given the steps above it; the sum replaces the flat
        tag-count stream estimate in the cost model.  ``None`` when the
        pattern leaves the summarizable fragment.
        """
        key = self._pattern_key(path)
        if key in self._volume_cache:
            return self._volume_cache[key]
        try:
            volume = self._volume(path.steps, set(self._all_points()))
        except _Unsupported:
            volume = None
        self._volume_cache[key] = volume
        return volume

    def _volume(self, steps, points: Set[Point]) -> float:
        total = 0.0
        current = points
        for step in steps:
            if step.axis not in SUMMARY_AXES:
                raise _Unsupported(step.axis)
            previous = current
            current = self._advance(current, step)
            total += self._point_cardinality(current, previous, step)
            if step.predicates:
                for branch in step.predicates:
                    total += self._volume(branch.steps, current)
                current = {
                    point for point in current
                    if all(self._branch_embeds(branch, point)
                           for branch in step.predicates)}
            if not current:
                break
        return total

    def _point_cardinality(self, points: Set[Point], previous: Set[Point],
                           step) -> float:
        total = 0.0
        for point in points:
            if isinstance(point, tuple):
                if point:
                    total += self.stats[point].count
                else:
                    total += 1.0
            elif point == _TEXT:
                total += sum(self._text_below(prev)
                             for prev in previous
                             if isinstance(prev, tuple))
            else:   # _ATTR: one attribute per matching owner, roughly
                total += sum(self.stats[prev].count
                             for prev in previous
                             if isinstance(prev, tuple) and prev)
        return total
