"""XDM node classes with region encoding.

The data model follows a small but faithful subset of the XQuery 1.0 Data
Model (XDM): document, element, attribute and text nodes.  Every node
carries the *region encoding* used by structural-join algorithms:

``pre``
    the node's position in document order (a pre-order numbering),
``post``
    the node's position in a post-order traversal,
``level``
    the node's depth (the document node is at level 0),
``end``
    the largest ``pre`` value in the node's subtree, so that the subtree
    of ``n`` is exactly the interval ``[n.pre, n.end]``.

The encoding gives O(1) ancestor/descendant tests (`Node.contains`) and,
like the Galax data model the paper relies on, constant-time access to a
node's parent and children.

Nodes are identity-based: two nodes are equal only if they are the same
Python object, and document order between nodes of the same tree is the
order of their ``pre`` numbers.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence


class Node:
    """Base class for all XDM nodes."""

    __slots__ = ("pre", "post", "level", "end", "parent")

    kind = "node"

    def __init__(self) -> None:
        self.pre: int = -1
        self.post: int = -1
        self.level: int = -1
        self.end: int = -1
        self.parent: Optional[Node] = None

    # -- structural predicates -------------------------------------------

    def contains(self, other: "Node") -> bool:
        """True if ``other`` is a proper descendant of ``self``."""
        return self.pre < other.pre <= self.end

    def contains_or_self(self, other: "Node") -> bool:
        """True if ``other`` is ``self`` or a descendant of ``self``."""
        return self.pre <= other.pre <= self.end

    def is_ancestor_of(self, other: "Node") -> bool:
        return self.contains(other)

    def is_descendant_of(self, other: "Node") -> bool:
        return other.contains(self)

    def doc_order_key(self) -> int:
        return self.pre

    # -- content accessors (overridden by subclasses) --------------------

    @property
    def children(self) -> Sequence["Node"]:
        return ()

    @property
    def name(self) -> Optional[str]:
        """Element/attribute name, ``None`` for other kinds."""
        return None

    def string_value(self) -> str:
        """The XDM string value (concatenated text descendants)."""
        return ""

    def typed_value(self) -> str:
        return self.string_value()

    # -- convenience traversal -------------------------------------------

    def iter_descendants(self) -> Iterator["Node"]:
        """All descendants in document order (excluding ``self``)."""
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_descendants_or_self(self) -> Iterator["Node"]:
        yield self
        yield from self.iter_descendants()

    def iter_ancestors(self) -> Iterator["Node"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "Node":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} pre={self.pre}>"


class DocumentNode(Node):
    """The document root node.

    Its single sequence of children normally contains one element (the
    document element), possibly surrounded by text produced by lenient
    parsing modes.
    """

    __slots__ = ("_children", "uri")

    kind = "document"

    def __init__(self, uri: str = "") -> None:
        super().__init__()
        self.uri = uri
        self._children: list[Node] = []

    @property
    def children(self) -> Sequence[Node]:
        return self._children

    def append_child(self, child: Node) -> None:
        child.parent = self
        self._children.append(child)

    @property
    def document_element(self) -> Optional["ElementNode"]:
        for child in self._children:
            if isinstance(child, ElementNode):
                return child
        return None

    def string_value(self) -> str:
        return "".join(child.string_value() for child in self._children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        element = self.document_element
        name = element.name if element is not None else "?"
        return f"<DocumentNode <{name}> pre={self.pre}>"


class ElementNode(Node):
    """An element node with attributes and children."""

    __slots__ = ("_name", "_children", "_attributes")

    kind = "element"

    def __init__(self, name: str) -> None:
        super().__init__()
        self._name = name
        self._children: list[Node] = []
        self._attributes: list[AttributeNode] = []

    @property
    def name(self) -> str:
        return self._name

    @property
    def children(self) -> Sequence[Node]:
        return self._children

    @property
    def attributes(self) -> Sequence["AttributeNode"]:
        return self._attributes

    def append_child(self, child: Node) -> None:
        child.parent = self
        self._children.append(child)

    def set_attribute(self, name: str, value: str) -> "AttributeNode":
        attribute = AttributeNode(name, value)
        attribute.parent = self
        self._attributes.append(attribute)
        return attribute

    def get_attribute(self, name: str) -> Optional[str]:
        for attribute in self._attributes:
            if attribute.name == name:
                return attribute.value
        return None

    def string_value(self) -> str:
        parts: list[str] = []
        for node in self.iter_descendants_or_self():
            if isinstance(node, TextNode):
                parts.append(node.text)
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ElementNode <{self._name}> pre={self.pre}>"


class AttributeNode(Node):
    """An attribute node.

    Attributes participate in the region numbering (they receive ``pre``
    numbers immediately after their owner element, matching the document
    order rules of the XDM), but they are not children of their element.
    """

    __slots__ = ("_name", "value")

    kind = "attribute"

    def __init__(self, name: str, value: str) -> None:
        super().__init__()
        self._name = name
        self.value = value

    @property
    def name(self) -> str:
        return self._name

    def string_value(self) -> str:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AttributeNode {self._name}={self.value!r} pre={self.pre}>"


class TextNode(Node):
    """A text node."""

    __slots__ = ("text",)

    kind = "text"

    def __init__(self, text: str) -> None:
        super().__init__()
        self.text = text

    def string_value(self) -> str:
        return self.text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snippet = self.text if len(self.text) <= 20 else self.text[:17] + "..."
        return f"<TextNode {snippet!r} pre={self.pre}>"


def assign_regions(document: DocumentNode) -> int:
    """Assign ``pre``/``post``/``level``/``end`` numbers to a whole tree.

    Attributes are numbered right after their owner element, before the
    element's children, which matches XDM document order.  Uses an
    explicit stack so arbitrarily deep documents (e.g. the depth-15+
    MemBeR documents of the paper's Section 5.3) never hit the Python
    recursion limit.  Returns the total number of numbered nodes.
    """
    pre_counter = 0
    post_counter = 0
    # Each frame is (node, level, phase) where phase 0 = enter, 1 = leave.
    stack: list[tuple[Node, int, int]] = [(document, 0, 0)]
    while stack:
        node, level, phase = stack.pop()
        if phase == 0:
            node.pre = pre_counter
            node.level = level
            pre_counter += 1
            if isinstance(node, ElementNode):
                for attribute in node.attributes:
                    attribute.pre = pre_counter
                    attribute.level = level + 1
                    attribute.post = post_counter
                    attribute.end = attribute.pre
                    pre_counter += 1
                    post_counter += 1
            stack.append((node, level, 1))
            for child in reversed(node.children):
                stack.append((child, level + 1, 0))
        else:
            node.post = post_counter
            post_counter += 1
            node.end = pre_counter - 1
    return pre_counter
