"""Columnar document store with mmap-able persistence.

The stream-based join algorithms (StaircaseJoin, TwigJoin) are merges
over sorted *region-encoding* streams — integer ``pre``/``post``/
``level`` columns in Grust et al.'s staircase-join formulation — yet the
object store materializes them as per-node Python objects, so every
inner-loop comparison chases attributes through the heap.
:class:`ColumnarDocument` moves the encoding into contiguous integer
columns (stdlib :mod:`array` buffers, or zero-copy ``memoryview`` casts
over an ``mmap`` when opened from disk):

``post``, ``level``, ``end``, ``parent``
    one 32-bit signed integer per node, indexed by ``pre`` (``pre``
    itself is implicit: it *is* the index).  ``parent`` holds the
    parent's ``pre`` number, ``-1`` for the document node.
``kind``
    one byte per node: document / element / attribute / text.
``name_id``, ``text_id``
    dictionary-encoded element/attribute names and text/attribute
    values: indexes into the ``names`` and ``texts`` string tables,
    ``-1`` where not applicable.
per-tag streams
    for each element tag (and attribute name), the sorted array of
    ``pre`` numbers — the exact inputs of the staircase and twig joins.

The on-disk format (see :data:`MAGIC`) is versioned, checksummed and
mmap-able: a fixed header (magic, format version, endianness marker,
payload CRC-32), a section table, then 8-byte-aligned raw column
payloads.  :meth:`ColumnarDocument.open` maps the file and exposes the
columns as lazy ``memoryview`` casts — no parse, no re-index, no copy —
so a :class:`~repro.serve.catalog.DocumentCatalog` can serve a
pre-indexed document after an O(1) open (plus an optional CRC pass).

Corruption never crashes and never silently answers wrong:
truncation, a bad magic, a foreign byte order, an unsupported version
or a checksum mismatch each raise a typed :class:`StorageError` naming
the file and the failed check.
"""

from __future__ import annotations

import io
import mmap
import os
import struct
import time
import zlib
from array import array
from typing import BinaryIO, Dict, List, Optional, Sequence, Tuple, Union

from ..guard.chaos import InjectedFault, chaos_point
from ..guard.errors import ReproError
from .node import AttributeNode, DocumentNode, ElementNode, Node, TextNode
from .nodetest import (AnyKindTest, ElementTest, NameTest, NodeTest,
                       TextTest, WildcardTest)

__all__ = [
    "ColumnarDocument", "StorageError", "MAGIC", "FORMAT_VERSION",
    "KIND_DOCUMENT", "KIND_ELEMENT", "KIND_ATTRIBUTE", "KIND_TEXT",
    "is_columnar_file",
]

#: node-kind codes of the ``kind`` column.
KIND_DOCUMENT = 0
KIND_ELEMENT = 1
KIND_ATTRIBUTE = 2
KIND_TEXT = 3

#: file magic: "RePro Columnar" — also the sniff key of
#: :func:`is_columnar_file`.
MAGIC = b"RPXC"

#: on-disk format version this build reads and writes.
FORMAT_VERSION = 1

#: endianness marker as written by the producing platform; a reader on
#: the opposite byte order sees it reversed and refuses the file.
_ENDIAN_MARK = 0x1FF7

#: header: magic, version u16, endian-mark u16, section count u32,
#: flags u32, total file length u64, payload CRC-32 u32, reserved u32.
_HEADER = struct.Struct("<4sHHIIQII")

#: one section-table entry: name (24 bytes, NUL padded), offset u64,
#: byte length u64.
_SECTION = struct.Struct("<24sQQ")

_ALIGN = 8

#: the int32 columns, in on-disk order.
_INT_COLUMNS = ("post", "level", "end", "parent", "name_id", "text_id")

#: every section a version-1 file must carry.
_REQUIRED_SECTIONS = _INT_COLUMNS + (
    "kind", "name_dir", "name_blob", "text_dir", "text_blob",
    "tag_dir", "tag_stream", "attr_dir", "attr_stream",
    "text_pres", "element_pres", "uri")

_EMPTY_I = array("i")


class StorageError(ReproError):
    """A columnar store file failed validation (truncated, corrupt,
    wrong magic/version/byte order) or an invariant check failed.

    Always carries the failing ``path`` (when file-backed) and the
    ``check`` that tripped in its context."""

    code = "REPRO-STORAGE"


def is_columnar_file(path: Union[str, os.PathLike]) -> bool:
    """True when ``path`` starts with the columnar store magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def _pad(length: int) -> int:
    return (-length) % _ALIGN


class ColumnarDocument:
    """The region encoding of one document as contiguous integer columns.

    Build one from an indexed object tree with :meth:`from_nodes`, or
    map a saved file with :meth:`open`.  All columns are read-only
    sequences of Python ints (``array`` when built in memory,
    ``memoryview`` casts over the mmap when opened from disk); string
    dictionaries are decoded lazily per entry and cached.
    """

    def __init__(self, *, post, level, end, parent, kind, name_id, text_id,
                 names: Sequence[str], texts: Sequence[str],
                 tag_pres: Dict[str, Sequence[int]],
                 attribute_pres: Dict[str, Sequence[int]],
                 text_pres: Sequence[int], element_pres: Sequence[int],
                 uri: str = "",
                 source: Optional[mmap.mmap] = None,
                 source_file: Optional[BinaryIO] = None,
                 path: Optional[str] = None) -> None:
        self.post = post
        self.level = level
        self.end = end
        self.parent = parent
        self.kind = kind
        self.name_id = name_id
        self.text_id = text_id
        self.names = names
        self.texts = texts
        #: per-element-tag sorted ``pre`` streams.
        self.tag_pres = tag_pres
        #: per-attribute-name sorted ``pre`` streams.
        self.attribute_pres = attribute_pres
        #: sorted ``pre`` numbers of every text node.
        self.text_pres = text_pres
        #: sorted ``pre`` numbers of every element.
        self.element_pres = element_pres
        self.uri = uri
        self._source = source
        self._source_file = source_file
        self.path = path
        self._non_attribute_pres: Optional[Sequence[int]] = None
        self._all_attribute_pres: Optional[Sequence[int]] = None
        #: wall seconds of the producing build/open, for instrumentation
        #: (benchmarks and the engine's ``columnar`` pipeline stage).
        self.build_seconds: float = 0.0
        self.open_seconds: float = 0.0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_nodes(cls, nodes: Sequence[Node],
                   uri: str = "") -> "ColumnarDocument":
        """Columnarize a dense, pre-ordered node table (the
        ``nodes_by_pre`` table of an :class:`IndexedDocument`)."""
        started = time.perf_counter()
        n = len(nodes)
        post = array("i", bytes(4 * n))
        level = array("i", bytes(4 * n))
        end = array("i", bytes(4 * n))
        parent = array("i", bytes(4 * n))
        kind = array("B", bytes(n))
        name_id = array("i", bytes(4 * n))
        text_id = array("i", bytes(4 * n))
        names: List[str] = []
        name_index: Dict[str, int] = {}
        texts: List[str] = []
        text_index: Dict[str, int] = {}
        tag_pres: Dict[str, array] = {}
        attribute_pres: Dict[str, array] = {}
        text_pres = array("i")
        element_pres = array("i")

        def intern_name(name: str) -> int:
            slot = name_index.get(name)
            if slot is None:
                slot = name_index[name] = len(names)
                names.append(name)
            return slot

        def intern_text(value: str) -> int:
            slot = text_index.get(value)
            if slot is None:
                slot = text_index[value] = len(texts)
                texts.append(value)
            return slot

        for pre, node in enumerate(nodes):
            if node.pre != pre:
                raise StorageError(
                    f"node table is not densely pre-numbered: position "
                    f"{pre} holds pre={node.pre}", check="dense-pre")
            post[pre] = node.post
            level[pre] = node.level
            end[pre] = node.end
            parent[pre] = node.parent.pre if node.parent is not None else -1
            name_id[pre] = -1
            text_id[pre] = -1
            if isinstance(node, ElementNode):
                kind[pre] = KIND_ELEMENT
                slot = intern_name(node.name)
                name_id[pre] = slot
                element_pres.append(pre)
                tag_pres.setdefault(node.name, array("i")).append(pre)
            elif isinstance(node, AttributeNode):
                kind[pre] = KIND_ATTRIBUTE
                name_id[pre] = intern_name(node.name)
                text_id[pre] = intern_text(node.value)
                attribute_pres.setdefault(node.name,
                                          array("i")).append(pre)
            elif isinstance(node, TextNode):
                kind[pre] = KIND_TEXT
                text_id[pre] = intern_text(node.text)
                text_pres.append(pre)
            elif isinstance(node, DocumentNode):
                kind[pre] = KIND_DOCUMENT
            else:
                raise StorageError(
                    f"cannot columnarize a {type(node).__name__}",
                    check="node-kind")
        columns = cls(post=post, level=level, end=end, parent=parent,
                      kind=kind, name_id=name_id, text_id=text_id,
                      names=names, texts=texts, tag_pres=dict(tag_pres),
                      attribute_pres=dict(attribute_pres),
                      text_pres=text_pres, element_pres=element_pres,
                      uri=uri)
        columns.build_seconds = time.perf_counter() - started
        return columns

    # -- basic accessors ---------------------------------------------------

    @property
    def n(self) -> int:
        """Total node count (== the exclusive upper bound of ``pre``)."""
        return len(self.kind)

    def name_of(self, pre: int) -> Optional[str]:
        slot = self.name_id[pre]
        return self.names[slot] if slot >= 0 else None

    def text_of(self, pre: int) -> Optional[str]:
        slot = self.text_id[pre]
        return self.texts[slot] if slot >= 0 else None

    def element_stream(self, tag: str) -> Sequence[int]:
        """Sorted ``pre`` numbers of elements named ``tag``."""
        return self.tag_pres.get(tag, _EMPTY_I)

    def attribute_stream(self, name: str) -> Sequence[int]:
        """Sorted ``pre`` numbers of attributes named ``name``."""
        return self.attribute_pres.get(name, _EMPTY_I)

    @property
    def non_attribute_pres(self) -> Sequence[int]:
        """Sorted ``pre`` numbers of every non-attribute node — the
        ``node()`` stream (attributes are only reachable through the
        attribute axis).  Built on first use and cached."""
        if self._non_attribute_pres is None:
            kind = self.kind
            self._non_attribute_pres = array(
                "i", (pre for pre in range(len(kind))
                      if kind[pre] != KIND_ATTRIBUTE))
        return self._non_attribute_pres

    @property
    def all_attribute_pres(self) -> Sequence[int]:
        """Sorted ``pre`` numbers of every attribute node."""
        if self._all_attribute_pres is None:
            kind = self.kind
            self._all_attribute_pres = array(
                "i", (pre for pre in range(len(kind))
                      if kind[pre] == KIND_ATTRIBUTE))
        return self._all_attribute_pres

    def attributes_of(self, element_pre: int) -> range:
        """The ``pre`` numbers of an element's attributes.

        Attributes are numbered immediately after their owner element
        (XDM document order), so they form the contiguous run of
        attribute-kind nodes right after ``element_pre``."""
        kind = self.kind
        n = len(kind)
        stop = element_pre + 1
        while stop < n and kind[stop] == KIND_ATTRIBUTE:
            stop += 1
        return range(element_pre + 1, stop)

    def test_matches(self, pre: int, test: NodeTest,
                     principal_kind: str = "element") -> bool:
        """Columnar equivalent of ``NodeTest.matches`` — no node object
        is materialized."""
        kind = self.kind[pre]
        if isinstance(test, NameTest):
            wanted = (KIND_ATTRIBUTE if principal_kind == "attribute"
                      else KIND_ELEMENT)
            return kind == wanted and \
                self.names[self.name_id[pre]] == test.name
        if isinstance(test, WildcardTest):
            return kind == (KIND_ATTRIBUTE
                            if principal_kind == "attribute"
                            else KIND_ELEMENT)
        if isinstance(test, AnyKindTest):
            return True
        if isinstance(test, TextTest):
            return kind == KIND_TEXT
        if isinstance(test, ElementTest):
            if kind != KIND_ELEMENT:
                return False
            return test.name is None or \
                self.names[self.name_id[pre]] == test.name
        return False

    # -- invariants --------------------------------------------------------

    def validate(self) -> None:
        """Check the structural invariants of the region encoding; a
        violation raises :class:`StorageError` naming the failed check.

        Used by the persistence tests after a round trip, and available
        to callers who want to vet an untrusted file beyond the CRC.
        """
        n = self.n
        if n == 0:
            raise StorageError("empty document store", check="non-empty",
                               path=self.path)
        names = self.names

        def fail(check: str, message: str) -> StorageError:
            return StorageError(message, check=check, path=self.path)

        if self.kind[0] != KIND_DOCUMENT or self.parent[0] != -1 \
                or self.level[0] != 0:
            raise fail("root", "pre=0 is not a level-0 document root")
        if sorted(self.post) != list(range(n)):
            raise fail("post-permutation",
                       "post column is not a permutation of 0..n-1")
        for pre in range(n):
            end = self.end[pre]
            if not pre <= end < n:
                raise fail("end-interval",
                           f"end[{pre}]={end} outside [{pre}, {n})")
            parent = self.parent[pre]
            if pre > 0:
                if not 0 <= parent < pre:
                    raise fail("parent-before-child",
                               f"parent[{pre}]={parent} not in [0, {pre})")
                if self.level[pre] != self.level[parent] + 1:
                    raise fail("level",
                               f"level[{pre}] != level[parent]+1")
                if not self.end[parent] >= end:
                    raise fail("containment",
                               f"subtree [{pre},{end}] escapes parent "
                               f"[{parent},{self.end[parent]}]")
            slot = self.name_id[pre]
            if slot >= 0 and not slot < len(names):
                raise fail("name-id", f"name_id[{pre}]={slot} out of "
                                      f"dictionary range")
            if slot < 0 and self.kind[pre] in (KIND_ELEMENT,
                                               KIND_ATTRIBUTE):
                raise fail("name-id", f"named node {pre} has no name")
            tslot = self.text_id[pre]
            if tslot >= 0 and not tslot < len(self.texts):
                raise fail("text-id", f"text_id[{pre}]={tslot} out of "
                                      f"value-table range")
        for tag, stream in self.tag_pres.items():
            if list(stream) != sorted(stream):
                raise fail("stream-order", f"tag stream {tag!r} unsorted")
            for pre in stream:
                if self.kind[pre] != KIND_ELEMENT or \
                        self.names[self.name_id[pre]] != tag:
                    raise fail("stream-content",
                               f"tag stream {tag!r} holds pre={pre} "
                               f"which is not a <{tag}> element")
        if sum(len(s) for s in self.tag_pres.values()) != \
                len(self.element_pres):
            raise fail("stream-cover",
                       "tag streams do not cover the element column")

    # -- persistence -------------------------------------------------------

    def save(self, path: Union[str, os.PathLike]) -> int:
        """Write the store to ``path`` (version-1 format) and return the
        byte size.  The write is atomic: a temp file in the same
        directory is renamed over the target."""
        sections: List[Tuple[str, bytes]] = []
        for name in _INT_COLUMNS:
            sections.append((name, _int32_bytes(getattr(self, name))))
        sections.append(("kind", _uint8_bytes(self.kind)))
        name_dir, name_blob = _encode_strings(self.names)
        sections.append(("name_dir", name_dir))
        sections.append(("name_blob", name_blob))
        text_dir, text_blob = _encode_strings(self.texts)
        sections.append(("text_dir", text_dir))
        sections.append(("text_blob", text_blob))
        tag_dir, tag_stream = self._encode_streams(self.tag_pres)
        sections.append(("tag_dir", tag_dir))
        sections.append(("tag_stream", tag_stream))
        attr_dir, attr_stream = self._encode_streams(self.attribute_pres)
        sections.append(("attr_dir", attr_dir))
        sections.append(("attr_stream", attr_stream))
        sections.append(("text_pres", _int32_bytes(self.text_pres)))
        sections.append(("element_pres", _int32_bytes(self.element_pres)))
        sections.append(("uri", self.uri.encode("utf-8")))

        payload = io.BytesIO()
        table: List[Tuple[str, int, int]] = []
        base = _HEADER.size + _SECTION.size * len(sections)
        base += _pad(base)
        for name, data in sections:
            offset = base + payload.tell()
            table.append((name, offset, len(data)))
            payload.write(data)
            payload.write(b"\x00" * _pad(len(data)))
        body = payload.getvalue()
        crc = zlib.crc32(body)
        total = base + len(body)

        out = io.BytesIO()
        out.write(_HEADER.pack(MAGIC, FORMAT_VERSION, _ENDIAN_MARK,
                               len(sections), 0, total, crc, 0))
        for name, offset, length in table:
            encoded = name.encode("ascii")
            out.write(_SECTION.pack(encoded, offset, length))
        out.write(b"\x00" * _pad(out.tell()))
        assert out.tell() == base
        out.write(body)

        path = os.fspath(path)
        temp = f"{path}.tmp.{os.getpid()}"
        with open(temp, "wb") as handle:
            handle.write(out.getvalue())
        os.replace(temp, path)
        return total

    def _encode_streams(self, streams: Dict[str, Sequence[int]]
                        ) -> Tuple[bytes, bytes]:
        """Encode name-keyed pre streams as a directory of
        ``(name_id, start, count)`` int32 triples plus one concatenated
        pre array."""
        name_slot = {name: slot for slot, name in enumerate(self.names)}
        directory = array("i")
        concatenated = array("i")
        for name in sorted(streams, key=lambda name: name_slot[name]):
            stream = streams[name]
            directory.extend((name_slot[name], len(concatenated),
                              len(stream)))
            concatenated.extend(stream)
        return directory.tobytes(), concatenated.tobytes()

    @classmethod
    def open(cls, path: Union[str, os.PathLike],
             verify: bool = True) -> "ColumnarDocument":
        """Map a saved store from disk.

        The header, section table and string/stream directories are read
        eagerly (a few hundred bytes plus one entry per distinct tag);
        the integer columns stay lazily mapped ``memoryview`` casts over
        the shared ``mmap`` — no copy is made and nothing is re-parsed.

        With ``verify=True`` (the default) the payload CRC-32 is checked
        — a single streaming pass over the map, orders of magnitude
        cheaper than re-indexing — so a flipped byte surfaces as a
        typed :class:`StorageError` instead of a wrong answer.  Pass
        ``verify=False`` for a strictly O(1) open of trusted files.
        """
        started = time.perf_counter()
        path = os.fspath(path)

        def fail(check: str, message: str) -> StorageError:
            return StorageError(f"{path}: {message}", check=check,
                                path=path)

        try:
            handle = open(path, "rb")
        except OSError as err:
            raise StorageError(f"{path}: cannot open file: {err}",
                               check="open", path=path) from err
        try:
            size = os.fstat(handle.fileno()).st_size
            if size < _HEADER.size:
                raise fail("truncated",
                           f"file is {size} bytes, smaller than the "
                           f"{_HEADER.size}-byte header")
            # Chaos site for a failing mmap read: an injected fault is
            # wrapped into the same typed StorageError a real one
            # would produce (the quarantine path keys on it).
            chaos_point("columnar.read")
            source = mmap.mmap(handle.fileno(), 0,
                               access=mmap.ACCESS_READ)
        except StorageError:
            handle.close()
            raise
        except (OSError, ValueError) as err:
            handle.close()
            raise StorageError(f"{path}: cannot map file: {err}",
                               check="mmap", path=path) from err
        try:
            return cls._from_map(source, handle, path, size, verify,
                                 started, fail)
        except BaseException:
            source.close()
            handle.close()
            raise

    @classmethod
    def _from_map(cls, source: mmap.mmap, handle: BinaryIO, path: str,
                  size: int, verify: bool, started: float,
                  fail) -> "ColumnarDocument":
        magic, version, endian, count, _flags, total, crc, _reserved = \
            _HEADER.unpack_from(source, 0)
        if magic != MAGIC:
            raise fail("magic",
                       f"bad magic {magic!r}; not a columnar document "
                       f"store (expected {MAGIC!r})")
        if endian != _ENDIAN_MARK:
            raise fail("byte-order",
                       "file was written on a platform with a different "
                       "byte order; re-run `repro index` on this "
                       "machine")
        if version != FORMAT_VERSION:
            raise fail("version",
                       f"format version {version} is not supported by "
                       f"this build (expected {FORMAT_VERSION})")
        if total != size:
            raise fail("truncated",
                       f"header records {total} bytes but the file has "
                       f"{size} — truncated or padded")
        table_end = _HEADER.size + _SECTION.size * count
        if table_end > size:
            raise fail("truncated", "section table extends past the "
                                    "end of the file")
        sections: Dict[str, Tuple[int, int]] = {}
        for index in range(count):
            raw, offset, length = _SECTION.unpack_from(
                source, _HEADER.size + _SECTION.size * index)
            name = raw.rstrip(b"\x00").decode("ascii", "replace")
            if offset + length > size:
                raise fail("truncated",
                           f"section {name!r} [{offset}, "
                           f"{offset + length}) extends past the end "
                           f"of the file")
            sections[name] = (offset, length)
        missing = [name for name in _REQUIRED_SECTIONS
                   if name not in sections]
        if missing:
            raise fail("sections",
                       f"missing sections: {', '.join(missing)}")
        base = table_end + _pad(table_end)
        try:
            # Chaos site for checksum verification; injected faults
            # surface as the same typed StorageError a real CRC
            # mismatch raises.
            chaos_point("columnar.checksum")
        except InjectedFault as injected:
            raise fail("checksum",
                       f"injected checksum fault: {injected.message}") \
                from injected
        if verify and zlib.crc32(memoryview(source)[base:]) != crc:
            raise fail("checksum",
                       "payload CRC-32 mismatch — the file is corrupt; "
                       "re-run `repro index` to rebuild it")

        view = memoryview(source)

        def section(name: str) -> memoryview:
            offset, length = sections[name]
            return view[offset:offset + length]

        def int_column(name: str) -> memoryview:
            data = section(name)
            if len(data) % 4:
                raise fail("alignment",
                           f"section {name!r} is not int32-aligned")
            return data.cast("i")

        kind = section("kind")
        n = len(kind)
        columns = {}
        for name in _INT_COLUMNS:
            column = int_column(name)
            if len(column) != n:
                raise fail("column-length",
                           f"column {name!r} has {len(column)} entries "
                           f"for {n} nodes")
            columns[name] = column
        names = _decode_strings(int_column("name_dir"),
                                section("name_blob"), "name", fail)
        texts = _decode_strings(int_column("text_dir"),
                                section("text_blob"), "text", fail)
        tag_pres = _decode_streams(int_column("tag_dir"),
                                   int_column("tag_stream"), names,
                                   "tag", fail)
        attribute_pres = _decode_streams(int_column("attr_dir"),
                                         int_column("attr_stream"),
                                         names, "attribute", fail)
        document = cls(kind=kind, names=names, texts=texts,
                       tag_pres=tag_pres, attribute_pres=attribute_pres,
                       text_pres=int_column("text_pres"),
                       element_pres=int_column("element_pres"),
                       uri=bytes(section("uri")).decode("utf-8"),
                       source=source, source_file=handle, path=path,
                       **columns)
        document.open_seconds = time.perf_counter() - started
        return document

    def close(self) -> None:
        """Release the mmap of a disk-backed store (no-op otherwise).

        Our own views into the map are dropped first; if a caller still
        holds an exported view (a stream slice, a lazy string table),
        the map cannot be unmapped eagerly — the reference is released
        and the OS mapping goes away when the last view is collected.
        After closing, column access raises; close only when no engine
        holds the document anymore."""
        if self._source is not None:
            # Drop the lazily-derived views first: releasing an mmap
            # with exported memoryviews raises BufferError.
            self.post = self.level = self.end = self.parent = None
            self.kind = self.name_id = self.text_id = None
            self.tag_pres = {}
            self.attribute_pres = {}
            self.text_pres = self.element_pres = None
            self._non_attribute_pres = None
            self._all_attribute_pres = None
            if isinstance(self.names, _LazyStrings):
                self.names = list(self.names)
            if isinstance(self.texts, _LazyStrings):
                self.texts = list(self.texts)
            try:
                self._source.close()
            except BufferError:
                # An external holder keeps a view alive; defer the
                # unmap to garbage collection of that view.
                pass
            self._source = None
        if self._source_file is not None:
            self._source_file.close()
            self._source_file = None

    @property
    def is_mapped(self) -> bool:
        """True when the columns live in a disk mmap."""
        return self._source is not None

    def nbytes(self) -> int:
        """Approximate byte footprint of the integer columns (the
        string tables are excluded — they are shared Python strings)."""
        total = len(self.kind)
        for name in _INT_COLUMNS:
            total += 4 * len(getattr(self, name))
        total += 4 * (len(self.text_pres) + len(self.element_pres))
        for stream in self.tag_pres.values():
            total += 4 * len(stream)
        for stream in self.attribute_pres.values():
            total += 4 * len(stream)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backing = "mmap" if self.is_mapped else "memory"
        return (f"<ColumnarDocument n={self.n} tags={len(self.tag_pres)} "
                f"backing={backing}>")


# -- encoding helpers ----------------------------------------------------------

def _int32_bytes(column) -> bytes:
    if isinstance(column, array):
        return column.tobytes()
    return memoryview(column).tobytes()


def _uint8_bytes(column) -> bytes:
    if isinstance(column, array):
        return column.tobytes()
    return memoryview(column).tobytes()


def _encode_strings(values: Sequence[str]) -> Tuple[bytes, bytes]:
    """A string table: int32 end-offsets (exclusive, cumulative) plus
    one concatenated UTF-8 blob."""
    offsets = array("i")
    chunks: List[bytes] = []
    position = 0
    for value in values:
        data = value.encode("utf-8")
        chunks.append(data)
        position += len(data)
        offsets.append(position)
    return offsets.tobytes(), b"".join(chunks)


class _LazyStrings(Sequence[str]):
    """String table decoded lazily per entry, with per-slot caching —
    opening a huge document does not decode a single value until a
    query touches it."""

    __slots__ = ("_offsets", "_blob", "_cache")

    def __init__(self, offsets, blob) -> None:
        self._offsets = offsets
        self._blob = blob
        self._cache: Dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._offsets)

    def __getitem__(self, slot):
        if isinstance(slot, slice):
            return [self[index]
                    for index in range(*slot.indices(len(self)))]
        if slot < 0:
            slot += len(self)
        cached = self._cache.get(slot)
        if cached is None:
            start = self._offsets[slot - 1] if slot > 0 else 0
            stop = self._offsets[slot]
            cached = bytes(self._blob[start:stop]).decode("utf-8")
            self._cache[slot] = cached
        return cached


def _decode_strings(offsets, blob, label: str, fail) -> Sequence[str]:
    if len(offsets) and (offsets[-1] != len(blob)
                         or list(offsets) != sorted(offsets)
                         or offsets[0] < 0):
        raise fail(f"{label}-table",
                   f"{label} string table offsets are inconsistent "
                   f"with the blob")
    return _LazyStrings(offsets, blob)


def _decode_streams(directory, concatenated, names: Sequence[str],
                    label: str, fail) -> Dict[str, Sequence[int]]:
    if len(directory) % 3:
        raise fail(f"{label}-dir",
                   f"{label} stream directory is not made of "
                   f"(name, start, count) triples")
    streams: Dict[str, Sequence[int]] = {}
    total = len(concatenated)
    for index in range(0, len(directory), 3):
        slot, start, count = (directory[index], directory[index + 1],
                              directory[index + 2])
        if not (0 <= slot < len(names) and 0 <= start
                and 0 <= count and start + count <= total):
            raise fail(f"{label}-dir",
                       f"{label} stream directory entry {index // 3} "
                       f"is out of range")
        streams[names[slot]] = concatenated[start:start + count]
    return streams
