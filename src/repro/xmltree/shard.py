"""Pre-order range sharding of a columnar document.

:func:`split_document` partitions one :class:`ColumnarDocument` into
``shard_count`` self-contained shards, each again a valid columnar
document (``validate()`` passes, ``save()`` produces a standard
``.rpxc``), built from

* the **spine** — the document node, the root element and the root
  element's attribute run, replicated into every shard so each shard is
  a well-formed single-rooted document; and
* a contiguous run of the root element's **child subtrees** (each a
  closed ``[pre, end]`` region), balanced greedily by node count.

Because every unit is subtree-closed, any purely downward tree pattern
evaluates **shard-locally**: no ancestor/descendant edge crosses a
shard boundary, so the union of per-shard results — merged by global
``pre`` with spine duplicates removed — equals the single-document
result (this is what lets :mod:`repro.serve.cluster` scatter one query
across worker processes and k-way-merge the partial answers).

The :class:`ShardManifest` records, per shard, the **runs** mapping
local pre ranges back to global pre ranges (``(local_start,
global_start, length)`` triples; the spine run is always ``(0, 0,
spine_len)``).  The mapping is monotone, so a shard-local result
stream in document order maps to a globally document-ordered stream.

Layout on disk (:func:`write_shard_layout`)::

    <name>.rpxc            the full document (non-scatterable queries)
    <name>.shard0.rpxc     shard 0 ... shard K-1
    <name>.manifest.json   the ShardManifest

Shards store only remapped integer columns plus **compacted** name and
text dictionaries and freshly built per-tag streams — a shard's size is
proportional to its own node count, not the document's.
"""

from __future__ import annotations

import json
import os
from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .columnar import (KIND_ATTRIBUTE, KIND_DOCUMENT, KIND_ELEMENT,
                       KIND_TEXT, ColumnarDocument, StorageError)

__all__ = ["DocumentShard", "ShardManifest", "ShardRun", "split_document",
           "write_shard_layout", "MANIFEST_VERSION"]

MANIFEST_VERSION = 1


@dataclass(frozen=True)
class ShardRun:
    """One contiguous block of the shard mapped back to global pres:
    shard-local pres ``[local_start, local_start + length)`` are global
    pres ``[global_start, global_start + length)``."""

    local_start: int
    global_start: int
    length: int

    def to_list(self) -> List[int]:
        return [self.local_start, self.global_start, self.length]


@dataclass
class DocumentShard:
    """One shard: its columns plus the local→global pre mapping."""

    index: int
    columns: ColumnarDocument
    runs: Tuple[ShardRun, ...]
    spine_len: int

    @property
    def n(self) -> int:
        return self.columns.n

    def to_global(self, local_pre: int) -> int:
        """Map a shard-local pre number to the global document pre."""
        for run in self.runs:
            if run.local_start <= local_pre < run.local_start + run.length:
                return run.global_start + (local_pre - run.local_start)
        raise StorageError(
            f"local pre {local_pre} outside shard {self.index} "
            f"(n={self.n})", check="shard-pre")


@dataclass
class ShardManifest:
    """The sidecar that makes a shard directory self-describing."""

    version: int
    name: str
    total_nodes: int
    root_tag: str
    spine_len: int
    index_file: str
    shard_files: List[str]
    #: per shard: the ``(local_start, global_start, length)`` runs.
    shard_runs: List[List[List[int]]]

    @property
    def shard_count(self) -> int:
        return len(self.shard_files)

    def runs_for(self, shard_index: int) -> Tuple[ShardRun, ...]:
        return tuple(ShardRun(*triple)
                     for triple in self.shard_runs[shard_index])

    def to_json(self) -> str:
        return json.dumps({
            "version": self.version,
            "name": self.name,
            "total_nodes": self.total_nodes,
            "root_tag": self.root_tag,
            "spine_len": self.spine_len,
            "index_file": self.index_file,
            "shard_files": self.shard_files,
            "shard_runs": self.shard_runs,
        }, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ShardManifest":
        try:
            data = json.loads(text)
            if data["version"] != MANIFEST_VERSION:
                raise StorageError(
                    f"unsupported shard manifest version "
                    f"{data['version']!r} (supported: {MANIFEST_VERSION})",
                    check="manifest-version")
            return cls(version=data["version"], name=data["name"],
                       total_nodes=data["total_nodes"],
                       root_tag=data["root_tag"],
                       spine_len=data["spine_len"],
                       index_file=data["index_file"],
                       shard_files=list(data["shard_files"]),
                       shard_runs=[[list(run) for run in runs]
                                   for runs in data["shard_runs"]])
        except StorageError:
            raise
        except (KeyError, TypeError, ValueError) as err:
            raise StorageError(
                f"malformed shard manifest: {err}",
                check="manifest-parse") from err

    def save(self, path: Union[str, os.PathLike]) -> None:
        tmp = f"{os.fspath(path)}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "ShardManifest":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return cls.from_json(handle.read())
        except OSError as err:
            raise StorageError(
                f"cannot read shard manifest {os.fspath(path)!r}: {err}",
                check="manifest-read") from err


# -- splitting ---------------------------------------------------------------


def _spine_length(columns: ColumnarDocument) -> int:
    """Nodes replicated into every shard: the document node, the root
    element and the root element's attribute run (pres ``0 ..
    spine_len - 1``, always a global prefix)."""
    if columns.n < 2 or columns.kind[0] != KIND_DOCUMENT \
            or columns.kind[1] != KIND_ELEMENT:
        raise StorageError(
            "cannot shard: expected a document node followed by a root "
            "element", check="shard-spine")
    spine = 2
    while spine < columns.n and columns.kind[spine] == KIND_ATTRIBUTE \
            and columns.parent[spine] == 1:
        spine += 1
    return spine


def _partition_units(units: List[Tuple[int, int]],
                     shard_count: int) -> List[List[Tuple[int, int]]]:
    """Greedy contiguous balancing of ``(start, size)`` units into at
    most ``shard_count`` groups of roughly equal node count."""
    groups: List[List[Tuple[int, int]]] = []
    left = sum(size for _, size in units)
    remaining = shard_count
    current: List[Tuple[int, int]] = []
    current_size = 0
    for position, unit in enumerate(units):
        current.append(unit)
        current_size += unit[1]
        left -= unit[1]
        # Close the group once it reaches its fair share of what is
        # left.  Skew in the unit sizes (one giant subtree) can leave
        # fewer groups than requested — allowed, the mapping stays
        # correct either way.
        units_after = len(units) - position - 1
        if remaining > 1 and units_after >= 1 \
                and current_size >= (current_size + left) / remaining:
            groups.append(current)
            current = []
            current_size = 0
            remaining -= 1
    if current:
        groups.append(current)
    return groups


def split_document(columns: ColumnarDocument,
                   shard_count: int) -> List[DocumentShard]:
    """Partition ``columns`` into at most ``shard_count`` shards.

    Fewer shards are returned when the root element has fewer child
    subtrees than requested (a 1-unit document yields 1 shard).  Every
    shard's columns pass ``validate()``.
    """
    if shard_count < 1:
        raise StorageError(f"shard_count must be >= 1, got {shard_count}",
                           check="shard-count")
    spine_len = _spine_length(columns)
    units: List[Tuple[int, int]] = []
    pre = spine_len
    while pre < columns.n:
        end = columns.end[pre]
        units.append((pre, end - pre + 1))
        pre = end + 1
    if not units:
        # A spine-only document: one shard, identity mapping.
        shard = _build_shard(columns, 0, spine_len, [])
        return [shard]
    groups = _partition_units(units, min(shard_count, len(units)))
    return [_build_shard(columns, index, spine_len, group)
            for index, group in enumerate(groups)]


def _build_shard(columns: ColumnarDocument, index: int, spine_len: int,
                 units: Sequence[Tuple[int, int]]) -> DocumentShard:
    runs = [ShardRun(0, 0, spine_len)]
    local = spine_len
    for start, size in units:
        runs.append(ShardRun(local, start, size))
        local += size
    n = local

    level = array("i", bytes(4 * n))
    end = array("i", bytes(4 * n))
    parent = array("i", bytes(4 * n))
    kind = array("B", bytes(n))
    name_id = array("i", bytes(4 * n))
    text_id = array("i", bytes(4 * n))

    # Global→local pre for spine parents is the identity; inside a unit
    # the offset is constant per run.
    g_level, g_end, g_parent = columns.level, columns.end, columns.parent
    g_kind, g_name, g_text = columns.kind, columns.name_id, columns.text_id

    names: List[str] = []
    name_map: Dict[int, int] = {}
    texts: List[str] = []
    text_map: Dict[int, int] = {}

    def local_name(slot: int) -> int:
        if slot < 0:
            return -1
        mapped = name_map.get(slot)
        if mapped is None:
            mapped = name_map[slot] = len(names)
            names.append(columns.names[slot])
        return mapped

    def local_text(slot: int) -> int:
        if slot < 0:
            return -1
        mapped = text_map.get(slot)
        if mapped is None:
            mapped = text_map[slot] = len(texts)
            texts.append(columns.texts[slot])
        return mapped

    for run in runs:
        offset = run.local_start - run.global_start
        for g in range(run.global_start, run.global_start + run.length):
            p = g + offset
            level[p] = g_level[g]
            kind[p] = g_kind[g]
            name_id[p] = local_name(g_name[g])
            text_id[p] = local_text(g_text[g])
            if run.local_start == 0:
                # Spine: the document and root subtree now span the
                # whole shard; attribute ends are their own pre.
                end[p] = p if g_kind[g] == KIND_ATTRIBUTE else n - 1
                parent[p] = g_parent[g]
            else:
                end[p] = g_end[g] + offset
                gp = g_parent[g]
                # A unit root's parent is the root element (global pre
                # 1, in the spine — identity); interior parents are in
                # the same run.
                parent[p] = gp if gp < spine_len else gp + offset

    # The post column is determined by the region encoding: post order
    # sorts by (end, -level) — a node closes when its region does, and
    # of nodes sharing an end the deepest closes first.
    order = sorted(range(n), key=lambda p: (end[p], -level[p]))
    post = array("i", bytes(4 * n))
    for rank, p in enumerate(order):
        post[p] = rank

    tag_pres: Dict[str, array] = {}
    attribute_pres: Dict[str, array] = {}
    text_pres = array("i")
    element_pres = array("i")
    for p in range(n):
        k = kind[p]
        if k == KIND_ELEMENT:
            element_pres.append(p)
            tag_pres.setdefault(names[name_id[p]], array("i")).append(p)
        elif k == KIND_ATTRIBUTE:
            attribute_pres.setdefault(names[name_id[p]],
                                      array("i")).append(p)
        elif k == KIND_TEXT:
            text_pres.append(p)

    shard_columns = ColumnarDocument(
        post=post, level=level, end=end, parent=parent, kind=kind,
        name_id=name_id, text_id=text_id, names=names, texts=texts,
        tag_pres=dict(tag_pres), attribute_pres=dict(attribute_pres),
        text_pres=text_pres, element_pres=element_pres, uri=columns.uri)
    return DocumentShard(index=index, columns=shard_columns,
                         runs=tuple(runs), spine_len=spine_len)


# -- layout ------------------------------------------------------------------


def write_shard_layout(columns: ColumnarDocument,
                       directory: Union[str, os.PathLike],
                       name: str,
                       shard_count: int,
                       validate: bool = True) -> str:
    """Write the full index, all shards and the manifest under
    ``directory``; returns the manifest path.

    ``validate=True`` runs every shard through
    :meth:`ColumnarDocument.validate` before saving — cheap insurance
    that the remapping preserved the region-encoding invariants.
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    shards = split_document(columns, shard_count)
    if validate:
        for shard in shards:
            shard.columns.validate()
    index_file = f"{name}.rpxc"
    columns.save(os.path.join(directory, index_file))
    shard_files: List[str] = []
    shard_runs: List[List[List[int]]] = []
    for shard in shards:
        file_name = f"{name}.shard{shard.index}.rpxc"
        shard.columns.save(os.path.join(directory, file_name))
        shard_files.append(file_name)
        shard_runs.append([run.to_list() for run in shard.runs])
    root_tag = columns.name_of(1) or ""
    manifest = ShardManifest(version=MANIFEST_VERSION, name=name,
                             total_nodes=columns.n, root_tag=root_tag,
                             spine_len=shards[0].spine_len,
                             index_file=index_file,
                             shard_files=shard_files,
                             shard_runs=shard_runs)
    manifest_path = os.path.join(directory, f"{name}.manifest.json")
    manifest.save(manifest_path)
    return manifest_path
