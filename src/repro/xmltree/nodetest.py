"""XPath node tests.

A node test filters the nodes selected by an axis.  The fragment used by
the paper needs name tests (``person``), the wildcard (``*``) and the
kind tests ``node()``, ``text()`` and ``element()``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .node import AttributeNode, ElementNode, Node, TextNode


@dataclass(frozen=True)
class NodeTest:
    """Base class: matches principal-axis nodes only."""

    def matches(self, node: Node, principal_kind: str = "element") -> bool:
        raise NotImplementedError

    def to_string(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_string()


@dataclass(frozen=True)
class NameTest(NodeTest):
    """Matches elements (or attributes, on the attribute axis) by name."""

    name: str

    def matches(self, node: Node, principal_kind: str = "element") -> bool:
        if principal_kind == "attribute":
            return isinstance(node, AttributeNode) and node.name == self.name
        return isinstance(node, ElementNode) and node.name == self.name

    def to_string(self) -> str:
        return self.name


@dataclass(frozen=True)
class WildcardTest(NodeTest):
    """``*``: any node of the principal kind."""

    def matches(self, node: Node, principal_kind: str = "element") -> bool:
        if principal_kind == "attribute":
            return isinstance(node, AttributeNode)
        return isinstance(node, ElementNode)

    def to_string(self) -> str:
        return "*"


@dataclass(frozen=True)
class AnyKindTest(NodeTest):
    """``node()``: any node."""

    def matches(self, node: Node, principal_kind: str = "element") -> bool:
        return True

    def to_string(self) -> str:
        return "node()"


@dataclass(frozen=True)
class TextTest(NodeTest):
    """``text()``: text nodes."""

    def matches(self, node: Node, principal_kind: str = "element") -> bool:
        return isinstance(node, TextNode)

    def to_string(self) -> str:
        return "text()"


@dataclass(frozen=True)
class ElementTest(NodeTest):
    """``element()`` or ``element(name)``."""

    name: str | None = None

    def matches(self, node: Node, principal_kind: str = "element") -> bool:
        if not isinstance(node, ElementNode):
            return False
        return self.name is None or node.name == self.name

    def to_string(self) -> str:
        return f"element({self.name})" if self.name else "element()"


ANY_NODE = AnyKindTest()
ANY_ELEMENT = WildcardTest()


def name_test(name: str) -> NameTest:
    return NameTest(name)
