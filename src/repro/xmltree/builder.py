"""A small programmatic document builder.

For tests and applications that construct documents in code rather than
parsing XML text::

    from repro.xmltree.builder import E, build_document

    doc = build_document(
        E("site",
          E("person", E("name", "John"), id="p1"),
          E("person", E("name", "Mary"), id="p2")))

``E(tag, *children, **attributes)`` takes child elements and/or strings
(text nodes); attribute names that collide with Python keywords can be
passed with a trailing underscore (``class_="x"`` → ``class="x"``).
``build_document`` assigns the region encoding and returns an
:class:`~repro.xmltree.document.IndexedDocument` ready for querying.
"""

from __future__ import annotations

from typing import Union

from .document import IndexedDocument
from .node import DocumentNode, ElementNode, TextNode, assign_regions

Child = Union["E", str]


class E:
    """A lightweight element specification."""

    def __init__(self, tag: str, *children: Child, **attributes: object) -> None:
        self.tag = tag
        self.children = children
        self.attributes = {
            name.rstrip("_"): str(value)
            for name, value in attributes.items()
        }

    def to_node(self) -> ElementNode:
        element = ElementNode(self.tag)
        for name, value in self.attributes.items():
            element.set_attribute(name, value)
        for child in self.children:
            if isinstance(child, E):
                element.append_child(child.to_node())
            elif isinstance(child, str):
                # The XDM forbids adjacent text siblings: merge.
                previous = element.children[-1] if element.children else None
                if isinstance(previous, TextNode):
                    previous.text += child
                else:
                    element.append_child(TextNode(child))
            else:
                raise TypeError(
                    f"E() children must be E or str, got "
                    f"{type(child).__name__}")
        return element

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"E({self.tag!r}, {len(self.children)} children)"


def build_document(root: E, uri: str = "") -> IndexedDocument:
    """Materialize an :class:`E` tree as an indexed document."""
    document = DocumentNode(uri)
    document.append_child(root.to_node())
    assign_regions(document)
    return IndexedDocument(document)
