"""XML data model substrate: nodes, parsing, axes and document indexes."""

from .axes import Axis, axis_from_string, axis_nodes, step
from .builder import E, build_document
from .columnar import (ColumnarDocument, StorageError, is_columnar_file,
                       KIND_ATTRIBUTE, KIND_DOCUMENT, KIND_ELEMENT,
                       KIND_TEXT)
from .document import IndexedDocument, ddo, document_order, is_distinct_doc_ordered
from .node import (AttributeNode, DocumentNode, ElementNode, Node, TextNode,
                   assign_regions)
from .nodetest import (ANY_ELEMENT, ANY_NODE, AnyKindTest, ElementTest,
                       NameTest, NodeTest, TextTest, WildcardTest, name_test)
from .parser import XMLSyntaxError, parse_xml, parse_xml_file
from .serializer import serialize
from .shard import (DocumentShard, ShardManifest, ShardRun, split_document,
                    write_shard_layout)
from .summary import PathStats, PathSummary, SUMMARY_AXES

__all__ = [
    "Axis", "axis_from_string", "axis_nodes", "step",
    "E", "build_document",
    "ColumnarDocument", "StorageError", "is_columnar_file",
    "KIND_ATTRIBUTE", "KIND_DOCUMENT", "KIND_ELEMENT", "KIND_TEXT",
    "IndexedDocument", "ddo", "document_order", "is_distinct_doc_ordered",
    "AttributeNode", "DocumentNode", "ElementNode", "Node", "TextNode",
    "assign_regions",
    "ANY_ELEMENT", "ANY_NODE", "AnyKindTest", "ElementTest", "NameTest",
    "NodeTest", "TextTest", "WildcardTest", "name_test",
    "XMLSyntaxError", "parse_xml", "parse_xml_file",
    "serialize",
    "DocumentShard", "ShardManifest", "ShardRun", "split_document",
    "write_shard_layout",
    "PathStats", "PathSummary", "SUMMARY_AXES",
]
