"""A small, from-scratch XML parser.

Supports the XML subset needed by the reproduction: elements, attributes,
character data, CDATA sections, comments and processing instructions
(both skipped), the predefined entities and numeric character references.
Namespaces are treated lexically (prefixed names are kept verbatim),
which matches how the paper's queries use plain QNames.

The parser builds :class:`~repro.xmltree.node.DocumentNode` trees and
assigns the region encoding before returning.
"""

from __future__ import annotations

from typing import Optional

from ..guard.errors import ReproError
from .node import AttributeNode, DocumentNode, ElementNode, Node, TextNode, assign_regions

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:-.")


class XMLSyntaxError(ReproError):
    """Raised when the input is not well-formed XML (for our subset).

    Always carries ``position``; ``parse_xml`` attaches a full
    :class:`~repro.guard.errors.SourceSpan` (line, column and a
    caret-annotated snippet) before the error escapes."""

    code = "REPRO-XML-SYNTAX"

    def __init__(self, message: str, position: Optional[int] = None) -> None:
        super().__init__(message)
        self.position = position


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    # -- low-level helpers -------------------------------------------------

    def error(self, message: str) -> XMLSyntaxError:
        return XMLSyntaxError(message, self.pos)

    def peek(self) -> str:
        if self.pos >= self.length:
            raise self.error("unexpected end of input")
        return self.text[self.pos]

    def at_end(self) -> bool:
        return self.pos >= self.length

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos].isspace():
            self.pos += 1

    def read_name(self) -> str:
        start = self.pos
        if self.at_end() or not _is_name_start(self.text[self.pos]):
            raise self.error("expected a name")
        self.pos += 1
        while self.pos < self.length and _is_name_char(self.text[self.pos]):
            self.pos += 1
        return self.text[start:self.pos]

    def decode_entities(self, raw: str) -> str:
        if "&" not in raw:
            return raw
        parts: list[str] = []
        index = 0
        while True:
            amp = raw.find("&", index)
            if amp < 0:
                parts.append(raw[index:])
                break
            parts.append(raw[index:amp])
            semi = raw.find(";", amp + 1)
            if semi < 0:
                raise self.error("unterminated entity reference")
            entity = raw[amp + 1:semi]
            if entity.startswith("#x") or entity.startswith("#X"):
                parts.append(chr(int(entity[2:], 16)))
            elif entity.startswith("#"):
                parts.append(chr(int(entity[1:])))
            elif entity in _PREDEFINED_ENTITIES:
                parts.append(_PREDEFINED_ENTITIES[entity])
            else:
                raise self.error(f"unknown entity &{entity};")
            index = semi + 1
        return "".join(parts)

    # -- grammar -----------------------------------------------------------

    def parse_document(self, uri: str) -> DocumentNode:
        document = DocumentNode(uri)
        self.skip_misc()
        if self.at_end() or not self.startswith("<"):
            raise self.error("expected a document element")
        element = self.parse_element()
        document.append_child(element)
        self.skip_misc()
        if not self.at_end():
            raise self.error("content after document element")
        return document

    def skip_misc(self) -> None:
        """Skip whitespace, comments, PIs and the XML declaration."""
        while True:
            self.skip_whitespace()
            if self.startswith("<?"):
                self.skip_until("?>")
            elif self.startswith("<!--"):
                self.skip_until("-->")
            elif self.startswith("<!DOCTYPE"):
                self.skip_doctype()
            else:
                return

    def skip_until(self, token: str) -> None:
        end = self.text.find(token, self.pos)
        if end < 0:
            raise self.error(f"unterminated construct, expected {token!r}")
        self.pos = end + len(token)

    def skip_doctype(self) -> None:
        # Skip a DOCTYPE declaration, tolerating an internal subset.
        self.expect("<!DOCTYPE")
        depth = 1
        while depth > 0:
            if self.at_end():
                raise self.error("unterminated DOCTYPE")
            ch = self.text[self.pos]
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth -= 1
            self.pos += 1

    def parse_element(self) -> ElementNode:
        self.expect("<")
        name = self.read_name()
        element = ElementNode(name)
        seen_attributes: set[str] = set()
        while True:
            self.skip_whitespace()
            if self.startswith("/>"):
                self.pos += 2
                return element
            if self.startswith(">"):
                self.pos += 1
                break
            attr_name = self.read_name()
            if attr_name in seen_attributes:
                raise self.error(f"duplicate attribute {attr_name!r}")
            seen_attributes.add(attr_name)
            self.skip_whitespace()
            self.expect("=")
            self.skip_whitespace()
            quote = self.peek()
            if quote not in ("'", '"'):
                raise self.error("attribute value must be quoted")
            self.pos += 1
            end = self.text.find(quote, self.pos)
            if end < 0:
                raise self.error("unterminated attribute value")
            value = self.decode_entities(self.text[self.pos:end])
            self.pos = end + 1
            element.set_attribute(attr_name, value)
        self.parse_content(element)
        self.expect("</")
        close_name = self.read_name()
        if close_name != name:
            raise self.error(
                f"mismatched end tag: expected </{name}>, found </{close_name}>")
        self.skip_whitespace()
        self.expect(">")
        return element

    def parse_content(self, parent: ElementNode) -> None:
        """Parse element content iteratively (child elements use an
        explicit stack via mutual recursion bounded by tree depth kept
        shallow by re-entering :meth:`parse_element`)."""
        text_start = self.pos
        while True:
            if self.at_end():
                raise self.error("unterminated element content")
            ch = self.text[self.pos]
            if ch != "<":
                self.pos += 1
                continue
            if self.pos > text_start:
                raw = self.text[text_start:self.pos]
                parent.append_child(TextNode(self.decode_entities(raw)))
            if self.startswith("</"):
                return
            if self.startswith("<!--"):
                self.skip_until("-->")
            elif self.startswith("<![CDATA["):
                self.pos += len("<![CDATA[")
                end = self.text.find("]]>", self.pos)
                if end < 0:
                    raise self.error("unterminated CDATA section")
                parent.append_child(TextNode(self.text[self.pos:end]))
                self.pos = end + 3
            elif self.startswith("<?"):
                self.skip_until("?>")
            else:
                child = self.parse_element()
                parent.append_child(child)
            text_start = self.pos


def parse_xml(text: str, uri: str = "") -> DocumentNode:
    """Parse an XML string into a numbered document tree.

    Syntax errors escape with a :class:`~repro.guard.errors.SourceSpan`
    attached (line/column plus a caret-annotated snippet)."""
    try:
        document = _Parser(text).parse_document(uri)
    except XMLSyntaxError as err:
        raise err.attach_source(text)
    assign_regions(document)
    return document


def parse_xml_file(path: str) -> DocumentNode:
    """Parse an XML file into a numbered document tree."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_xml(handle.read(), uri=path)
