"""XML serialization for the node classes."""

from __future__ import annotations

from typing import Optional

from .node import AttributeNode, DocumentNode, ElementNode, Node, TextNode


def _escape_text(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attribute(text: str) -> str:
    return _escape_text(text).replace('"', "&quot;")


def serialize(node: Node, indent: Optional[int] = None) -> str:
    """Serialize a node (document, element, text or attribute) to XML.

    With ``indent`` set, element-only content is pretty-printed one
    element per line; mixed/text content is always emitted verbatim so
    round-tripping unindented documents is lossless.
    """
    if isinstance(node, TextNode):
        return _escape_text(node.text)
    if isinstance(node, AttributeNode):
        return f'{node.name}="{_escape_attribute(node.value)}"'
    if isinstance(node, DocumentNode):
        chunks = [serialize(child, indent) for child in node.children]
        separator = "\n" if indent is not None else ""
        return separator.join(chunks)
    if isinstance(node, ElementNode):
        parts: list[str] = []
        _serialize_element(node, parts, indent, 0)
        return "".join(parts)
    raise TypeError(f"cannot serialize {type(node).__name__}")


def _open_tag(element: ElementNode, self_closing: bool) -> str:
    attributes = "".join(
        f' {attribute.name}="{_escape_attribute(attribute.value)}"'
        for attribute in element.attributes)
    return f"<{element.name}{attributes}{'/' if self_closing else ''}>"


def _serialize_element(root: ElementNode, parts: list[str], indent: Optional[int], depth: int) -> None:
    """Serialize one element subtree using an explicit stack.

    Work items are ("node", node, depth) and ("close", tag-name, depth,
    pretty) pairs; "close" with pretty=True is preceded by a newline and
    indentation.
    """
    stack: list[tuple] = [("node", root, depth)]
    while stack:
        item = stack.pop()
        if item[0] == "close":
            _, tag, level, pretty = item
            if pretty:
                parts.append("\n" + " " * ((indent or 0) * level))
            parts.append(f"</{tag}>")
            continue
        _, node, level = item
        if isinstance(node, TextNode):
            parts.append(_escape_text(node.text))
            continue
        assert isinstance(node, ElementNode)
        if indent is not None and level > depth:
            parts.append("\n" + " " * (indent * level))
        if not node.children:
            parts.append(_open_tag(node, self_closing=True))
            continue
        parts.append(_open_tag(node, self_closing=False))
        has_text = any(isinstance(child, TextNode) for child in node.children)
        pretty_close = indent is not None and not has_text
        stack.append(("close", node.name, level, pretty_close))
        for child in reversed(node.children):
            # Inside mixed content, suppress indentation by keeping the
            # child at the parent's level when text is present.
            child_level = level + 1 if not has_text else depth
            stack.append(("node", child, child_level))
