"""Runtime shims called from generated pipeline code.

The code generator (:mod:`repro.compiled.codegen`) emits plain Python
loops; everything with interpreter-visible semantics — pattern
evaluation with its chaos point and error wrapping, context-node
checking, the dynamic-error raises — funnels through this module so the
generated source stays small and the behaviour stays byte-identical to
:mod:`repro.algebra.eval`.

Every helper mirrors one code path of the interpreter, including error
messages: the differential test wall compares the two backends down to
the rendered error text.
"""

from __future__ import annotations

from typing import List

from ..guard.chaos import chaos_point
from ..guard.errors import AlgorithmError
from ..guard.governor import BudgetExceeded
from ..algebra.runtime import DynamicError, Sequence_
from ..xmltree.node import Node

__all__ = ["context_nodes", "raise_dynamic", "ttp_eval", "unknown_field"]


def ttp_eval(strategy, document, contexts, pattern):
    """One pattern evaluation, exactly as ``_eval_ttp`` performs it:
    through the ``eval.ttp`` chaos point, with budget/dynamic errors
    propagated and any algorithm failure wrapped in
    :class:`~repro.guard.AlgorithmError` (eligible for strategy
    fallback)."""
    try:
        return chaos_point(
            "eval.ttp", strategy.evaluate(document, contexts, pattern))
    except (BudgetExceeded, DynamicError):
        raise
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as err:
        name = getattr(strategy, "name", type(strategy).__name__)
        raise AlgorithmError(
            f"physical algorithm {name!r} failed: {err}",
            algorithm=name) from err


def context_nodes(values: Sequence_) -> List[Node]:
    """The pattern's context nodes from a tuple field's item sequence
    (mirrors ``_context_nodes``)."""
    nodes: list[Node] = []
    for value in values:
        if not isinstance(value, Node):
            raise DynamicError("tree pattern context is not a node")
        nodes.append(value)
    return nodes


def unknown_field(name: str) -> Sequence_:
    """A field read that no enclosing tuple defines (mirrors
    ``EvalContext.lookup_field`` falling off the scope chain)."""
    raise DynamicError(f"unknown tuple field {name}")


def raise_dynamic(message: str) -> Sequence_:
    """Raise a :class:`DynamicError` from generated code."""
    raise DynamicError(message)
