"""The compiled (push-based, produce/consume) execution backend.

Selected with ``Engine(backend="compiled")`` or the CLI's ``--backend
compiled``; see :mod:`repro.compiled.codegen` for the architecture and
``docs/PIPELINE.md`` for the breaker rules and escape hatch.
"""

from .codegen import CodegenError, CompiledPlan, compile_count, compile_plan

__all__ = ["CodegenError", "CompiledPlan", "compile_count", "compile_plan"]
