"""Produce/consume plan compilation (ROADMAP item 1).

The interpreter in :mod:`repro.algebra.eval` is strict and pull-based:
every operator materializes its whole result, and every evaluation pays
an isinstance-dispatch plus (when observability is attached) a metrics/
governor/trace wrapper call.  This module removes that overhead by
*compiling* a plan into one Python function: the tuple-sorted operator
chains (``MapFromItem`` → ``Select`` → ``TupleTreePattern`` → …) fuse
into nested loops with **tuple-at-a-time push semantics** — a tuple is a
set of Python locals, pushed through the downstream stages' code the
moment it is produced — and only the *pipeline breakers* materialize:

* ``fs:ddo`` (sort + duplicate removal needs the whole sequence),
* aggregation ``FnCall``\\ s whose argument drains a tuple pipeline,
* the pattern evaluation inside ``TupleTreePattern`` (the join's build
  side: :meth:`~repro.physical.base.TreePatternAlgorithm.evaluate`
  returns the per-tuple binding list in one call).

The architecture follows the ``CompileState``/``Pipelined`` design of
push-based query compilers: each tuple operator's code generator calls
its input's generator with a *consume* callback that emits the
downstream per-tuple code into the innermost loop body.

**Parity discipline.**  Two function variants are generated per plan.
The *fast* variant assumes no observability is attached — exactly the
interpreter's ``metrics is None and governor is None and trace is None``
early-out — and keeps only the semantics (including chaos points, which
fire in plain runs too).  The *instrumented* variant re-emits every
interpreter-side effect at the structurally matching point: one
``operator_evals`` increment, span begin/end, ``record_op``, governor
``tick``/``enter``/``leave``/``note_output`` per operator *activation*,
with per-stage push counters standing in for the interpreter's
``len(result)``.  Counter values are exact; only span *parentage* and
governor *depth* differ inside fused pipelines (stages stay open while
downstream per-tuple code runs) — the documented breaker-materialization
tolerance the property suite allows for.

Field names are uniquified at algebra-compile time (see
``repro.algebra.compile``), so tuple fields map to Python locals with a
flat compile-time scope and never shadow.  Generated source embeds no
runtime ids and no memory addresses: compiling the same query twice
yields the same source text (snapshot-stable).
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..algebra.eval import EvalContext, _is_numeric_singleton
from ..algebra.functions import call_function
from ..algebra.ops import (Arith, Compare, Const, DDOPlan, FieldAccess,
                           FnCall, IfPlan, InputTuple, ItemPlan, LetPlan,
                           Logical, MapFromItem, MapToItem, Plan, Select,
                           SeqPlan, TreeJoin, TuplePlan, TupleTreePattern,
                           TypeswitchPlan, VarPlan, walk_plan)
from ..algebra.runtime import (DynamicError, Sequence_, arithmetic,
                               effective_boolean_value, general_compare)
from ..guard.errors import ReproError
from ..pattern import TreePattern
from ..physical.base import TreePatternAlgorithm
from ..xmltree.axes import step as axis_step
from ..xmltree.document import ddo
from ..xmltree.node import Node
from ..xqcore.cast import Var
from .runtime import context_nodes, raise_dynamic, ttp_eval, unknown_field

__all__ = ["CodegenError", "CompiledPlan", "compile_plan", "compile_count"]


class CodegenError(ReproError):
    """The plan compiler cannot generate code for this plan.

    Raised at codegen time, never from generated code; the engine
    reacts by falling back to the interpreted backend (recording a
    :class:`~repro.guard.FallbackEvent`)."""

    code = "REPRO-CODEGEN"


#: total successful :func:`compile_plan` runs in this process — lets the
#: cache-reuse tests prove a plan is generated once and re-run many
#: times.
_COMPILE_COUNT = itertools.count()
_COMPILED_TOTAL = 0


def compile_count() -> int:
    """How many plans have been compiled to Python so far."""
    return _COMPILED_TOTAL


#: functions every generated module can see.  Names are short because
#: they appear once per call site in generated source.
_HELPERS = {
    "_step": axis_step,
    "_ddo": ddo,
    "_ebv": effective_boolean_value,
    "_gc": general_compare,
    "_arith": arithmetic,
    "_call": call_function,
    "_ttp_eval": ttp_eval,
    "_ctx_nodes": context_nodes,
    "_unknown_field": unknown_field,
    "_raise_dyn": raise_dynamic,
    "_is_num1": _is_numeric_singleton,
    "_Node": Node,
    "_Dyn": DynamicError,
}

#: aggregate-style built-ins: a call over a tuple pipeline drains it.
_PIPELINE_SINKS = (MapToItem,)


@dataclass
class CompiledPlan:
    """One plan compiled to Python, in both variants.

    ``source`` is the fast variant's text (the snapshot the unit tests
    pin); ``breakers`` names every materialization point, in emission
    order.
    """

    plan: ItemPlan
    source: str
    instrumented_source: str
    breakers: Tuple[str, ...]
    _fast: Callable[[EvalContext], Sequence_]
    _instrumented: Callable[[EvalContext], Sequence_]

    def run(self, ctx: EvalContext) -> Sequence_:
        """Evaluate; the same is-None dispatch as the interpreter's
        ``eval_item`` picks the variant."""
        if ctx.metrics is None and ctx.governor is None \
                and ctx.trace is None:
            return self._fast(ctx)
        return self._instrumented(ctx)


def compile_plan(plan: ItemPlan) -> CompiledPlan:
    """Compile an item plan into a :class:`CompiledPlan`.

    Raises :class:`CodegenError` — and nothing else — when the plan (or
    a pattern inside it) is outside the compilable fragment.
    """
    global _COMPILED_TOTAL
    if not isinstance(plan, ItemPlan):
        raise CodegenError(
            f"can only compile item-sorted root plans, "
            f"got {type(plan).__name__}")
    try:
        fast = _Codegen(instrumented=False).generate(plan)
        instrumented = _Codegen(instrumented=True).generate(plan)
        fast_fn = _assemble(*fast[:2])
        instrumented_fn = _assemble(*instrumented[:2])
    except CodegenError:
        raise
    except Exception as err:  # defensive: never leak codegen bugs
        raise CodegenError(
            f"plan code generation failed: {err}") from err
    _COMPILED_TOTAL = next(_COMPILE_COUNT) + 1
    return CompiledPlan(plan=plan, source=fast[0],
                        instrumented_source=instrumented[0],
                        breakers=tuple(fast[2]),
                        _fast=fast_fn, _instrumented=instrumented_fn)


def _assemble(source: str, consts: List[object]) -> Callable:
    namespace = dict(_HELPERS)
    for index, value in enumerate(consts):
        namespace[f"_k{index}"] = value
    code = compile(source, "<repro.compiled>", "exec")
    exec(code, namespace)
    return namespace["_compiled"]


class _Codegen:
    """One generation pass over a plan (fast or instrumented)."""

    def __init__(self, instrumented: bool) -> None:
        self.instrumented = instrumented
        self.lines: List[str] = []
        self.indent = 1
        self.consts: List[object] = []
        self._const_names: Dict[int, str] = {}
        self._counter = 0
        self.breakers: List[str] = []
        #: compile-time scope: tuple field name -> local; let var -> local.
        self.fields: Dict[str, str] = {}
        self.vars: Dict[Var, str] = {}
        #: > 0 while emitting a dependent sub-plan (``IN`` is bound).
        self.in_tuple = 0

    # -- emission primitives ------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"_{prefix}{self._counter}"

    def const(self, value: object) -> str:
        name = self._const_names.get(id(value))
        if name is None:
            name = f"_k{len(self.consts)}"
            self.consts.append(value)
            self._const_names[id(value)] = name
        return name

    @contextmanager
    def block(self):
        """An indented suite; emits ``pass`` if the body stays empty."""
        self.indent += 1
        mark = len(self.lines)
        try:
            yield
        finally:
            if len(self.lines) == mark:
                self.emit("pass")
            self.indent -= 1

    @contextmanager
    def scoped_fields(self, bindings: Dict[str, str]):
        saved = {name: self.fields.get(name) for name in bindings}
        self.fields.update(bindings)
        try:
            yield
        finally:
            for name, previous in saved.items():
                if previous is None:
                    self.fields.pop(name, None)
                else:
                    self.fields[name] = previous

    @contextmanager
    def scoped_var(self, var: Var, local: str):
        previous = self.vars.get(var)
        self.vars[var] = local
        try:
            yield
        finally:
            if previous is None:
                del self.vars[var]
            else:
                self.vars[var] = previous

    @contextmanager
    def dependent(self):
        """Emitting a per-tuple dependent sub-plan (``IN`` is bound)."""
        self.in_tuple += 1
        try:
            yield
        finally:
            self.in_tuple -= 1

    # -- instrumentation (parity with eval_item / eval_tuples) --------------

    def begin_op(self, plan: Plan) -> Optional[str]:
        """Per-activation pre-instrumentation, mirroring the interpreter
        wrapper order: metrics count, span begin, governor tick+enter."""
        if not self.instrumented:
            return None
        name = type(plan).__name__
        span = self.fresh("sp")
        self.emit(f"if _m is not None: _m.operator_evals[{name!r}] += 1")
        self.emit(f"{span} = _tr.begin_span({name!r}) "
                  f"if _tr is not None else None")
        self.emit("if _gov is not None:")
        with self.block():
            self.emit("_gov.tick()")
            self.emit("_gov.enter()")
        return span

    def end_op(self, plan: Plan, span: Optional[str], count: str,
               produced: str) -> None:
        """Per-activation post-instrumentation: governor leave +
        note_output, span end + record_op, produced counter.  ``count``
        is a runtime expression for the activation's cardinality."""
        if not self.instrumented:
            return
        name = type(plan).__name__
        self.emit("if _gov is not None:")
        with self.block():
            self.emit("_gov.leave()")
            self.emit(f"_gov.note_output({count})")
        self.emit(f"if {span} is not None:")
        with self.block():
            self.emit(f"_tr.end_span({span}, rows={count})")
            self.emit(f"_tr.record_op(id({self.const(plan)}), {name!r}, "
                      f"{span}.duration, {count})")
        self.emit(f"if _m is not None: _m.{produced} += {count}")

    # -- entry point --------------------------------------------------------

    def generate(self, plan: ItemPlan):
        """Emit the whole function; returns (source, consts, breakers)."""
        out = self.item(plan)
        self.emit(f"return {out}")
        header = ["def _compiled(ctx):",
                  "    _doc = ctx.document",
                  "    _strategy = ctx.strategy",
                  "    _lookupv = ctx.lookup_var"]
        if self.instrumented:
            header += ["    _m = ctx.metrics",
                       "    _gov = ctx.governor",
                       "    _tr = ctx.trace"]
        source = "\n".join(header + self.lines) + "\n"
        return source, self.consts, self.breakers

    # -- item-sorted operators ----------------------------------------------

    def item(self, plan: ItemPlan) -> str:
        """Emit one item-operator activation; returns the local holding
        its materialized result list."""
        span = self.begin_op(plan)
        out = self._item_body(plan)
        self.end_op(plan, span, f"len({out})", "items_produced")
        return out

    def _item_body(self, plan: ItemPlan) -> str:
        out = self.fresh("s")
        if isinstance(plan, Const):
            self.emit(f"{out} = list({self.const(plan.values)})")
        elif isinstance(plan, VarPlan):
            local = self.vars.get(plan.var)
            if local is not None:
                self.emit(f"{out} = list({local})")
            else:
                self.emit(f"{out} = list(_lookupv({self.const(plan.var)}))")
        elif isinstance(plan, FieldAccess):
            local = self.fields.get(plan.field)
            if local is not None:
                self.emit(f"{out} = list({local})")
            else:
                self.emit(f"{out} = _unknown_field({plan.field!r})")
        elif isinstance(plan, TreeJoin):
            inp = self.item(plan.input)
            axis = self.const(plan.axis)
            test = self.const(plan.test)
            item = self.fresh("i")
            self.emit(f"{out} = []")
            self.emit(f"for {item} in {inp}:")
            with self.block():
                self.emit(f"if not isinstance({item}, _Node):")
                with self.block():
                    self.emit('_raise_dyn("TreeJoin over a non-node item")')
                self.emit(f"{out}.extend(_step({item}, {axis}, {test}))")
        elif isinstance(plan, DDOPlan):
            self.breakers.append("ddo")
            inp = self.item(plan.input)
            item = self.fresh("i")
            self.emit(f"for {item} in {inp}:")
            with self.block():
                self.emit(f"if not isinstance({item}, _Node):")
                with self.block():
                    self.emit('_raise_dyn("fs:ddo over a non-node item")')
            self.emit(f"{out} = _ddo({inp})")
        elif isinstance(plan, MapToItem):
            self.emit(f"{out} = []")

            def consume() -> None:
                with self.dependent():
                    dep = self.item(plan.dep)
                self.emit(f"{out}.extend({dep})")

            self.tuples(plan.input, consume)
        elif isinstance(plan, FnCall):
            if any(isinstance(node, _PIPELINE_SINKS)
                   for arg in plan.args for node in walk_plan(arg)):
                # plan.name already carries its namespace ("fn:count").
                self.breakers.append(plan.name)
            args = [self.item(arg) for arg in plan.args]
            self.emit(f"{out} = _call({plan.name!r}, [{', '.join(args)}])")
        elif isinstance(plan, Compare):
            left = self.item(plan.left)
            right = self.item(plan.right)
            self.emit(f"{out} = [_gc({plan.op!r}, {left}, {right})]")
        elif isinstance(plan, Logical):
            left = self.item(plan.left)
            short = "[False]" if plan.op == "and" else "[True]"
            guard = "not _ebv" if plan.op == "and" else "_ebv"
            self.emit(f"if {guard}({left}):")
            with self.block():
                self.emit(f"{out} = {short}")
            self.emit("else:")
            with self.block():
                right = self.item(plan.right)
                self.emit(f"{out} = [_ebv({right})]")
        elif isinstance(plan, Arith):
            left = self.item(plan.left)
            right = self.item(plan.right)
            self.emit(f"{out} = _arith({plan.op!r}, {left}, {right})")
        elif isinstance(plan, IfPlan):
            condition = self.item(plan.condition)
            self.emit(f"if _ebv({condition}):")
            with self.block():
                then = self.item(plan.then_branch)
                self.emit(f"{out} = {then}")
            self.emit("else:")
            with self.block():
                other = self.item(plan.else_branch)
                self.emit(f"{out} = {other}")
        elif isinstance(plan, LetPlan):
            value = self.item(plan.value)
            with self.scoped_var(plan.var, value):
                body = self.item(plan.body)
            self.emit(f"{out} = {body}")
        elif isinstance(plan, SeqPlan):
            self.emit(f"{out} = []")
            for item_plan in plan.items:
                part = self.item(item_plan)
                self.emit(f"{out}.extend({part})")
        elif isinstance(plan, TypeswitchPlan):
            value = self.item(plan.input)
            numeric = next((case for case in plan.cases
                            if case.seqtype == "numeric"), None)
            if numeric is not None:
                self.emit(f"if _is_num1({value}):")
                with self.block():
                    with self.scoped_var(numeric.var, value):
                        body = self.item(numeric.body)
                    self.emit(f"{out} = {body}")
                self.emit("else:")
                with self.block():
                    with self.scoped_var(plan.default_var, value):
                        default = self.item(plan.default_body)
                    self.emit(f"{out} = {default}")
            else:
                with self.scoped_var(plan.default_var, value):
                    default = self.item(plan.default_body)
                self.emit(f"{out} = {default}")
        else:
            raise CodegenError(
                f"cannot compile item operator {type(plan).__name__}")
        return out

    # -- tuple-sorted operators (the fused pipelines) ------------------------

    def tuples(self, plan: TuplePlan, consume: Callable[[], None]) -> None:
        """Emit the pipeline rooted at ``plan``, calling ``consume`` to
        emit the downstream per-tuple code into the innermost loop."""
        span = self.begin_op(plan)
        counter = None
        if self.instrumented:
            counter = self.fresh("n")
            self.emit(f"{counter} = 0")

        def push() -> None:
            if counter is not None:
                self.emit(f"{counter} += 1")
            consume()

        self._tuples_body(plan, push)
        self.end_op(plan, span, counter or "0", "tuples_produced")

    def _tuples_body(self, plan: TuplePlan,
                     push: Callable[[], None]) -> None:
        if isinstance(plan, InputTuple):
            if not self.in_tuple:
                self.emit('_raise_dyn("IN used outside a dependent plan")')
            else:
                push()
        elif isinstance(plan, MapFromItem):
            items = self.item(plan.input)
            item = self.fresh("i")
            bindings = {plan.bind_field: self.fresh("f")}
            if plan.index_field is not None:
                index = self.fresh("x")
                bindings[plan.index_field] = self.fresh("f")
                self.emit(f"for {index}, {item} in enumerate({items}, 1):")
            else:
                self.emit(f"for {item} in {items}:")
            with self.block():
                self.emit(f"{bindings[plan.bind_field]} = [{item}]")
                if plan.index_field is not None:
                    self.emit(f"{bindings[plan.index_field]} = [{index}]")
                with self.scoped_fields(bindings):
                    push()
        elif isinstance(plan, Select):
            def filtered() -> None:
                with self.dependent():
                    predicate = self.item(plan.predicate)
                self.emit(f"if _ebv({predicate}):")
                with self.block():
                    push()

            self.tuples(plan.input, filtered)
        elif isinstance(plan, TupleTreePattern):
            self._ttp_body(plan, push)
        else:
            raise CodegenError(
                f"cannot compile tuple operator {type(plan).__name__}")

    def _ttp_body(self, plan: TupleTreePattern,
                  push: Callable[[], None]) -> None:
        pattern: TreePattern = plan.pattern
        main_fields = [step.output_field for step in pattern.path.steps
                       if step.output_field is not None]
        if len(main_fields) != len(pattern.output_fields()):
            # Predicate-branch output fields would be bound dynamically
            # per binding dict; the optimizer never emits them
            # (``add_predicates`` strips branch outputs), so refuse
            # rather than guess.
            raise CodegenError(
                "cannot compile a tree pattern with output fields on "
                f"predicate branches: {pattern.to_string()}")
        if TreePatternAlgorithm.is_pipeline_breaker:
            self.breakers.append("pattern")
        pattern_const = self.const(pattern)
        self.emit("if _doc is None:")
        with self.block():
            self.emit('_raise_dyn("TupleTreePattern requires an '
                      'indexed document")')

        def per_tuple() -> None:
            contexts = self.fresh("c")
            source = self.fields.get(pattern.input_field)
            if source is None:
                source = f"_unknown_field({pattern.input_field!r})"
            self.emit(f"{contexts} = _ctx_nodes({source})")
            bindings = self.fresh("b")
            self.emit(f"{bindings} = _ttp_eval(_strategy, _doc, {contexts},"
                      f" {pattern_const})")
            binding = self.fresh("t")
            self.emit(f"for {binding} in {bindings}:")
            with self.block():
                locals_ = {name: self.fresh("f") for name in main_fields}
                for name, local in locals_.items():
                    self.emit(f"{local} = [{binding}[{name!r}]]")
                with self.scoped_fields(locals_):
                    push()

        self.tuples(plan.input, per_tuple)
