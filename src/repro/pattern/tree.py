"""Tree patterns (paper Section 4.1).

The grammar::

    TreePattern ::= IN#FieldName (/ Pattern)?
    Pattern     ::= Step ([Pattern])* (/ Pattern)?
    Step        ::= Axis NodeTest ({FieldName})?

A tree pattern names the tuple field holding the context nodes
(``IN#dot``), then a path of steps; each step may carry predicate
*branches* (existential sub-patterns in square brackets) and an optional
*output field* annotation in curly braces.  The *extraction point* is
the last step of the main path (Definition 4.1).

The structure is immutable-by-convention: the merge operations used by
the algebraic rules (d)/(e) return new patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from ..guard.errors import ReproError
from ..xmltree.axes import Axis, axis_from_string
from ..xmltree.nodetest import (AnyKindTest, ElementTest, NameTest, NodeTest,
                                TextTest, WildcardTest)


class PatternError(ReproError):
    """Raised on malformed patterns."""

    code = "REPRO-PATTERN"


@dataclass(frozen=True)
class PatternStep:
    """One step of a pattern: axis, node test, branches, output field.

    ``position`` is the *positional tree pattern* extension (the paper's
    Section 7 future work): when set to n, only the n-th candidate — in
    document order, counted per single preceding context node, after the
    existential branches have filtered — survives.  This is the
    semantics of the XPath step ``axis::test[P1]...[Pk][n]``.
    """

    axis: Axis
    test: NodeTest
    predicates: tuple["PatternPath", ...] = ()
    output_field: Optional[str] = None
    position: Optional[int] = None

    def to_string(self) -> str:
        text = f"{self.axis.value}::{self.test.to_string()}"
        if self.output_field is not None:
            text += "{" + self.output_field + "}"
        for predicate in self.predicates:
            text += "[" + predicate.to_string() + "]"
        if self.position is not None:
            text += f"[{self.position}]"
        return text

    def with_position(self, position: int) -> "PatternStep":
        return replace(self, position=position)

    def without_output(self) -> "PatternStep":
        return replace(self, output_field=None)

    def with_output(self, field_name: Optional[str]) -> "PatternStep":
        return replace(self, output_field=field_name)

    def with_predicates(self, extra: tuple["PatternPath", ...]) -> "PatternStep":
        return replace(self, predicates=self.predicates + tuple(extra))


@dataclass(frozen=True)
class PatternPath:
    """A ``/``-chain of steps."""

    steps: tuple[PatternStep, ...]

    def to_string(self) -> str:
        return "/".join(step.to_string() for step in self.steps)

    @property
    def last(self) -> PatternStep:
        return self.steps[-1]

    def replace_last(self, step: PatternStep) -> "PatternPath":
        return PatternPath(self.steps[:-1] + (step,))

    def concat(self, other: "PatternPath") -> "PatternPath":
        return PatternPath(self.steps + other.steps)

    def strip_outputs(self) -> "PatternPath":
        return PatternPath(tuple(
            replace(step, output_field=None,
                    predicates=tuple(p.strip_outputs()
                                     for p in step.predicates))
            for step in self.steps))


@dataclass(frozen=True)
class TreePattern:
    """A complete tree pattern with its input-field designation."""

    input_field: str
    path: PatternPath

    def to_string(self) -> str:
        return f"IN#{self.input_field}/{self.path.to_string()}"

    def __str__(self) -> str:
        return self.to_string()

    # -- structural queries -------------------------------------------------

    @property
    def extraction_point(self) -> PatternStep:
        """The last step of the main path (Definition 4.1)."""
        return self.path.last

    def output_fields(self) -> List[str]:
        """All output-field annotations, in root-to-leaf lexical order."""
        fields: list[str] = []

        def collect(path: PatternPath) -> None:
            for step in path.steps:
                if step.output_field is not None:
                    fields.append(step.output_field)
                for predicate in step.predicates:
                    collect(predicate)

        collect(self.path)
        return fields

    def is_single_output_at_extraction_point(self) -> bool:
        """True when the only output field sits on the extraction point —
        the case in which the operator's semantics coincides with XPath
        (Section 4.1)."""
        fields = self.output_fields()
        return (len(fields) == 1
                and self.extraction_point.output_field == fields[0])

    def is_downward(self) -> bool:
        """All axes are within the tree-pattern fragment (downward)."""

        def check(path: PatternPath) -> bool:
            return all(step.axis.is_downward
                       and all(check(p) for p in step.predicates)
                       for step in path.steps)

        return check(self.path)

    # -- merge operations used by the optimizer -----------------------------

    def append_path(self, continuation: PatternPath,
                    output_field: Optional[str]) -> "TreePattern":
        """Rule (d): extend the main path with ``continuation``.

        The old extraction point loses its output annotation; the new
        extraction point is the last step of the continuation, annotated
        with ``output_field``.
        """
        trimmed = self.path.replace_last(self.path.last.without_output())
        continuation = PatternPath(
            continuation.steps[:-1]
            + (continuation.last.with_output(output_field),))
        return TreePattern(self.input_field, trimmed.concat(continuation))

    def append_path_keeping_output(self, continuation: PatternPath,
                                   output_field: Optional[str]
                                   ) -> "TreePattern":
        """The multi-variable merge: extend the main path while *keeping*
        the old extraction point's output annotation.

        The result is a multi-output pattern whose root-to-leaf lexical
        binding order coincides with the order of the two composed
        single-output patterns — the basis of the multi-variable
        tree-pattern extension (the paper's "future work" in Section 1).
        """
        continuation = PatternPath(
            continuation.steps[:-1]
            + (continuation.last.with_output(output_field),))
        return TreePattern(self.input_field, self.path.concat(continuation))

    def add_predicates(self, branches: List[PatternPath]) -> "TreePattern":
        """Rule (e): attach existential branches at the extraction point.

        Output annotations inside the branches are dropped — predicate
        branches only assert existence.
        """
        stripped = tuple(branch.strip_outputs() for branch in branches)
        new_last = self.path.last.with_predicates(stripped)
        return TreePattern(self.input_field, self.path.replace_last(new_last))


def single_step_pattern(input_field: str, axis: Axis, test: NodeTest,
                        output_field: str) -> TreePattern:
    """The pattern introduced by rules (a)/(b) for one ``TreeJoin``."""
    step = PatternStep(axis=axis, test=test, predicates=(),
                       output_field=output_field)
    return TreePattern(input_field, PatternPath((step,)))


# -- parsing (for tests and the pattern-language examples) -------------------


def parse_pattern(text: str) -> TreePattern:
    """Parse the paper's pattern notation, e.g.
    ``IN#x/descendant::a/child::c{y}[@id]/child::d{z}``."""
    parser = _PatternParser(text)
    pattern = parser.parse_tree_pattern()
    parser.expect_end()
    return pattern


class _PatternParser:
    def __init__(self, text: str) -> None:
        self.text = text.strip()
        self.pos = 0

    def error(self, message: str) -> PatternError:
        return PatternError(f"{message} (at offset {self.pos} in {self.text!r})")

    def expect(self, token: str) -> None:
        if not self.text.startswith(token, self.pos):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def expect_end(self) -> None:
        if self.pos != len(self.text):
            raise self.error("trailing input")

    def _name(self) -> str:
        start = self.pos
        while (self.pos < len(self.text)
               and (self.text[self.pos].isalnum()
                    or self.text[self.pos] in "_-.")):
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a name")
        return self.text[start:self.pos]

    def parse_tree_pattern(self) -> TreePattern:
        self.expect("IN#")
        input_field = self._name()
        self.expect("/")
        return TreePattern(input_field, self.parse_path())

    def parse_path(self) -> PatternPath:
        steps = [self.parse_step()]
        while self.text.startswith("/", self.pos):
            self.pos += 1
            steps.append(self.parse_step())
        return PatternPath(tuple(steps))

    def parse_step(self) -> PatternStep:
        if self.text.startswith("@", self.pos):
            self.pos += 1
            axis = Axis.ATTRIBUTE
        else:
            axis_name = self._name()
            separator = "::"
            if not self.text.startswith(separator, self.pos):
                # An unqualified name is a child step (abbreviated syntax).
                return self._finish_step(Axis.CHILD, self._test_from(axis_name))
            self.pos += len(separator)
            axis = axis_from_string(
                {"desc": "descendant", "dos": "descendant-or-self"}.get(
                    axis_name, axis_name))
        test = self.parse_test()
        return self._finish_step(axis, test)

    def parse_test(self) -> NodeTest:
        if self.text.startswith("*", self.pos):
            self.pos += 1
            return WildcardTest()
        name = self._name()
        return self._test_from(name, consume_parens=True)

    def _test_from(self, name: str, consume_parens: bool = False) -> NodeTest:
        if consume_parens and self.text.startswith("()", self.pos):
            self.pos += 2
            if name == "node":
                return AnyKindTest()
            if name == "text":
                return TextTest()
            if name == "element":
                return ElementTest()
            raise self.error(f"unknown kind test {name}()")
        return NameTest(name)

    def _finish_step(self, axis: Axis, test: NodeTest) -> PatternStep:
        output_field: Optional[str] = None
        predicates: list[PatternPath] = []
        position: Optional[int] = None
        while self.pos < len(self.text) and self.text[self.pos] in "{[":
            if self.text[self.pos] == "{":
                self.pos += 1
                output_field = self._name()
                self.expect("}")
            else:
                self.pos += 1
                if self.text[self.pos:self.pos + 1].isdigit():
                    start = self.pos
                    while self.text[self.pos:self.pos + 1].isdigit():
                        self.pos += 1
                    position = int(self.text[start:self.pos])
                else:
                    predicates.append(self.parse_path())
                self.expect("]")
        return PatternStep(axis=axis, test=test,
                           predicates=tuple(predicates),
                           output_field=output_field,
                           position=position)
