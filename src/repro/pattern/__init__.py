"""Tree patterns: structure, parsing and merge operations (paper §4.1)."""

from .tree import (PatternError, PatternPath, PatternStep, TreePattern,
                   parse_pattern, single_step_pattern)

__all__ = ["PatternError", "PatternPath", "PatternStep", "TreePattern",
           "parse_pattern", "single_step_pattern"]
