"""Static sequence facts: document order, duplicates, separation, cardinality.

This is the fact half of the document-order analysis of Hidders,
Michiels, Siméon & Vercammen (the paper's [19]): a sound bottom-up
judgment of whether a core expression always yields a sequence that is

* ``ord_nodup`` — sorted in document order and duplicate-free (so that
  ``fs:distinct-doc-order`` on it is the identity),
* ``separated`` — contains no two nodes related by ancestorship (the
  TR's key refinement: child steps from separated, sorted contexts stay
  sorted and separated, which is why FLWOR spellings of child-only paths
  need no re-sorting), and
* ``singleton`` — exactly one item (so iteration is degenerate).

The crucial composite rule (the "loop rule"): for
``for $x in E (where C)? return B`` where

* ``E`` is sorted, duplicate-free and separated, and
* ``B``'s results are confined to the subtree of ``$x``
  (:func:`confined_to_subtree`), and
* ``B`` is per-iteration sorted and duplicate-free,

the concatenated loop result is sorted and duplicate-free — successive
iterations produce blocks from disjoint subtrees in document order.
The rules are deliberately conservative (``False`` is always sound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set

from ..xmltree.axes import Axis
from ..xqcore.cast import (CCall, CDDO, CEmpty, CExpr, CFor, CGenCmp, CIf,
                           CArith, CLet, CLit, CLogical, CSeq, CStep,
                           CTypeswitch, CVar, Var)


@dataclass(frozen=True)
class Facts:
    """Sequence-level facts about a core expression's value."""

    ord_nodup: bool
    singleton: bool
    separated: bool


UNKNOWN = Facts(ord_nodup=False, singleton=False, separated=False)
SINGLETON = Facts(ord_nodup=True, singleton=True, separated=True)
ORDERED = Facts(ord_nodup=True, singleton=False, separated=False)
ORDERED_SEPARATED = Facts(ord_nodup=True, singleton=False, separated=True)

#: axes whose result from a *single* context node is in document order
#: and duplicate-free.
_ORDERED_FROM_SINGLETON = frozenset({
    Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF, Axis.SELF,
    Axis.ATTRIBUTE, Axis.FOLLOWING_SIBLING, Axis.FOLLOWING, Axis.PARENT,
})

#: axes that map a separated context set to a separated result set.
SEPARATED_PRESERVING_AXES = frozenset({
    Axis.CHILD, Axis.ATTRIBUTE, Axis.SELF, Axis.FOLLOWING_SIBLING,
})

#: downward axes: results stay within the context node's subtree.
_CONFINED_AXES = frozenset({
    Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF, Axis.SELF,
    Axis.ATTRIBUTE,
})

#: functions that always return exactly one item.
_SINGLETON_FUNCTIONS = frozenset({
    "fn:count", "fn:boolean", "fn:not", "fn:exists", "fn:empty",
    "fn:string", "fn:name", "fn:local-name", "fn:number", "fn:concat",
    "fn:contains", "fn:starts-with", "fn:string-length", "fn:true",
    "fn:false", "fn:sum", "fn:root", "fn:doc", "fn:exactly-one",
})

#: functions whose results are in distinct document order.
_ORDERED_FUNCTIONS = frozenset({"op:union"}) | _SINGLETON_FUNCTIONS


def sequence_facts(expr: CExpr, env: Dict[Var, Facts] | None = None) -> Facts:
    """Compute the facts for ``expr`` under variable-fact bindings."""
    return _facts(expr, env or {})


def _facts(expr: CExpr, env: Dict[Var, Facts]) -> Facts:
    if isinstance(expr, (CLit, CGenCmp, CLogical, CArith)):
        return SINGLETON
    if isinstance(expr, CEmpty):
        return ORDERED_SEPARATED
    if isinstance(expr, CVar):
        if expr.var in env:
            return env[expr.var]
        return _default_var_facts(expr.var)
    if isinstance(expr, CDDO):
        inner = _facts(expr.arg, env)
        # Sorting and deduplicating is a set operation: separation is
        # preserved, never created.
        return Facts(ord_nodup=True, singleton=inner.singleton,
                     separated=inner.separated)
    if isinstance(expr, CStep):
        return _step_facts(expr, env)
    if isinstance(expr, CLet):
        value_facts = _facts(expr.value, env)
        return _facts(expr.body, {**env, expr.var: value_facts})
    if isinstance(expr, CFor):
        return _for_facts(expr, env)
    if isinstance(expr, CIf):
        then_facts = _facts(expr.then_branch, env)
        else_facts = _facts(expr.else_branch, env)
        return Facts(
            ord_nodup=then_facts.ord_nodup and else_facts.ord_nodup,
            singleton=then_facts.singleton and else_facts.singleton,
            separated=then_facts.separated and else_facts.separated)
    if isinstance(expr, CCall):
        return Facts(ord_nodup=expr.name in _ORDERED_FUNCTIONS,
                     singleton=expr.name in _SINGLETON_FUNCTIONS,
                     separated=expr.name in _SINGLETON_FUNCTIONS)
    if isinstance(expr, CSeq):
        if len(expr.items) == 1:
            return _facts(expr.items[0], env)
        return UNKNOWN
    if isinstance(expr, CTypeswitch):
        branch_facts = [_facts(case.body, {**env, case.var: UNKNOWN})
                        for case in expr.cases]
        branch_facts.append(
            _facts(expr.default_body, {**env, expr.default_var: UNKNOWN}))
        return Facts(
            ord_nodup=all(facts.ord_nodup for facts in branch_facts),
            singleton=all(facts.singleton for facts in branch_facts),
            separated=all(facts.separated for facts in branch_facts))
    return UNKNOWN


def _step_facts(expr: CStep, env: Dict[Var, Facts]) -> Facts:
    input_facts = _facts(expr.input, env)
    axis = expr.axis
    if input_facts.singleton:
        if axis in _ORDERED_FROM_SINGLETON:
            # A step never guarantees "exactly one" (even self can miss).
            return Facts(ord_nodup=True, singleton=False,
                         separated=axis in SEPARATED_PRESERVING_AXES
                         or axis is Axis.PARENT)
        return UNKNOWN
    if (input_facts.ord_nodup and input_facts.separated
            and axis in SEPARATED_PRESERVING_AXES):
        # The TR's refinement: child/attribute/self from a separated,
        # sorted context sequence yields disjoint blocks in document
        # order — sorted, duplicate-free and separated again.
        return ORDERED_SEPARATED
    if (input_facts.ord_nodup and input_facts.separated
            and axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF)):
        # Disjoint subtree blocks in order: sorted and duplicate-free,
        # but descendants of one context are related to each other.
        return ORDERED
    return UNKNOWN


def _for_facts(expr: CFor, env: Dict[Var, Facts]) -> Facts:
    source_facts = _facts(expr.source, env)
    inner_env = dict(env)
    inner_env[expr.var] = SINGLETON
    if expr.position_var is not None:
        inner_env[expr.position_var] = SINGLETON
    body_facts = _facts(expr.body, inner_env)
    if source_facts.singleton and expr.where is None:
        # Exactly one iteration: the loop's value is the body's.
        return body_facts
    if isinstance(expr.body, CVar) and expr.body.var == expr.var:
        # Filtering loop (``return $dot``): a subsequence of the source
        # keeps order, duplicate-freedom and separation.
        return Facts(ord_nodup=source_facts.ord_nodup, singleton=False,
                     separated=source_facts.separated)
    if (source_facts.ord_nodup and source_facts.separated
            and body_facts.ord_nodup
            and confined_to_subtree(expr.body, frozenset({expr.var}))):
        # The loop rule (see module docstring).
        return Facts(ord_nodup=True, singleton=False,
                     separated=body_facts.separated)
    return UNKNOWN


def confined_to_subtree(expr: CExpr, roots: FrozenSet[Var]) -> bool:
    """Are all result nodes of ``expr`` inside the subtree of one of the
    ``roots`` variables' values?  (Atomic results count as *not*
    confined — the property is only used for node sequences.)"""
    if isinstance(expr, CVar):
        return expr.var in roots
    if isinstance(expr, CEmpty):
        return True
    if isinstance(expr, CStep):
        return (expr.axis in _CONFINED_AXES
                and confined_to_subtree(expr.input, roots))
    if isinstance(expr, CDDO):
        return confined_to_subtree(expr.arg, roots)
    if isinstance(expr, CSeq):
        return all(confined_to_subtree(item, roots) for item in expr.items)
    if isinstance(expr, CIf):
        return (confined_to_subtree(expr.then_branch, roots)
                and confined_to_subtree(expr.else_branch, roots))
    if isinstance(expr, CLet):
        inner = roots
        if confined_to_subtree(expr.value, roots):
            inner = roots | {expr.var}
        return confined_to_subtree(expr.body, inner)
    if isinstance(expr, CFor):
        inner = roots
        if confined_to_subtree(expr.source, roots):
            inner = roots | {expr.var}
        return confined_to_subtree(expr.body, inner)
    return False


def _default_var_facts(var: Var) -> Facts:
    """Facts for variables bound outside the analyzed expression.

    Focus ``$dot`` variables are always bound to one item by ``for``;
    external variables hold a single document node in this engine.
    """
    if var.origin == "focus":
        if var.name in ("dot", "fs:dot", "position", "last", "v"):
            return SINGLETON
        return UNKNOWN
    if var.origin == "external":
        return SINGLETON
    return UNKNOWN
