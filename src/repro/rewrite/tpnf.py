"""TPNF' normal-form recognition.

The paper (Section 3) defines TPNF as the normal form the rewritings
reach: "after rewriting, queries corresponding to tree patterns are
always in the same form, which is a specific combination of step
expressions, iteration, and calls to sorting by document order and
duplicate elimination".  This module implements a *recognizer* for that
shape, used to assert the rewriting pipeline's contract in tests and to
diagnose why a query fragment was not detected as a tree pattern.

A core expression is in the **tree-pattern fragment of TPNF'** when it
matches ``TP`` in:

.. code-block:: text

    TP     ::= ddo(LOOPS) | LOOPS
    LOOPS  ::= STEP
             | for $v in LOOPS (where EBV)? return STEP
             | for $v in LOOPS (where EBV)? return $v
             | $var
    STEP   ::= downward-axis step whose input is the enclosing loop
               variable (or an in-scope variable for the innermost)
    EBV    ::= fn:boolean of a TP (existential predicate)

Expressions outside the fragment (positional loops, value comparisons,
arithmetic, …) are reported with the reason they fall outside — the
diagnostics mirror which plan operators will remain around the detected
patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..xqcore.cast import (CCall, CDDO, CExpr, CFor, CStep, CVar)


@dataclass
class TPNFReport:
    """Outcome of the recognizer."""

    is_tree_pattern: bool
    #: human-readable reasons the expression (or parts) fall outside.
    reasons: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.is_tree_pattern


def check_tpnf(expr: CExpr) -> TPNFReport:
    """Is this core expression a single-tree-pattern TPNF' term?"""
    report = TPNFReport(is_tree_pattern=True)
    body = expr.arg if isinstance(expr, CDDO) else expr
    _check_loops(body, report)
    return report


def _fail(report: TPNFReport, reason: str) -> None:
    report.is_tree_pattern = False
    report.reasons.append(reason)


def _check_loops(expr: CExpr, report: TPNFReport) -> None:
    if isinstance(expr, CVar):
        return
    if isinstance(expr, CStep):
        _check_step(expr, report)
        return
    if isinstance(expr, CFor):
        if expr.position_var is not None:
            _fail(report, "positional (at) variable in a loop")
        _check_loops(expr.source, report)
        if expr.where is not None:
            _check_predicate(expr.where, report)
        body = expr.body
        if isinstance(body, CVar):
            if body.var != expr.var:
                _fail(report, "loop returns a foreign variable")
            return
        if isinstance(body, CStep):
            _check_step(body, report)
            return
        _fail(report, f"loop body is {type(body).__name__}, "
                      "not a step or the loop variable")
        return
    _fail(report, f"{type(expr).__name__} outside the loop/step fragment")


def _check_step(step: CStep, report: TPNFReport) -> None:
    if not step.axis.is_downward:
        _fail(report, f"non-downward axis {step.axis.value}")
    if not isinstance(step.input, CVar):
        _fail(report, "step input is not a variable")


def _check_predicate(expr: CExpr, report: TPNFReport) -> None:
    if isinstance(expr, CCall) and expr.name == "fn:boolean" \
            and len(expr.args) == 1:
        _check_loops(expr.args[0], report)
        return
    _fail(report,
          f"where-clause is {type(expr).__name__}, not an existential "
          "fn:boolean(...)")
