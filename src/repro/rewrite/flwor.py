"""FLWOR rewritings (paper Section 3, "FLWOR rewritings").

The rules, all driven by the variable-usage judgment of
:func:`repro.xqcore.cast.usage_count`:

* dead ``let`` elimination — ``let $x := E1 return E2`` with ``$x``
  unused becomes ``E2`` (the fragment is pure, so dropping ``E1`` is
  sound);
* single-use ``let`` inlining — with exactly one (non-loop) use, the
  binding is substituted away;
* trivial inlining — bindings to variables or literals are always
  inlined (no work is duplicated);
* unused positional-variable removal — ``for $x at $i in E`` drops
  ``$i`` when unused, which is what later *enables* the loop-split
  rewrite (Section 3 notes the split is blocked by index variables);
* ``for``-identity — ``for $x in E return $x`` (no ``where``, no
  position) is just ``E``; this collapse is what makes syntactic
  variants like the paper's Q1b converge;
* singleton ``for`` — a ``for`` over a provably-singleton sequence with
  no ``where`` runs exactly once and is a ``let``.

Sequence facts (for the singleton rule) are threaded through binders so
that, e.g., a loop over another loop's variable is recognized as
degenerate — needed for variants like the paper's Q1c.
"""

from __future__ import annotations

from typing import Dict

from ..xqcore.cast import (CExpr, CFor, CLet, CLit, CVar, substitute,
                           usage_count)
from .facts import Facts, SINGLETON, sequence_facts


def rewrite_flwor(expr: CExpr) -> CExpr:
    """Apply the FLWOR rules bottom-up until this pass changes nothing."""
    while True:
        rewritten = _rewrite(expr, {})
        if rewritten is expr:
            return expr
        expr = rewritten


def _rewrite(expr: CExpr, env: Dict) -> CExpr:
    if isinstance(expr, CLet):
        value = _rewrite(expr.value, env)
        inner = {**env, expr.var: sequence_facts(value, env)}
        body = _rewrite(expr.body, inner)
        if value is not expr.value or body is not expr.body:
            expr = CLet(expr.var, value, body)
        return _rewrite_let(expr)
    if isinstance(expr, CFor):
        source = _rewrite(expr.source, env)
        inner = {**env, expr.var: SINGLETON}
        if expr.position_var is not None:
            inner[expr.position_var] = SINGLETON
        where = (None if expr.where is None
                 else _rewrite(expr.where, inner))
        body = _rewrite(expr.body, inner)
        if (source is not expr.source or where is not expr.where
                or body is not expr.body):
            expr = CFor(expr.var, expr.position_var, source, where, body)
        return _rewrite_for(expr, env)
    children = expr.children()
    if not children:
        return expr
    new_children = [_rewrite(child, env) for child in children]
    if all(new is old for new, old in zip(new_children, children)):
        return expr
    return expr.replace_children(new_children)


def _rewrite_let(expr: CLet) -> CExpr:
    uses = usage_count(expr.body, expr.var)
    if uses == 0:
        return expr.body
    if uses == 1 or isinstance(expr.value, (CVar, CLit)):
        return substitute(expr.body, expr.var, expr.value)
    return expr


def _rewrite_for(expr: CFor, env: Dict) -> CExpr:
    if expr.position_var is not None:
        position_uses = usage_count(expr.body, expr.position_var)
        if expr.where is not None:
            position_uses += usage_count(expr.where, expr.position_var)
        if position_uses == 0:
            expr = CFor(expr.var, None, expr.source, expr.where, expr.body)
    if expr.position_var is not None:
        return expr
    # for-identity: ``for $x in E return $x`` ≡ E (no filter attached).
    if (expr.where is None and isinstance(expr.body, CVar)
            and expr.body.var == expr.var):
        return expr.source
    # singleton source: the loop runs exactly once, so it is a let.
    if expr.where is None and sequence_facts(expr.source, env).singleton:
        return CLet(expr.var, expr.source, expr.body)
    return expr
