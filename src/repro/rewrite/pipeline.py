"""The full Core rewriting pipeline to TPNF' (paper Section 3).

Runs the four rule families — type rewritings, FLWOR rewritings,
document-order rewritings and loop splitting — in the paper's order,
iterating the whole sequence until a fixpoint.  Each family individually
shrinks or preserves the expression (no family undoes another), so the
iteration terminates; a round cap turns a hypothetical divergence into a
loud error instead of a hang.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from ..xqcore.cast import CExpr
from ..xqcore.pretty import alpha_canonical
from .docorder import remove_redundant_ddo
from .flwor import rewrite_flwor
from .loopsplit import split_loops
from .typeswitch import rewrite_typeswitches

_MAX_ROUNDS = 50


@dataclass(frozen=True)
class RewriteOptions:
    """Toggles for the rule families (used by the ablation benchmarks)."""

    typeswitch: bool = True
    flwor: bool = True
    docorder: bool = True
    loop_split: bool = True

    @classmethod
    def none(cls) -> "RewriteOptions":
        return cls(typeswitch=False, flwor=False, docorder=False,
                   loop_split=False)


@dataclass
class RewriteTrace:
    """Per-pass snapshots, for explain() output and the examples."""

    steps: List[Tuple[str, CExpr]] = field(default_factory=list)

    def record(self, name: str, expr: CExpr) -> None:
        self.steps.append((name, expr))


def rewrite_to_tpnf(expr: CExpr,
                    options: RewriteOptions | None = None,
                    trace: RewriteTrace | None = None) -> CExpr:
    """Rewrite a normalized core expression into TPNF'."""
    options = options or RewriteOptions()
    passes: list[tuple[str, Callable[[CExpr], CExpr]]] = []
    if options.typeswitch:
        passes.append(("typeswitch", rewrite_typeswitches))
    if options.flwor:
        passes.append(("flwor", rewrite_flwor))
    if options.docorder:
        passes.append(("docorder", remove_redundant_ddo))
    if options.loop_split:
        passes.append(("loop-split", split_loops))
    if not passes:
        return expr

    previous = alpha_canonical(expr)
    for _ in range(_MAX_ROUNDS):
        for name, rule in passes:
            rewritten = rule(expr)
            if trace is not None and rewritten is not expr:
                trace.record(name, rewritten)
            expr = rewritten
        current = alpha_canonical(expr)
        if current == previous:
            return expr
        previous = current
    raise RuntimeError("core rewriting did not reach a fixpoint "
                       f"within {_MAX_ROUNDS} rounds")
