"""Core rewritings toward TPNF' (paper Section 3)."""

from .annotate import annotated_pretty, collect_annotations, facts_label, whole_expression_facts
from .docorder import remove_redundant_ddo
from .facts import Facts, sequence_facts
from .flwor import rewrite_flwor
from .loopsplit import split_loops
from .pipeline import RewriteOptions, RewriteTrace, rewrite_to_tpnf
from .tpnf import TPNFReport, check_tpnf
from .typeswitch import rewrite_typeswitches

__all__ = [
    "annotated_pretty", "collect_annotations", "facts_label",
    "whole_expression_facts",
    "remove_redundant_ddo", "Facts", "sequence_facts", "rewrite_flwor",
    "split_loops", "RewriteOptions", "RewriteTrace", "rewrite_to_tpnf",
    "rewrite_typeswitches",
    "TPNFReport", "check_tpnf",
]
