"""The loop-split rewrite (paper Section 3, "Loop split").

::

    for $x in Expr1 (where Cond1)? return
      for $y in Expr2 (where Cond2)? return Expr3
    ──────────────────────────────────────────────
    for $y in
      (for $x in Expr1 (where Cond1)? return Expr2)
    (where Cond2)? return Expr3

Side conditions (from the paper):

* neither loop carries a positional (``at``) variable — splitting would
  change what the position is counted against (the paper's
  ``$d//person[position()=1]`` example);
* ``$x`` must not occur free in ``Cond2`` or ``Expr3`` (it goes out of
  scope for them).

The rewrite imposes the left-deep loop nesting that the algebraic
compilation phase expects (the paper's Q1-tp shape).
"""

from __future__ import annotations

from ..xqcore.cast import CExpr, CFor, free_vars


def split_loops(expr: CExpr) -> CExpr:
    """Apply loop splitting everywhere, to fixpoint."""
    while True:
        rewritten = _rewrite(expr)
        if rewritten is expr:
            return expr
        expr = rewritten


def _rewrite(expr: CExpr) -> CExpr:
    expr = _split_here(expr)
    children = expr.children()
    if not children:
        return expr
    new_children = [_rewrite(child) for child in children]
    if all(new is old for new, old in zip(new_children, children)):
        return expr
    return expr.replace_children(new_children)


def _split_here(expr: CExpr) -> CExpr:
    while (isinstance(expr, CFor) and expr.position_var is None
           and isinstance(expr.body, CFor)
           and expr.body.position_var is None):
        outer, inner = expr, expr.body
        x = outer.var
        if inner.where is not None and x in free_vars(inner.where):
            break
        if x in free_vars(inner.body):
            break
        new_source = CFor(x, None, outer.source, outer.where, inner.source)
        expr = CFor(inner.var, None, new_source, inner.where, inner.body)
    return expr
