"""Type rewritings (paper Section 3, "Type rewritings").

Two rules over ``typeswitch`` expressions, driven by the static type of
the scrutinee:

* *dead case*: if ``type(E0) ∩ Type1 = ∅`` the case clause can never be
  selected and is removed;
* *sure case*: if ``type(E0) ⊂ Type1`` the first case is always selected
  and the typeswitch collapses to ``let $v1 := E0 return Expr1``.

When every case clause of a typeswitch has been removed, the default
clause is all that remains and the typeswitch likewise collapses to a
``let``.  In the paper's pipeline this is what turns the positional
dispatch produced by predicate normalization into either a plain
``fn:boolean`` filter (non-numeric predicates) or a position comparison
(numeric predicates).
"""

from __future__ import annotations

from ..typing import ItemType, TypeEnv, infer_type
from ..xqcore.cast import (CaseClause, CExpr, CFor, CLet, CTypeswitch, CVar)


def rewrite_typeswitches(expr: CExpr) -> CExpr:
    """Apply both typeswitch rules everywhere, threading a type env."""
    return _rewrite(expr, TypeEnv())


def _rewrite(expr: CExpr, env: TypeEnv) -> CExpr:
    expr = _rewrite_children(expr, env)
    if not isinstance(expr, CTypeswitch):
        return expr
    input_type = infer_type(expr.input, env)
    remaining: list[CaseClause] = []
    for case in expr.cases:
        if case.seqtype != "numeric":
            remaining.append(case)
            continue
        if input_type.is_disjoint_from_numeric():
            # Dead case: drop the clause entirely.
            continue
        if input_type.is_subtype_of_numeric() and not remaining:
            # Sure case: the first remaining clause is always selected.
            return CLet(case.var, expr.input, case.body)
        remaining.append(case)
    if not remaining:
        return CLet(expr.default_var, expr.input, expr.default_body)
    if len(remaining) == len(expr.cases):
        return expr
    return CTypeswitch(expr.input, remaining, expr.default_var,
                       expr.default_body)


def _rewrite_children(expr: CExpr, env: TypeEnv) -> CExpr:
    """Recurse into children with the right type bindings in scope."""
    if isinstance(expr, CLet):
        value = _rewrite(expr.value, env)
        inner = env.bind(expr.var, infer_type(value, env))
        body = _rewrite(expr.body, inner)
        if value is expr.value and body is expr.body:
            return expr
        return CLet(expr.var, value, body)
    if isinstance(expr, CFor):
        source = _rewrite(expr.source, env)
        inner = env.bind(expr.var, infer_type(source, env))
        if expr.position_var is not None:
            inner = inner.bind(expr.position_var, ItemType.NUMERIC)
        where = _rewrite(expr.where, inner) if expr.where is not None else None
        body = _rewrite(expr.body, inner)
        if source is expr.source and where is expr.where and body is expr.body:
            return expr
        return CFor(expr.var, expr.position_var, source, where, body)
    if isinstance(expr, CTypeswitch):
        input_expr = _rewrite(expr.input, env)
        input_type = infer_type(input_expr, env)
        cases = []
        changed = input_expr is not expr.input
        for case in expr.cases:
            case_type = (ItemType.NUMERIC if case.seqtype == "numeric"
                         else ItemType.ANY)
            body = _rewrite(case.body, env.bind(case.var, case_type))
            changed = changed or body is not case.body
            cases.append(CaseClause(case.seqtype, case.var, body))
        default_body = _rewrite(expr.default_body,
                                env.bind(expr.default_var, input_type))
        changed = changed or default_body is not expr.default_body
        if not changed:
            return expr
        return CTypeswitch(input_expr, cases, expr.default_var, default_body)
    children = expr.children()
    if not children:
        return expr
    new_children = [_rewrite(child, env) for child in children]
    if all(new is old for new, old in zip(new_children, children)):
        return expr
    return expr.replace_children(new_children)
