"""Annotated rendering of the document-order analysis.

The paper's document-order rewritings work "by introducing and
propagating annotations" (Section 3, citing [19]).  This module makes
those annotations visible: every binder and every ``ddo`` call in a core
expression is rendered together with the facts the analysis derived for
its subject — whether the sequence is sorted and duplicate-free
(``ord``), ancestor-free (``sep``), and a singleton (``one``).

Used by ``python -m repro explain`` debugging sessions and the
pedagogical examples; the rewriting itself consumes the facts directly
(:mod:`repro.rewrite.facts`).
"""

from __future__ import annotations

from typing import Dict

from ..xqcore.cast import (CDDO, CExpr, CFor, CLet, CVar, Var)
from ..xqcore.pretty import pretty
from .facts import Facts, SINGLETON, sequence_facts


def facts_label(facts: Facts) -> str:
    """Compact rendering: e.g. ``ord,sep`` or ``one`` or ``-``."""
    parts = []
    if facts.singleton:
        parts.append("one")
    if facts.ord_nodup:
        parts.append("ord")
    if facts.separated:
        parts.append("sep")
    return ",".join(parts) if parts else "-"


def annotated_pretty(expr: CExpr) -> str:
    """Render a core expression with per-construct fact annotations.

    Annotations appear as ``(* ... *)`` comments after the line that
    introduces the annotated value, e.g.::

        for $dot in $d/descendant::person (* source: ord *)
    """
    annotations = collect_annotations(expr)
    base = pretty(expr)
    lines = base.splitlines()
    annotated = []
    for line in lines:
        stripped = line.strip()
        note = None
        for needle, label in annotations.items():
            if needle and needle in stripped:
                note = label
                break
        if note:
            annotated.append(f"{line}  (* {note} *)")
        else:
            annotated.append(line)
    return "\n".join(annotated)


def collect_annotations(expr: CExpr) -> Dict[str, str]:
    """Map printed-line fragments to fact labels.

    Returns entries like ``{"for $dot in …": "source: ord,sep"}``; used
    by :func:`annotated_pretty` and directly testable.
    """
    annotations: Dict[str, str] = {}

    def visit(node: CExpr, env: Dict[Var, Facts]) -> None:
        if isinstance(node, CDDO):
            facts = sequence_facts(node.arg, env)
            annotations.setdefault(
                "ddo(", f"ddo argument: {facts_label(facts)}")
            visit(node.arg, env)
            return
        if isinstance(node, CLet):
            facts = sequence_facts(node.value, env)
            annotations[f"let ${node.var.name}"] = \
                f"value: {facts_label(facts)}"
            visit(node.value, env)
            visit(node.body, {**env, node.var: facts})
            return
        if isinstance(node, CFor):
            facts = sequence_facts(node.source, env)
            annotations[f"for ${node.var.name}"] = \
                f"source: {facts_label(facts)}"
            visit(node.source, env)
            inner = dict(env)
            inner[node.var] = SINGLETON
            if node.position_var is not None:
                inner[node.position_var] = SINGLETON
            if node.where is not None:
                visit(node.where, inner)
            visit(node.body, inner)
            return
        for child in node.children():
            visit(child, env)

    visit(expr, {})
    return annotations


def whole_expression_facts(expr: CExpr) -> str:
    """The facts of the whole expression, rendered."""
    return facts_label(sequence_facts(expr))
