"""Document order rewritings (paper Section 3, "Document order rewritings").

Removes redundant calls to ``fs:distinct-doc-order`` (``ddo``) using the
two halves of the analysis in the paper's [19]:

* the *fact* half (:mod:`repro.rewrite.facts`): ``ddo(E)`` is the
  identity when ``E`` is statically sorted and duplicate-free;
* the *context* half (this module): ``ddo(E)`` can be dropped when the
  value only flows into consumers that are insensitive to order and
  (node-)duplicates — an enclosing ``ddo`` along the sequence spine, an
  effective-boolean-value test (``fn:boolean``/``where``/``if``), or an
  existential general comparison.

The insensitivity flag is propagated top-down along the "spine" through
which the sequence value reaches its consumer:

=================== ==========================================================
construct           propagation
=================== ==========================================================
``ddo(E)``          E is insensitive (the ddo re-sorts and dedups anyway)
``for``             body inherits; source inherits when there is no ``at``
                    variable (dropping source duplicates only drops duplicate
                    iterations, whose node results a downstream dedup removes);
                    ``where`` is an EBV consumer, hence insensitive
``let``             body inherits; the bound value is conservatively sensitive
``if``              the condition is an EBV consumer; branches inherit
``E1, E2``          items inherit
steps               the step input inherits (per-item results concatenate)
``fn:boolean`` etc. argument insensitive (EBV never depends on node order or
                    node duplicates: reordering an all-node sequence keeps its
                    EBV, and ddo is a type error on non-node sequences)
comparisons         both operands insensitive (existential semantics)
``fn:count``        argument *sensitive* (duplicates change the count)
everything else     sensitive
=================== ==========================================================
"""

from __future__ import annotations

from typing import Dict

from ..xqcore.cast import (CCall, CDDO, CExpr, CFor, CGenCmp, CIf, CLet,
                           CLogical, CSeq, CStep, CTypeswitch, Var)
from .facts import Facts, SINGLETON, sequence_facts

#: built-ins that consume only the effective boolean value of their argument.
_EBV_FUNCTIONS = frozenset({"fn:boolean", "fn:exists", "fn:empty", "fn:not"})


def remove_redundant_ddo(expr: CExpr) -> CExpr:
    """Remove every ``ddo`` proven redundant; the top level is sensitive."""
    return _rewrite(expr, insensitive=False, env={})


def _rewrite(expr: CExpr, insensitive: bool, env: Dict[Var, Facts]) -> CExpr:
    if isinstance(expr, CDDO):
        arg = _rewrite(expr.arg, insensitive=True, env=env)
        if insensitive or sequence_facts(arg, env).ord_nodup:
            return arg
        if arg is expr.arg:
            return expr
        return CDDO(arg)
    if isinstance(expr, CLet):
        value = _rewrite(expr.value, insensitive=False, env=env)
        inner = {**env, expr.var: sequence_facts(value, env)}
        body = _rewrite(expr.body, insensitive, inner)
        if value is expr.value and body is expr.body:
            return expr
        return CLet(expr.var, value, body)
    if isinstance(expr, CFor):
        source_insensitive = insensitive and expr.position_var is None
        source = _rewrite(expr.source, source_insensitive, env)
        inner = dict(env)
        inner[expr.var] = SINGLETON
        if expr.position_var is not None:
            inner[expr.position_var] = SINGLETON
        where = (None if expr.where is None
                 else _rewrite(expr.where, insensitive=True, env=inner))
        body = _rewrite(expr.body, insensitive, inner)
        if source is expr.source and where is expr.where and body is expr.body:
            return expr
        return CFor(expr.var, expr.position_var, source, where, body)
    if isinstance(expr, CIf):
        condition = _rewrite(expr.condition, insensitive=True, env=env)
        then_branch = _rewrite(expr.then_branch, insensitive, env)
        else_branch = _rewrite(expr.else_branch, insensitive, env)
        if (condition is expr.condition and then_branch is expr.then_branch
                and else_branch is expr.else_branch):
            return expr
        return CIf(condition, then_branch, else_branch)
    if isinstance(expr, CStep):
        input_expr = _rewrite(expr.input, insensitive, env)
        if input_expr is expr.input:
            return expr
        return CStep(expr.axis, expr.test, input_expr)
    if isinstance(expr, CSeq):
        items = [_rewrite(item, insensitive, env) for item in expr.items]
        if all(new is old for new, old in zip(items, expr.items)):
            return expr
        return CSeq(items)
    if isinstance(expr, CCall):
        if expr.name in _EBV_FUNCTIONS and len(expr.args) == 1:
            arg = _rewrite(expr.args[0], insensitive=True, env=env)
            if arg is expr.args[0]:
                return expr
            return CCall(expr.name, [arg])
        args = [_rewrite(arg, insensitive=False, env=env)
                for arg in expr.args]
        if all(new is old for new, old in zip(args, expr.args)):
            return expr
        return CCall(expr.name, args)
    if isinstance(expr, CGenCmp):
        left = _rewrite(expr.left, insensitive=True, env=env)
        right = _rewrite(expr.right, insensitive=True, env=env)
        if left is expr.left and right is expr.right:
            return expr
        return CGenCmp(expr.op, left, right)
    if isinstance(expr, CLogical):
        left = _rewrite(expr.left, insensitive=True, env=env)
        right = _rewrite(expr.right, insensitive=True, env=env)
        if left is expr.left and right is expr.right:
            return expr
        return CLogical(expr.op, left, right)
    if isinstance(expr, CTypeswitch):
        # The scrutinee value is re-consumed through the case variables;
        # stay conservative on it and on the branches' spines.
        input_expr = _rewrite(expr.input, insensitive=False, env=env)
        changed = input_expr is not expr.input
        cases = []
        for case in expr.cases:
            body = _rewrite(case.body, insensitive, env)
            changed = changed or body is not case.body
            cases.append(type(case)(case.seqtype, case.var, body))
        default_body = _rewrite(expr.default_body, insensitive, env)
        changed = changed or default_body is not expr.default_body
        if not changed:
            return expr
        return CTypeswitch(input_expr, cases, expr.default_var, default_body)
    children = expr.children()
    if not children:
        return expr
    new_children = [_rewrite(child, insensitive=False, env=env)
                    for child in children]
    if all(new is old for new, old in zip(new_children, children)):
        return expr
    return expr.replace_children(new_children)
