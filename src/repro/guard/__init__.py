"""Execution guardrails: error taxonomy, resource governor, chaos.

Three cooperating pieces keep a bad strategy choice — the risk inherent
in the paper's "no single algorithm wins everywhere" finding — from
taking the engine down:

* :mod:`repro.guard.errors` — the :class:`ReproError` taxonomy with
  machine-readable codes and source spans;
* :mod:`repro.guard.governor` — :class:`Budgets` /
  :class:`ResourceGovernor`, per-query wall-clock, step, output and
  recursion-depth budgets checked cheaply at the existing metrics
  counter sites;
* :mod:`repro.guard.chaos` — deterministic fault injection at named
  sites inside the physical operators, used by ``tests/chaos`` to prove
  every fallback path actually recovers.

``Engine.execute`` ties them together: a tripped budget or a failing
algorithm triggers retries along a configurable fallback chain (e.g.
``twigjoin → nljoin → item``), recorded as :class:`FallbackEvent`\\ s,
with ``strict=True`` re-raising instead.  See ``docs/ROBUSTNESS.md``.
"""

from .chaos import (ChaosInjector, ChaosSpec, InjectedFault, KNOWN_SITES,
                    active_injector, chaos_point, default_seed, inject,
                    worker_seed)
from .errors import (AlgorithmError, CircuitOpen, DocumentQuarantined,
                     FallbackEvent, InputError, InternalError, ReproError,
                     ServiceClosed, ServiceOverloaded, SourceSpan,
                     WorkerLost)
from .governor import BudgetExceeded, Budgets, ResourceGovernor

__all__ = [
    "AlgorithmError", "BudgetExceeded", "Budgets", "ChaosInjector",
    "ChaosSpec", "CircuitOpen", "DocumentQuarantined", "FallbackEvent",
    "InjectedFault", "InputError", "InternalError", "KNOWN_SITES",
    "ReproError", "ResourceGovernor", "ServiceClosed",
    "ServiceOverloaded", "SourceSpan", "WorkerLost",
    "active_injector", "chaos_point", "default_seed", "inject",
    "worker_seed",
]
