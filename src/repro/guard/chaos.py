"""Deterministic fault injection for the physical operators.

The physical algorithms and the evaluator's ``TupleTreePattern``
operator pass through named *chaos points* (:data:`KNOWN_SITES`).  When
an injector is active (:func:`inject`), each point consults the
injector's specs and may

* ``raise`` an :class:`InjectedFault`,
* ``delay`` (sleep) to simulate a stall — the way to exercise wall-clock
  budgets deterministically, or
* ``corrupt`` the payload (drop one element of a result list) to prove
  the differential suites detect silent corruption.

Injection is **deterministic**: specs with ``rate < 1.0`` draw from a
``random.Random(seed)`` owned by the injector, so the same seed fires
the same sites in the same order.  When no injector is active a chaos
point is one global load and an ``is None`` compare.

::

    from repro.guard.chaos import ChaosSpec, inject

    with inject(ChaosSpec(site="twigjoin.match")) as injector:
        results = engine.run(query, strategy="twigjoin")
    assert injector.log  # the fault fired (and the engine fell back)

Site naming: ``<algorithm>.<operation>`` — ``match`` for
``match_single``, ``enumerate`` for ``enumerate_bindings``, ``choose``
for a chooser decision — plus ``eval.ttp``, the evaluator-side wrapper
around every pattern evaluation.  Specs may use ``fnmatch`` wildcards
(``"*.match"``); exact names are validated against
:data:`KNOWN_SITES`.
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Any, Iterator, List, Optional, Tuple

from .errors import InputError, ReproError

__all__ = ["ChaosInjector", "ChaosSpec", "InjectedFault", "KNOWN_SITES",
           "active_injector", "chaos_point", "default_seed", "inject",
           "worker_seed"]

#: every chaos point wired into the stack.  The first block sits inside
#: the physical operators; the second covers the serving and storage
#: layers (queue admission, leader execution, coalesce follower wake,
#: catalog open, columnar mmap read and checksum verify — see
#: ``tests/chaos/test_chaos_serve.py``).
KNOWN_SITES = (
    "eval.ttp",
    "nljoin.match", "nljoin.enumerate",
    "twigjoin.match", "twigjoin.enumerate",
    "scjoin.match",
    "stacktree.match",
    "streaming.match",
    "auto.choose",
    "cost.choose",
    "serve.admit", "serve.execute", "serve.wake",
    "catalog.open",
    "columnar.read", "columnar.checksum",
    "cluster.dispatch", "cluster.gather",
)

_ACTIONS = ("raise", "delay", "corrupt")


class InjectedFault(ReproError):
    """The exception the ``raise`` action throws at a chaos point."""

    code = "REPRO-CHAOS"

    def __init__(self, message: str, *, site: str = "?") -> None:
        super().__init__(message, site=site)
        self.site = site


@dataclass(frozen=True)
class ChaosSpec:
    """What to inject where.

    ``site`` is an exact name from :data:`KNOWN_SITES` or an ``fnmatch``
    pattern; ``rate`` below 1.0 fires probabilistically from the
    injector's seeded generator."""

    site: str
    action: str = "raise"
    rate: float = 1.0
    delay_seconds: float = 0.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise InputError(
                f"unknown chaos action {self.action!r}; "
                f"expected one of {_ACTIONS}", code="REPRO-INPUT-CHAOS")
        if not (0.0 <= self.rate <= 1.0):
            raise InputError(f"chaos rate must be in [0, 1], got {self.rate}",
                             code="REPRO-INPUT-CHAOS")
        is_pattern = any(ch in self.site for ch in "*?[")
        if not is_pattern and self.site not in KNOWN_SITES:
            raise InputError(
                f"unknown chaos site {self.site!r}; known sites: "
                f"{', '.join(KNOWN_SITES)}", code="REPRO-INPUT-CHAOS")


class ChaosInjector:
    """Holds the active specs, the seeded generator and a fire log."""

    def __init__(self, *specs: ChaosSpec, seed: int = 0) -> None:
        self.specs: Tuple[ChaosSpec, ...] = specs
        self.seed = seed
        self.random = random.Random(seed)
        #: every action fired, in order: ``(site, action)`` pairs.
        self.log: List[Tuple[str, str]] = []
        #: every chaos point passed through, fired or not.
        self.visits: List[str] = []

    def fired(self, site: Optional[str] = None) -> int:
        return sum(1 for fired_site, _ in self.log
                   if site is None or fired_site == site)

    def visit(self, site: str, payload: Any = None) -> Any:
        self.visits.append(site)
        for spec in self.specs:
            if not fnmatchcase(site, spec.site):
                continue
            if spec.rate < 1.0 and self.random.random() >= spec.rate:
                continue
            self.log.append((site, spec.action))
            if spec.action == "raise":
                raise InjectedFault(f"{spec.message} at {site}", site=site)
            if spec.action == "delay":
                time.sleep(spec.delay_seconds)
            elif spec.action == "corrupt":
                payload = self._corrupt(payload)
        return payload

    def _corrupt(self, payload: Any) -> Any:
        """Drop one deterministic element from a list payload (chaos
        points that carry no list payload are left unchanged)."""
        if isinstance(payload, list) and payload:
            clone = list(payload)
            clone.pop(self.random.randrange(len(clone)))
            return clone
        return payload


_ACTIVE: Optional[ChaosInjector] = None


def active_injector() -> Optional[ChaosInjector]:
    return _ACTIVE


def chaos_point(site: str, payload: Any = None) -> Any:
    """The hook the operators call: a no-op returning ``payload`` unless
    an injector is active."""
    if _ACTIVE is None:
        return payload
    return _ACTIVE.visit(site, payload)


def default_seed() -> int:
    """The seed :func:`inject` uses when none is given: the
    ``REPRO_CHAOS_SEED`` environment variable, or 0.  Lets CI (and bug
    reproductions) pin or vary the whole suite's fire sequences without
    touching test code."""
    try:
        return int(os.environ.get("REPRO_CHAOS_SEED", "0"))
    except ValueError:
        return 0


def worker_seed(base_seed: int, worker_index: int) -> int:
    """The chaos seed for worker ``worker_index`` of a cluster pool.

    Derived as ``base_seed + worker_index`` so a single
    ``REPRO_CHAOS_SEED`` pins the whole pool's fire sequences while
    each worker still draws an independent stream — sweeps over the
    base seed stay reproducible across the pool (see
    :mod:`repro.serve.cluster`)."""
    return base_seed + worker_index


@contextmanager
def inject(*specs: ChaosSpec,
           seed: Optional[int] = None) -> Iterator[ChaosInjector]:
    """Activate an injector for the duration of a ``with`` block.

    ``seed`` defaults to :func:`default_seed` (the ``REPRO_CHAOS_SEED``
    environment variable).  Nesting replaces the active injector and
    restores the previous one on exit."""
    global _ACTIVE
    injector = ChaosInjector(*specs,
                             seed=default_seed() if seed is None else seed)
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous
