"""The unified error taxonomy.

Every error this engine raises deliberately derives from
:class:`ReproError`, which carries

* a **machine-readable code** (``err.code``, e.g. ``REPRO-XQ-SYNTAX``,
  ``REPRO-BUDGET-STEPS``) so callers can dispatch without string
  matching;
* an optional **source span** (:class:`SourceSpan`) — line, column and a
  caret-annotated snippet of the offending input — attached by the
  parsers via :meth:`ReproError.attach_source`;
* free-form **context** key/values (``err.context``) surfaced by
  :meth:`ReproError.to_dict`.

``ReproError`` subclasses :class:`ValueError` so the historical
``except ValueError`` call sites (and tests) keep working; the six
scattered parser/compiler/runtime error classes now re-parent onto it
(see :mod:`repro.xquery.lexer`, :mod:`repro.xmltree.parser`,
:mod:`repro.xqcore.normalize`, :mod:`repro.algebra.compile`,
:mod:`repro.pattern.tree`, :mod:`repro.algebra.runtime`).

This module is intentionally dependency-free (stdlib only) so that any
layer of the stack — lexer to physical algorithms — can import it
without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Optional

__all__ = [
    "AlgorithmError", "CircuitOpen", "DocumentQuarantined",
    "FallbackEvent", "InputError", "InternalError", "ReproError",
    "ServiceClosed", "ServiceOverloaded", "SourceSpan", "WorkerLost",
]

#: longest source line rendered verbatim in a caret snippet; longer
#: lines are windowed around the caret.
_SNIPPET_WIDTH = 76


@dataclass(frozen=True)
class SourceSpan:
    """Where in the source text an error occurred (1-based line/column)."""

    offset: int
    line: int
    column: int
    source_line: str

    @classmethod
    def from_offset(cls, text: str, offset: int) -> "SourceSpan":
        offset = max(0, min(offset, len(text)))
        line = text.count("\n", 0, offset) + 1
        line_start = text.rfind("\n", 0, offset) + 1
        line_end = text.find("\n", line_start)
        if line_end < 0:
            line_end = len(text)
        return cls(offset=offset, line=line,
                   column=offset - line_start + 1,
                   source_line=text[line_start:line_end])

    def caret_snippet(self) -> str:
        """The source line with a caret under the error column, windowed
        for very long lines."""
        line = self.source_line
        caret = self.column - 1
        if len(line) > _SNIPPET_WIDTH:
            half = _SNIPPET_WIDTH // 2
            start = max(0, min(caret - half, len(line) - _SNIPPET_WIDTH))
            line = line[start:start + _SNIPPET_WIDTH]
            caret -= start
        caret = max(0, min(caret, len(line)))
        return f"    {line}\n    {' ' * caret}^"

    def to_dict(self) -> Dict[str, Any]:
        return {"offset": self.offset, "line": self.line,
                "column": self.column}


class ReproError(ValueError):
    """Base of every deliberate engine error.

    ``message`` is the human explanation; ``code`` overrides the class
    default; ``span`` locates the error in source text; any further
    keyword arguments become machine-readable ``context``.
    """

    code: ClassVar[str] = "REPRO-0000"

    def __init__(self, message: str, *, code: Optional[str] = None,
                 span: Optional[SourceSpan] = None, **context: Any) -> None:
        super().__init__(message)
        self.message = message
        if code is not None:
            self.code = code
        self.span = span
        self.context = context

    def attach_source(self, text: str,
                      offset: Optional[int] = None) -> "ReproError":
        """Fill :attr:`span` from the source ``text`` and a character
        offset (defaulting to the error's ``position`` attribute, which
        the syntax errors carry).  Returns ``self`` for chaining; a span
        that is already attached is kept."""
        if self.span is None:
            if offset is None:
                offset = getattr(self, "position", None)
            if offset is not None:
                self.span = SourceSpan.from_offset(text, offset)
        return self

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"code": self.code, "message": self.message}
        if self.span is not None:
            data["span"] = self.span.to_dict()
        data.update(self.context)
        return data

    def __str__(self) -> str:
        head = f"[{self.code}] {self.message}"
        if self.span is None:
            position = getattr(self, "position", None)
            if position is not None:
                head += f" (at offset {position})"
            return head
        head += f" (line {self.span.line}, column {self.span.column})"
        return f"{head}\n{self.span.caret_snippet()}"

    def __reduce__(self):
        # The default BaseException reduction rebuilds via
        # ``cls(*args)`` with ``args == (message,)``, which breaks for
        # every subclass whose __init__ takes extra required
        # positionals (e.g. BudgetExceeded(kind, limit, observed)).
        # Rebuild structurally instead: allocate without __init__, then
        # restore args and the instance dict — code, span, context and
        # subclass attributes all live there, so the round trip is
        # exact.  __cause__/__traceback__ are process-local and are
        # deliberately not carried (same as default exception
        # pickling); the serving layer's wire errors stay
        # self-contained.
        return (_rebuild_error, (type(self), self.args,
                                 dict(self.__dict__)))


def _rebuild_error(cls, args, state):
    """Pickle reconstructor for :class:`ReproError` (module-level so it
    is itself picklable by reference)."""
    err = cls.__new__(cls)
    ValueError.__init__(err, *args)
    err.__dict__.update(state)
    return err


class InputError(ReproError):
    """Invalid caller-supplied input: empty query text, an unknown
    strategy name, a wrong-typed argument, an oversized document."""

    code = "REPRO-INPUT"


class AlgorithmError(ReproError):
    """A physical tree-pattern algorithm failed while evaluating.

    Raised by the evaluator's ``TupleTreePattern`` operator wrapping the
    original exception (as ``__cause__``), so :meth:`Engine.execute` can
    tell an *algorithm* failure — eligible for graceful fallback — from
    an error of the query itself."""

    code = "REPRO-ALGO"

    def __init__(self, message: str, *, algorithm: str = "?",
                 **context: Any) -> None:
        super().__init__(message, algorithm=algorithm, **context)
        self.algorithm = algorithm


class ServiceOverloaded(ReproError):
    """The query service shed a request because its admission queue was
    full (see :class:`repro.serve.QueryService`).

    Load shedding is deliberate backpressure, not a crash: the caller
    should retry later or reduce concurrency.  ``queue_depth`` and
    ``queue_limit`` report the state that triggered the shed."""

    code = "REPRO-SERVICE-OVERLOADED"

    def __init__(self, message: str, *, queue_depth: int = 0,
                 queue_limit: int = 0, **context: Any) -> None:
        super().__init__(message, queue_depth=queue_depth,
                         queue_limit=queue_limit, **context)
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit


class ServiceClosed(ReproError):
    """A request was submitted to a query service that has been shut
    down (or is shutting down)."""

    code = "REPRO-SERVICE-CLOSED"


class CircuitOpen(ReproError):
    """A request was rejected because the target document's circuit
    breaker is open (see :mod:`repro.serve.resilience`).

    The breaker opens when the document's recent failure rate crosses
    its threshold; it rejects immediately — without queueing or burning
    a worker — until the cooldown elapses and a half-open probe
    succeeds.  ``retry_after_seconds`` is the remaining cooldown, a
    client backoff hint."""

    code = "REPRO-CIRCUIT-OPEN"

    def __init__(self, message: str, *, document: str = "?",
                 retry_after_seconds: float = 0.0, **context: Any) -> None:
        super().__init__(message, document=document,
                         retry_after_seconds=retry_after_seconds, **context)
        self.document = document
        self.retry_after_seconds = retry_after_seconds


class DocumentQuarantined(ReproError):
    """A catalog document is quarantined after a storage failure.

    :class:`~repro.serve.DocumentCatalog` moves a document here when
    loading it raised a storage error (corrupt index file, bad
    checksum, unreadable path) and no rebuild source was available; the
    registration slot is freed so the operator can fix the file and
    re-register under the same name."""

    code = "REPRO-STORAGE-QUARANTINED"

    def __init__(self, message: str, *, document: str = "?",
                 path: Any = None, **context: Any) -> None:
        super().__init__(message, document=document, path=path, **context)
        self.document = document
        self.path = path


class WorkerLost(ReproError):
    """A cluster worker process died (or its pipe broke) while tasks
    were in flight (see :mod:`repro.serve.cluster`).

    The coordinator re-dispatches lost shard tasks once to another
    worker; this error reaches the caller only when no retry was
    possible (the pool is closing, the deadline passed, or the retry
    failed too).  ``worker_index`` identifies the dead worker."""

    code = "REPRO-CLUSTER-WORKER-LOST"

    def __init__(self, message: str, *, worker_index: int = -1,
                 **context: Any) -> None:
        super().__init__(message, worker_index=worker_index, **context)
        self.worker_index = worker_index


class InternalError(ReproError):
    """An unexpected non-:class:`ReproError` exception crossed the
    service boundary.

    The serving layer guarantees callers only ever see typed errors:
    anything a worker raises that is not already part of the taxonomy
    is wrapped here (original exception as ``__cause__``) instead of
    leaking a bare exception — or worse, hanging the caller."""

    code = "REPRO-INTERNAL"


@dataclass(frozen=True)
class FallbackEvent:
    """One graceful-degradation decision made by ``Engine.execute``."""

    from_strategy: str
    to_strategy: str
    error_code: str
    error: str

    def to_dict(self) -> Dict[str, str]:
        return {"from": self.from_strategy, "to": self.to_strategy,
                "error_code": self.error_code, "error": self.error}

    def __str__(self) -> str:
        return (f"{self.from_strategy} -> {self.to_strategy} "
                f"[{self.error_code}] {self.error}")
