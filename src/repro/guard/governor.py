"""Per-query resource budgets and their enforcement.

A :class:`ResourceGovernor` enforces four independent budgets
(:class:`Budgets`) over one query execution attempt:

* ``wall_seconds`` — a wall-clock timeout.  The deadline can be shared
  across fallback attempts (see ``Engine.execute``), so a query cannot
  multiply its timeout by the length of the fallback chain;
* ``max_steps`` — an evaluation *step* budget.  Steps are charged by the
  evaluator (one per operator evaluation) and by the physical
  algorithms in batches at their existing metrics counter sites (nodes
  visited, stream elements scanned, stack pushes), so the count tracks
  actual work, not just plan size;
* ``max_output`` — a cardinality cap on any single materialized
  operator output (intermediate results included — a runaway cartesian
  product trips long before the final sequence materializes);
* ``max_depth`` — a bound on evaluator recursion depth, turning a
  pathological plan nesting into a structured error instead of a
  ``RecursionError``.

Checking discipline: :meth:`ResourceGovernor.tick` is a counter
increment and compare; the wall clock is read only every
:data:`CLOCK_CHECK_INTERVAL` steps, in :meth:`~ResourceGovernor.
note_output` (per operator, only while a governor is attached) and at
every pattern evaluation — so an idle engine pays nothing and a governed
one pays a few nanoseconds per operator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from .errors import ReproError

__all__ = ["BudgetExceeded", "Budgets", "ResourceGovernor",
           "CLOCK_CHECK_INTERVAL"]

#: steps between wall-clock reads inside :meth:`ResourceGovernor.tick`.
CLOCK_CHECK_INTERVAL = 128


@dataclass(frozen=True)
class Budgets:
    """Per-query resource limits; ``None`` disables a dimension."""

    wall_seconds: Optional[float] = None
    max_steps: Optional[int] = None
    max_output: Optional[int] = None
    max_depth: Optional[int] = None

    def enabled(self) -> bool:
        return (self.wall_seconds is not None or self.max_steps is not None
                or self.max_output is not None or self.max_depth is not None)

    def to_dict(self) -> Dict[str, Any]:
        return {"wall_seconds": self.wall_seconds,
                "max_steps": self.max_steps,
                "max_output": self.max_output,
                "max_depth": self.max_depth}


class BudgetExceeded(ReproError):
    """A resource budget was exhausted.

    ``kind`` is one of ``wall``, ``steps``, ``output``, ``depth``; the
    code is ``REPRO-BUDGET-<KIND>``.  ``elapsed_seconds`` and ``steps``
    report how far the execution got before tripping."""

    code = "REPRO-BUDGET"

    def __init__(self, kind: str, limit: float, observed: float, *,
                 elapsed_seconds: float = 0.0, steps: int = 0) -> None:
        super().__init__(
            f"{kind} budget exceeded: {observed:g} > limit {limit:g} "
            f"(elapsed {elapsed_seconds * 1e3:.1f} ms, {steps} steps)",
            code=f"REPRO-BUDGET-{kind.upper()}",
            kind=kind, limit=limit, observed=observed,
            elapsed_seconds=elapsed_seconds, steps=steps)
        self.kind = kind
        self.limit = limit
        self.observed = observed
        self.elapsed_seconds = elapsed_seconds
        self.steps = steps


class ResourceGovernor:
    """Enforces one :class:`Budgets` over one execution attempt.

    ``deadline`` (a ``clock()`` timestamp) overrides the deadline
    derived from ``budgets.wall_seconds``, letting several attempts
    share one wall budget.
    """

    def __init__(self, budgets: Budgets, *,
                 deadline: Optional[float] = None,
                 clock=time.perf_counter,
                 trace: Optional[Any] = None) -> None:
        self.budgets = budgets
        self._clock = clock
        self.started = clock()
        if deadline is not None:
            self.deadline: Optional[float] = deadline
        elif budgets.wall_seconds is not None:
            self.deadline = self.started + budgets.wall_seconds
        else:
            self.deadline = None
        self.steps = 0
        self.depth = 0
        self._until_clock = CLOCK_CHECK_INTERVAL
        #: optional :class:`repro.trace.Trace`: clock-interval ticks and
        #: budget trips become span events (bounded by the interval, so
        #: tracing a governed run stays cheap).
        self.trace = trace

    @property
    def elapsed(self) -> float:
        return self._clock() - self.started

    # -- the checks (ordered hottest first) --------------------------------

    def tick(self, count: int = 1) -> None:
        """Charge ``count`` evaluation steps (cheap: one add, one or two
        compares; the clock is read every :data:`CLOCK_CHECK_INTERVAL`
        steps)."""
        self.steps += count
        limit = self.budgets.max_steps
        if limit is not None and self.steps > limit:
            raise self._exceeded("steps", limit, self.steps)
        if self.deadline is not None:
            self._until_clock -= count
            if self._until_clock <= 0:
                self._until_clock = CLOCK_CHECK_INTERVAL
                if self.trace is not None:
                    self.trace.event("governor_tick", steps=self.steps)
                self.check_clock()

    def check_clock(self) -> None:
        if self.deadline is not None and self._clock() > self.deadline:
            limit = self.budgets.wall_seconds
            raise self._exceeded(
                "wall", limit if limit is not None else 0.0, self.elapsed)

    def note_output(self, count: int) -> None:
        """Bound one materialized operator output; also polls the clock
        (only called while a governor is attached)."""
        limit = self.budgets.max_output
        if limit is not None and count > limit:
            raise self._exceeded("output", limit, count)
        self.check_clock()

    def enter(self) -> None:
        self.depth += 1
        limit = self.budgets.max_depth
        if limit is not None and self.depth > limit:
            raise self._exceeded("depth", limit, self.depth)

    def leave(self) -> None:
        self.depth -= 1

    def _exceeded(self, kind: str, limit: float,
                  observed: float) -> BudgetExceeded:
        if self.trace is not None:
            self.trace.event("budget_exceeded", kind=kind, limit=limit,
                             observed=observed, steps=self.steps)
        return BudgetExceeded(kind, limit, observed,
                              elapsed_seconds=self.elapsed, steps=self.steps)
