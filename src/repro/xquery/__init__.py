"""XQuery surface syntax: lexer, AST and parser."""

from . import ast
from .lexer import Token, XQuerySyntaxError, tokenize
from .parser import parse_query

__all__ = ["ast", "Token", "XQuerySyntaxError", "tokenize", "parse_query"]
