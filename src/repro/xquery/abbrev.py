"""Resolution of the ``//`` abbreviation.

The XQuery grammar expands ``E1//E2`` into
``E1/descendant-or-self::node()/E2``.  The paper (footnote 2) assumes the
usual simplification ``$d//person`` ≡ ``$d/descendant::person``; this
module implements that collapse with its correct side condition.

The collapse ``E/descendant-or-self::node()/child::T[P1]...[Pn]`` →
``E/descendant::T[P1]...[Pn]`` is only valid when no predicate ``Pi``
depends on the context *position* or *size*, because the two forms group
the candidate nodes differently (``//person[1]`` is not
``/descendant::person[1]``).  We use a conservative syntactic check: a
predicate is positionally safe when its static type is certainly not
numeric and it contains no top-focus ``position()``/``last()`` call.
"""

from __future__ import annotations

from ..xmltree.axes import Axis
from ..xmltree.nodetest import AnyKindTest
from . import ast

_BOOLEAN_FUNCTIONS = {
    "boolean", "fn:boolean", "not", "fn:not", "exists", "fn:exists",
    "empty", "fn:empty", "contains", "fn:contains", "starts-with",
    "fn:starts-with", "true", "fn:true", "false", "fn:false",
}

_POSITIONAL_FUNCTIONS = {"position", "fn:position", "last", "fn:last"}


def resolve_abbreviations(expr: ast.Expr) -> ast.Expr:
    """Collapse safe ``descendant-or-self::node()/child::T`` pairs."""
    expr = _map_children(expr)
    if isinstance(expr, ast.PathExpr):
        left, right = expr.left, expr.right
        if (isinstance(left, ast.PathExpr)
                and _is_dos_node_step(left.right)
                and isinstance(right, ast.AxisStep)
                and right.axis is Axis.CHILD
                and all(_predicate_is_positionally_safe(pred)
                        for pred in right.predicates)):
            collapsed = ast.AxisStep(Axis.DESCENDANT, right.test,
                                     list(right.predicates))
            return ast.PathExpr(left.left, collapsed)
    return expr


def _map_children(expr: ast.Expr) -> ast.Expr:
    """Apply :func:`resolve_abbreviations` to all sub-expressions in place."""
    if isinstance(expr, ast.SequenceExpr):
        expr.items = [resolve_abbreviations(item) for item in expr.items]
    elif isinstance(expr, ast.AxisStep):
        expr.predicates = [resolve_abbreviations(p) for p in expr.predicates]
    elif isinstance(expr, ast.FilterExpr):
        expr.primary = resolve_abbreviations(expr.primary)
        expr.predicates = [resolve_abbreviations(p) for p in expr.predicates]
    elif isinstance(expr, ast.PathExpr):
        expr.left = resolve_abbreviations(expr.left)
        expr.right = resolve_abbreviations(expr.right)
    elif isinstance(expr, ast.FLWORExpr):
        for clause in expr.clauses:
            if isinstance(clause, ast.ForClause):
                clause.source = resolve_abbreviations(clause.source)
            elif isinstance(clause, ast.LetClause):
                clause.value = resolve_abbreviations(clause.value)
            else:
                clause.condition = resolve_abbreviations(clause.condition)
        expr.return_expr = resolve_abbreviations(expr.return_expr)
    elif isinstance(expr, ast.IfExpr):
        expr.condition = resolve_abbreviations(expr.condition)
        expr.then_branch = resolve_abbreviations(expr.then_branch)
        expr.else_branch = resolve_abbreviations(expr.else_branch)
    elif isinstance(expr, ast.QuantifiedExpr):
        expr.source = resolve_abbreviations(expr.source)
        expr.condition = resolve_abbreviations(expr.condition)
    elif isinstance(expr, ast.BinaryExpr):
        expr.left = resolve_abbreviations(expr.left)
        expr.right = resolve_abbreviations(expr.right)
    elif isinstance(expr, ast.UnaryExpr):
        expr.operand = resolve_abbreviations(expr.operand)
    elif isinstance(expr, ast.FunctionCall):
        expr.args = [resolve_abbreviations(arg) for arg in expr.args]
    return expr


def _is_dos_node_step(expr: ast.Expr) -> bool:
    return (isinstance(expr, ast.AxisStep)
            and expr.axis is Axis.DESCENDANT_OR_SELF
            and isinstance(expr.test, AnyKindTest)
            and not expr.predicates)


def _predicate_is_positionally_safe(pred: ast.Expr) -> bool:
    """True when the predicate can never be a numeric (positional) test
    and does not read the context position/size of its own focus."""
    if isinstance(pred, (ast.AxisStep, ast.PathExpr)):
        # Node-typed; safe regardless of nested predicates (those have
        # their own focus).
        return True
    if isinstance(pred, ast.FilterExpr):
        return _predicate_is_positionally_safe(pred.primary)
    if isinstance(pred, ast.VarRef):
        # Unknown type: could be numeric — not safe.
        return False
    if isinstance(pred, ast.BinaryExpr):
        if pred.op in ("=", "!=", "<", "<=", ">", ">="):
            # Boolean-typed, but its operands read this focus' position.
            return not (_uses_focus_position(pred.left)
                        or _uses_focus_position(pred.right))
        if pred.op in ("and", "or"):
            return (_predicate_is_positionally_safe(pred.left)
                    and _predicate_is_positionally_safe(pred.right))
        return False
    if isinstance(pred, ast.FunctionCall):
        if pred.name not in _BOOLEAN_FUNCTIONS:
            return False
        return not any(_uses_focus_position(arg) for arg in pred.args)
    if isinstance(pred, ast.QuantifiedExpr):
        return not (_uses_focus_position(pred.source)
                    or _uses_focus_position(pred.condition))
    return False


def _uses_focus_position(expr: ast.Expr) -> bool:
    """Does ``expr`` call ``position()``/``last()`` on the current focus?

    Nested predicates introduce their own focus, but we stay conservative
    and flag any occurrence anywhere below.
    """
    if isinstance(expr, ast.FunctionCall) and expr.name in _POSITIONAL_FUNCTIONS:
        return True
    return any(_uses_focus_position(child) for child in ast.iter_children(expr))
