"""Surface-syntax AST for the XQuery fragment.

The shapes mirror the XQuery 1.0 grammar productions the paper's
normalization rules target (path expressions (68)-(71), (81), FLWOR
expressions, conditionals, quantifiers and operators).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..xmltree.axes import Axis
from ..xmltree.nodetest import NodeTest


class Expr:
    """Base class of surface expressions."""

    def to_string(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_string()


@dataclass
class Literal(Expr):
    """A string, integer or decimal literal."""

    value: Union[str, int, float]

    def to_string(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace('"', '""')
            return f'"{escaped}"'
        return repr(self.value)


@dataclass
class VarRef(Expr):
    """``$name``."""

    name: str

    def to_string(self) -> str:
        return f"${self.name}"


@dataclass
class ContextItem(Expr):
    """``.``"""

    def to_string(self) -> str:
        return "."


@dataclass
class RootExpr(Expr):
    """The implicit root of an absolute path (leading ``/``)."""

    def to_string(self) -> str:
        return "fn:root(self::node())"


@dataclass
class SequenceExpr(Expr):
    """Comma operator: ``E1, E2, ...`` (also the empty sequence ``()``)."""

    items: List[Expr]

    def to_string(self) -> str:
        return "(" + ", ".join(item.to_string() for item in self.items) + ")"


@dataclass
class AxisStep(Expr):
    """A location step ``axis::nodetest[pred]...``."""

    axis: Axis
    test: NodeTest
    predicates: List[Expr] = field(default_factory=list)

    def to_string(self) -> str:
        base = f"{self.axis.value}::{self.test.to_string()}"
        return base + "".join(f"[{pred.to_string()}]" for pred in self.predicates)


@dataclass
class FilterExpr(Expr):
    """A primary expression with predicates, e.g. ``$x[foo]``."""

    primary: Expr
    predicates: List[Expr]

    def to_string(self) -> str:
        base = self.primary.to_string()
        return base + "".join(f"[{pred.to_string()}]" for pred in self.predicates)


@dataclass
class PathExpr(Expr):
    """``E1/E2`` — the binary path (slash) operator.

    ``E1//E2`` is represented during parsing as
    ``E1/descendant-or-self::node()/E2`` per the XQuery grammar, so only
    the single slash form appears in the AST.
    """

    left: Expr
    right: Expr

    def to_string(self) -> str:
        return f"{self.left.to_string()}/{self.right.to_string()}"


@dataclass
class ForClause:
    var: str
    position_var: Optional[str]
    source: Expr

    def to_string(self) -> str:
        at_clause = f" at ${self.position_var}" if self.position_var else ""
        return f"for ${self.var}{at_clause} in {self.source.to_string()}"


@dataclass
class LetClause:
    var: str
    value: Expr

    def to_string(self) -> str:
        return f"let ${self.var} := {self.value.to_string()}"


@dataclass
class WhereClause:
    condition: Expr

    def to_string(self) -> str:
        return f"where {self.condition.to_string()}"


Clause = Union[ForClause, LetClause, WhereClause]


@dataclass
class FLWORExpr(Expr):
    """``for``/``let``/``where``/``return`` (no ``order by`` in the fragment)."""

    clauses: List[Clause]
    return_expr: Expr

    def to_string(self) -> str:
        clauses = " ".join(clause.to_string() for clause in self.clauses)
        return f"{clauses} return {self.return_expr.to_string()}"


@dataclass
class IfExpr(Expr):
    condition: Expr
    then_branch: Expr
    else_branch: Expr

    def to_string(self) -> str:
        return (f"if ({self.condition.to_string()}) "
                f"then {self.then_branch.to_string()} "
                f"else {self.else_branch.to_string()}")


@dataclass
class QuantifiedExpr(Expr):
    """``some/every $v in E satisfies C``."""

    quantifier: str  # "some" | "every"
    var: str
    source: Expr
    condition: Expr

    def to_string(self) -> str:
        return (f"{self.quantifier} ${self.var} in {self.source.to_string()} "
                f"satisfies {self.condition.to_string()}")


@dataclass
class BinaryExpr(Expr):
    """Logical, comparison, arithmetic and union operators."""

    op: str  # "and" "or" "=" "!=" "<" "<=" ">" ">=" "+" "-" "*" "div" "mod" "|" "to"
    left: Expr
    right: Expr

    def to_string(self) -> str:
        return f"({self.left.to_string()} {self.op} {self.right.to_string()})"


@dataclass
class UnaryExpr(Expr):
    op: str  # "-" | "+"
    operand: Expr

    def to_string(self) -> str:
        return f"{self.op}{self.operand.to_string()}"


@dataclass
class FunctionCall(Expr):
    """``fn:count(...)`` etc.; names keep their prefix verbatim."""

    name: str
    args: List[Expr]

    def to_string(self) -> str:
        rendered = ", ".join(arg.to_string() for arg in self.args)
        return f"{self.name}({rendered})"


def iter_children(expr: Expr) -> Sequence[Expr]:
    """Direct sub-expressions of a surface expression (for traversals)."""
    if isinstance(expr, SequenceExpr):
        return expr.items
    if isinstance(expr, AxisStep):
        return expr.predicates
    if isinstance(expr, FilterExpr):
        return [expr.primary, *expr.predicates]
    if isinstance(expr, PathExpr):
        return [expr.left, expr.right]
    if isinstance(expr, FLWORExpr):
        children: list[Expr] = []
        for clause in expr.clauses:
            if isinstance(clause, ForClause):
                children.append(clause.source)
            elif isinstance(clause, LetClause):
                children.append(clause.value)
            else:
                children.append(clause.condition)
        children.append(expr.return_expr)
        return children
    if isinstance(expr, IfExpr):
        return [expr.condition, expr.then_branch, expr.else_branch]
    if isinstance(expr, QuantifiedExpr):
        return [expr.source, expr.condition]
    if isinstance(expr, BinaryExpr):
        return [expr.left, expr.right]
    if isinstance(expr, UnaryExpr):
        return [expr.operand]
    if isinstance(expr, FunctionCall):
        return expr.args
    return ()
