"""Recursive-descent parser for the XQuery fragment.

Covers the productions the paper's pipeline handles: path expressions
with all supported axes, abbreviations (``//``, ``@``, ``..``, ``.``),
predicates, FLWOR with multiple ``for``/``let`` clauses and positional
``at`` variables, conditionals, quantifiers, general comparisons,
boolean/arithmetic/union operators, literals, and function calls.

XQuery keywords are not reserved, so keyword-ness is decided from
context (``for`` starts a FLWOR only when followed by ``$``; ``and`` is
an operator only in operator position; a bare name in step position is a
child-axis name test).
"""

from __future__ import annotations

from typing import List, Optional

from ..xmltree.axes import Axis
from ..xmltree.nodetest import (AnyKindTest, ElementTest, NameTest, NodeTest,
                                TextTest, WildcardTest)
from . import ast
from .lexer import (DECIMAL, EOF, INTEGER, NAME, STRING, SYMBOL, VARIABLE,
                    Token, XQuerySyntaxError, tokenize)

_AXIS_ALIASES = {
    "desc": Axis.DESCENDANT,
    "dos": Axis.DESCENDANT_OR_SELF,
}
_AXIS_NAMES = {axis.value for axis in Axis} | set(_AXIS_ALIASES)
_KIND_TESTS = {"node", "text", "element"}
_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}


class _TokenCursor:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.type != EOF:
            self.index += 1
        return token

    def expect_symbol(self, value: str) -> Token:
        token = self.current
        if not token.is_symbol(value):
            raise XQuerySyntaxError(
                f"expected {value!r}, found {token.value!r}", token.position)
        return self.advance()

    def expect_name(self, value: str) -> Token:
        token = self.current
        if not token.is_name(value):
            raise XQuerySyntaxError(
                f"expected keyword {value!r}, found {token.value!r}", token.position)
        return self.advance()

    def expect_variable(self) -> str:
        token = self.current
        if token.type != VARIABLE:
            raise XQuerySyntaxError(
                f"expected a variable, found {token.value!r}", token.position)
        self.advance()
        return token.value


def parse_query(text: str) -> ast.Expr:
    """Parse a query string into a surface AST.

    Syntax errors escape with a :class:`~repro.guard.errors.SourceSpan`
    attached (line/column plus a caret-annotated snippet)."""
    try:
        cursor = _TokenCursor(tokenize(text))
        expr = _parse_expr(cursor)
        token = cursor.current
        if token.type != EOF:
            raise XQuerySyntaxError(
                f"unexpected trailing input {token.value!r}", token.position)
    except XQuerySyntaxError as err:
        raise err.attach_source(text)
    return expr


# -- expression levels ------------------------------------------------------

def _parse_expr(cursor: _TokenCursor) -> ast.Expr:
    first = _parse_expr_single(cursor)
    if not cursor.current.is_symbol(","):
        return first
    items = [first]
    while cursor.current.is_symbol(","):
        cursor.advance()
        items.append(_parse_expr_single(cursor))
    return ast.SequenceExpr(items)


def _parse_expr_single(cursor: _TokenCursor) -> ast.Expr:
    token = cursor.current
    if token.type == NAME:
        if token.value in ("for", "let") and cursor.peek().type == VARIABLE:
            return _parse_flwor(cursor)
        if token.value in ("some", "every") and cursor.peek().type == VARIABLE:
            return _parse_quantified(cursor)
        if token.value == "if" and cursor.peek().is_symbol("("):
            return _parse_if(cursor)
    return _parse_or(cursor)


def _parse_flwor(cursor: _TokenCursor) -> ast.Expr:
    clauses: list[ast.Clause] = []
    while True:
        token = cursor.current
        if token.is_name("for") and cursor.peek().type == VARIABLE:
            cursor.advance()
            while True:
                var = cursor.expect_variable()
                position_var: Optional[str] = None
                if cursor.current.is_name("at"):
                    cursor.advance()
                    position_var = cursor.expect_variable()
                cursor.expect_name("in")
                source = _parse_expr_single(cursor)
                clauses.append(ast.ForClause(var, position_var, source))
                if cursor.current.is_symbol(",") and cursor.peek().type == VARIABLE:
                    cursor.advance()
                    continue
                break
        elif token.is_name("let") and cursor.peek().type == VARIABLE:
            cursor.advance()
            while True:
                var = cursor.expect_variable()
                cursor.expect_symbol(":=")
                value = _parse_expr_single(cursor)
                clauses.append(ast.LetClause(var, value))
                if cursor.current.is_symbol(",") and cursor.peek().type == VARIABLE:
                    cursor.advance()
                    continue
                break
        elif token.is_name("where"):
            cursor.advance()
            clauses.append(ast.WhereClause(_parse_expr_single(cursor)))
        elif token.is_name("return"):
            cursor.advance()
            return ast.FLWORExpr(clauses, _parse_expr_single(cursor))
        else:
            raise XQuerySyntaxError(
                f"expected a FLWOR clause or 'return', found {token.value!r}",
                token.position)


def _parse_quantified(cursor: _TokenCursor) -> ast.Expr:
    quantifier = cursor.advance().value
    var = cursor.expect_variable()
    cursor.expect_name("in")
    source = _parse_expr_single(cursor)
    cursor.expect_name("satisfies")
    condition = _parse_expr_single(cursor)
    return ast.QuantifiedExpr(quantifier, var, source, condition)


def _parse_if(cursor: _TokenCursor) -> ast.Expr:
    cursor.expect_name("if")
    cursor.expect_symbol("(")
    condition = _parse_expr(cursor)
    cursor.expect_symbol(")")
    cursor.expect_name("then")
    then_branch = _parse_expr_single(cursor)
    cursor.expect_name("else")
    else_branch = _parse_expr_single(cursor)
    return ast.IfExpr(condition, then_branch, else_branch)


def _parse_or(cursor: _TokenCursor) -> ast.Expr:
    left = _parse_and(cursor)
    while cursor.current.is_name("or"):
        cursor.advance()
        left = ast.BinaryExpr("or", left, _parse_and(cursor))
    return left


def _parse_and(cursor: _TokenCursor) -> ast.Expr:
    left = _parse_comparison(cursor)
    while cursor.current.is_name("and"):
        cursor.advance()
        left = ast.BinaryExpr("and", left, _parse_comparison(cursor))
    return left


def _parse_comparison(cursor: _TokenCursor) -> ast.Expr:
    left = _parse_range(cursor)
    token = cursor.current
    if token.type == SYMBOL and token.value in _COMPARISON_OPS:
        cursor.advance()
        return ast.BinaryExpr(token.value, left, _parse_range(cursor))
    return left


def _parse_range(cursor: _TokenCursor) -> ast.Expr:
    left = _parse_additive(cursor)
    if cursor.current.is_name("to"):
        cursor.advance()
        return ast.BinaryExpr("to", left, _parse_additive(cursor))
    return left


def _parse_additive(cursor: _TokenCursor) -> ast.Expr:
    left = _parse_multiplicative(cursor)
    while cursor.current.is_symbol("+", "-"):
        op = cursor.advance().value
        left = ast.BinaryExpr(op, left, _parse_multiplicative(cursor))
    return left


def _parse_multiplicative(cursor: _TokenCursor) -> ast.Expr:
    left = _parse_union(cursor)
    while True:
        token = cursor.current
        if token.is_symbol("*") or token.is_name("div") or token.is_name("mod"):
            cursor.advance()
            op = "*" if token.value == "*" else token.value
            left = ast.BinaryExpr(op, left, _parse_union(cursor))
        else:
            return left


def _parse_union(cursor: _TokenCursor) -> ast.Expr:
    left = _parse_unary(cursor)
    while cursor.current.is_symbol("|") or cursor.current.is_name("union"):
        cursor.advance()
        left = ast.BinaryExpr("|", left, _parse_unary(cursor))
    return left


def _parse_unary(cursor: _TokenCursor) -> ast.Expr:
    if cursor.current.is_symbol("-", "+"):
        op = cursor.advance().value
        return ast.UnaryExpr(op, _parse_unary(cursor))
    return _parse_path(cursor)


# -- paths -------------------------------------------------------------------

def _parse_path(cursor: _TokenCursor) -> ast.Expr:
    token = cursor.current
    if token.is_symbol("/"):
        cursor.advance()
        root: ast.Expr = ast.RootExpr()
        if _starts_step(cursor):
            return _parse_relative_path(cursor, root)
        return root
    if token.is_symbol("//"):
        cursor.advance()
        root = ast.PathExpr(
            ast.RootExpr(),
            ast.AxisStep(Axis.DESCENDANT_OR_SELF, AnyKindTest()))
        return _parse_relative_path(cursor, root)
    first = _parse_step(cursor)
    return _parse_relative_path_continuation(cursor, first)


def _parse_relative_path(cursor: _TokenCursor, left: ast.Expr) -> ast.Expr:
    step = _parse_step(cursor)
    return _parse_relative_path_continuation(cursor, ast.PathExpr(left, step))


def _parse_relative_path_continuation(cursor: _TokenCursor, left: ast.Expr) -> ast.Expr:
    while True:
        token = cursor.current
        if token.is_symbol("/"):
            cursor.advance()
            left = ast.PathExpr(left, _parse_step(cursor))
        elif token.is_symbol("//"):
            cursor.advance()
            left = ast.PathExpr(
                left, ast.AxisStep(Axis.DESCENDANT_OR_SELF, AnyKindTest()))
            left = ast.PathExpr(left, _parse_step(cursor))
        else:
            return left


def _starts_step(cursor: _TokenCursor) -> bool:
    token = cursor.current
    if token.type in (NAME, VARIABLE, STRING, INTEGER, DECIMAL):
        return True
    return token.is_symbol("@", "..", ".", "*", "(")


def _parse_step(cursor: _TokenCursor) -> ast.Expr:
    token = cursor.current
    if token.is_symbol(".."):
        cursor.advance()
        return _with_predicates(
            cursor, ast.AxisStep(Axis.PARENT, AnyKindTest()), axis_step=True)
    if token.is_symbol("@"):
        cursor.advance()
        test = _parse_node_test(cursor, Axis.ATTRIBUTE)
        return _with_predicates(
            cursor, ast.AxisStep(Axis.ATTRIBUTE, test), axis_step=True)
    if token.is_symbol("*"):
        cursor.advance()
        return _with_predicates(
            cursor, ast.AxisStep(Axis.CHILD, WildcardTest()), axis_step=True)
    if token.type == NAME:
        if token.value in _AXIS_NAMES and cursor.peek().is_symbol("::"):
            cursor.advance()
            cursor.advance()
            axis = _resolve_axis(token.value, token.position)
            test = _parse_node_test(cursor, axis)
            return _with_predicates(
                cursor, ast.AxisStep(axis, test), axis_step=True)
        if token.value in _KIND_TESTS and cursor.peek().is_symbol("("):
            test = _parse_node_test(cursor, Axis.CHILD)
            return _with_predicates(
                cursor, ast.AxisStep(Axis.CHILD, test), axis_step=True)
        if cursor.peek().is_symbol("("):
            return _with_predicates(cursor, _parse_function_call(cursor),
                                    axis_step=False)
        cursor.advance()
        return _with_predicates(
            cursor, ast.AxisStep(Axis.CHILD, NameTest(token.value)),
            axis_step=True)
    return _with_predicates(cursor, _parse_primary(cursor), axis_step=False)


def _resolve_axis(name: str, position: int) -> Axis:
    if name in _AXIS_ALIASES:
        return _AXIS_ALIASES[name]
    try:
        return Axis(name)
    except ValueError as error:
        raise XQuerySyntaxError(f"unknown axis {name!r}", position) from error


def _parse_node_test(cursor: _TokenCursor, axis: Axis) -> NodeTest:
    token = cursor.current
    if token.is_symbol("*"):
        cursor.advance()
        return WildcardTest()
    if token.type != NAME:
        raise XQuerySyntaxError(
            f"expected a node test, found {token.value!r}", token.position)
    if token.value in _KIND_TESTS and cursor.peek().is_symbol("("):
        kind = cursor.advance().value
        cursor.expect_symbol("(")
        name: Optional[str] = None
        if kind == "element" and cursor.current.type == NAME:
            name = cursor.advance().value
        cursor.expect_symbol(")")
        if kind == "node":
            return AnyKindTest()
        if kind == "text":
            return TextTest()
        return ElementTest(name)
    cursor.advance()
    return NameTest(token.value)


def _with_predicates(cursor: _TokenCursor, expr: ast.Expr, axis_step: bool) -> ast.Expr:
    predicates: list[ast.Expr] = []
    while cursor.current.is_symbol("["):
        cursor.advance()
        predicates.append(_parse_expr(cursor))
        cursor.expect_symbol("]")
    if not predicates:
        return expr
    if axis_step and isinstance(expr, ast.AxisStep):
        expr.predicates.extend(predicates)
        return expr
    return ast.FilterExpr(expr, predicates)


# -- primaries ----------------------------------------------------------------

def _parse_primary(cursor: _TokenCursor) -> ast.Expr:
    token = cursor.current
    if token.type == VARIABLE:
        cursor.advance()
        return ast.VarRef(token.value)
    if token.type == STRING:
        cursor.advance()
        return ast.Literal(token.value)
    if token.type == INTEGER:
        cursor.advance()
        return ast.Literal(int(token.value))
    if token.type == DECIMAL:
        cursor.advance()
        return ast.Literal(float(token.value))
    if token.is_symbol("."):
        cursor.advance()
        return ast.ContextItem()
    if token.is_symbol("("):
        cursor.advance()
        if cursor.current.is_symbol(")"):
            cursor.advance()
            return ast.SequenceExpr([])
        inner = _parse_expr(cursor)
        cursor.expect_symbol(")")
        return inner
    if token.type == NAME and cursor.peek().is_symbol("("):
        return _parse_function_call(cursor)
    raise XQuerySyntaxError(
        f"unexpected token {token.value!r}", token.position)


def _parse_function_call(cursor: _TokenCursor) -> ast.Expr:
    name = cursor.advance().value
    cursor.expect_symbol("(")
    args: list[ast.Expr] = []
    if not cursor.current.is_symbol(")"):
        args.append(_parse_expr_single(cursor))
        while cursor.current.is_symbol(","):
            cursor.advance()
            args.append(_parse_expr_single(cursor))
    cursor.expect_symbol(")")
    return ast.FunctionCall(name, args)
