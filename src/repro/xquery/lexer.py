"""Tokenizer for the XQuery fragment.

XQuery has no reserved words — ``for`` is a legal element name — so the
lexer only classifies shapes (names, variables, literals, symbols) and
the parser decides contextually whether a name is a keyword.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..guard.errors import ReproError


class XQuerySyntaxError(ReproError):
    """Raised on malformed query text.

    Always carries ``position`` (character offset); the ``tokenize``/
    ``parse_query`` entry points attach a full :class:`~repro.guard.
    errors.SourceSpan` (line, column, caret snippet) before the error
    escapes."""

    code = "REPRO-XQ-SYNTAX"

    def __init__(self, message: str, position: Optional[int] = None) -> None:
        super().__init__(message)
        self.position = position


# Token types.
NAME = "name"          # NCName or prefix:localname
VARIABLE = "variable"  # $name
STRING = "string"
INTEGER = "integer"
DECIMAL = "decimal"
SYMBOL = "symbol"
EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: str
    value: str
    position: int

    def is_symbol(self, *values: str) -> bool:
        return self.type == SYMBOL and self.value in values

    def is_name(self, *values: str) -> bool:
        return self.type == NAME and self.value in values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type}, {self.value!r})"


# Multi-character symbols must come before their prefixes.
_SYMBOLS = [
    "//", "::", ":=", "..", "!=", "<=", ">=",
    "/", "[", "]", "(", ")", "{", "}", ",", "@", ".", "=", "<", ">",
    "+", "-", "*", "|", ";", "?",
]

_NAME_START_EXTRA = set("_")
_NAME_EXTRA = set("_-.")


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


def tokenize(text: str) -> list[Token]:
    """Tokenize a query; always ends with an EOF token."""
    try:
        return list(_tokens(text))
    except XQuerySyntaxError as err:
        raise err.attach_source(text)


def _tokens(text: str) -> Iterator[Token]:
    pos = 0
    length = len(text)
    while pos < length:
        ch = text[pos]
        if ch.isspace():
            pos += 1
            continue
        if text.startswith("(:", pos):
            pos = _skip_comment(text, pos)
            continue
        if ch == "$":
            start = pos
            pos += 1
            if pos >= length or not _is_name_start(text[pos]):
                raise XQuerySyntaxError("expected a variable name after '$'", pos)
            pos = _scan_qname(text, pos)
            yield Token(VARIABLE, text[start + 1:pos], start)
            continue
        if ch in ("'", '"'):
            start = pos
            pos += 1
            chunks: list[str] = []
            while True:
                if pos >= length:
                    raise XQuerySyntaxError("unterminated string literal", start)
                if text[pos] == ch:
                    # Doubled quote is the XQuery escape for the quote char.
                    if pos + 1 < length and text[pos + 1] == ch:
                        chunks.append(ch)
                        pos += 2
                        continue
                    pos += 1
                    break
                chunks.append(text[pos])
                pos += 1
            yield Token(STRING, "".join(chunks), start)
            continue
        if ch.isdigit():
            start = pos
            while pos < length and text[pos].isdigit():
                pos += 1
            if pos < length and text[pos] == "." and pos + 1 < length and text[pos + 1].isdigit():
                pos += 1
                while pos < length and text[pos].isdigit():
                    pos += 1
                yield Token(DECIMAL, text[start:pos], start)
            else:
                yield Token(INTEGER, text[start:pos], start)
            continue
        if _is_name_start(ch):
            start = pos
            pos = _scan_qname(text, pos)
            yield Token(NAME, text[start:pos], start)
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, pos):
                yield Token(SYMBOL, symbol, pos)
                pos += len(symbol)
                break
        else:
            raise XQuerySyntaxError(f"unexpected character {ch!r}", pos)
    yield Token(EOF, "", length)


def _scan_qname(text: str, pos: int) -> int:
    """Scan an NCName, optionally followed by ``:NCName`` (a QName)."""
    length = len(text)
    pos += 1
    while pos < length and _is_name_char(text[pos]):
        pos += 1
    # A single colon followed by a name-start char extends to a QName,
    # but '::' is the axis separator and must not be consumed.
    if (pos < length and text[pos] == ":"
            and not text.startswith("::", pos)
            and pos + 1 < length and _is_name_start(text[pos + 1])):
        pos += 2
        while pos < length and _is_name_char(text[pos]):
            pos += 1
    return pos


def _skip_comment(text: str, pos: int) -> int:
    """Skip a possibly nested ``(: ... :)`` comment."""
    start = pos
    depth = 0
    length = len(text)
    while pos < length:
        if text.startswith("(:", pos):
            depth += 1
            pos += 2
        elif text.startswith(":)", pos):
            depth -= 1
            pos += 2
            if depth == 0:
                return pos
        else:
            pos += 1
    raise XQuerySyntaxError("unterminated comment", start)
