"""Synthetic document generators (MemBeR-style and XMark-style)."""

from .member import (approximate_size_bytes, deep_member_document,
                     member_document, tag_name)
from .xmark import XMARK_CHILD_DESCENDANT_PAIRS, xmark_document

__all__ = [
    "approximate_size_bytes", "deep_member_document", "member_document",
    "tag_name", "XMARK_CHILD_DESCENDANT_PAIRS", "xmark_document",
]
