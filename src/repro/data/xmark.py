"""An XMark-shaped auction-site document generator.

The real XMark generator (xmlgen) is a C program; this module produces
documents with the same element hierarchy and relative fan-outs for the
parts the paper's experiments touch — ``site/people/person`` (with
optional ``emailaddress``, ``profile/interest``), regions with items,
open and closed auctions, and categories — scaled by a person count
instead of XMark's factor.  Content is deterministic per seed.

Schema shape (per XMark):

.. code-block:: text

    site
    ├── regions/{africa,asia,europe,namerica}/item*
    │       item: location quantity name payment? description
    │             incategory* mailbox/mail*
    ├── categories/category*          category: name description
    ├── catgraph/edge*
    ├── people/person*                person: name emailaddress? phone?
    │       address? profile? watches?
    │       profile: interest* education? age?
    ├── open_auctions/open_auction*   open_auction: initial bidder* current
    │       itemref seller annotation quantity type interval
    └── closed_auctions/closed_auction*
            closed_auction: seller buyer itemref price date quantity type
"""

from __future__ import annotations

import random
from typing import List

from ..xmltree.document import IndexedDocument
from ..xmltree.node import DocumentNode, ElementNode, TextNode, assign_regions

_FIRST_NAMES = ["John", "Mary", "Wang", "Aisha", "Pierre", "Elena", "Kofi",
                "Yuki", "Carlos", "Ingrid", "Ahmed", "Sofia"]
_LAST_NAMES = ["Smith", "Garcia", "Chen", "Okafor", "Dubois", "Novak",
               "Tanaka", "Larsen", "Costa", "Haddad"]
_WORDS = ["vintage", "rare", "antique", "mint", "classic", "limited",
          "edition", "signed", "original", "restored", "pristine", "boxed"]
_CATEGORIES = ["art", "music", "books", "coins", "stamps", "toys",
               "computers", "sports", "travel", "garden"]
_REGIONS = ["africa", "asia", "europe", "namerica"]


class _Builder:
    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)

    def element(self, parent: ElementNode, name: str,
                text: str | None = None, **attributes: str) -> ElementNode:
        child = ElementNode(name)
        for attr_name, attr_value in attributes.items():
            child.set_attribute(attr_name, attr_value)
        if text is not None:
            child.append_child(TextNode(text))
        parent.append_child(child)
        return child

    def words(self, count: int) -> str:
        return " ".join(self.rng.choice(_WORDS) for _ in range(count))

    def person_name(self) -> str:
        return (f"{self.rng.choice(_FIRST_NAMES)} "
                f"{self.rng.choice(_LAST_NAMES)}")


def xmark_document(person_count: int = 200, seed: int = 19992001,
                   email_probability: float = 0.7) -> IndexedDocument:
    """Generate an XMark-shaped document.

    ``person_count`` scales everything else the way XMark's factor
    does: ~2 items, ~1 open auction and ~0.5 closed auctions per person,
    and one category per 20 people.
    """
    if person_count < 1:
        raise ValueError("person_count must be at least 1")
    builder = _Builder(seed)
    rng = builder.rng
    document = DocumentNode()
    site = ElementNode("site")
    document.append_child(site)

    category_count = max(person_count // 20, 2)
    item_count = person_count * 2
    open_count = person_count
    closed_count = max(person_count // 2, 1)

    _build_regions(builder, site, item_count, category_count)
    _build_categories(builder, site, category_count)
    _build_catgraph(builder, site, category_count)
    _build_people(builder, site, person_count, email_probability)
    _build_open_auctions(builder, site, open_count, person_count, item_count)
    _build_closed_auctions(builder, site, closed_count, person_count,
                           item_count)
    assign_regions(document)
    return IndexedDocument(document)


def _build_regions(builder: _Builder, site: ElementNode, item_count: int,
                   category_count: int) -> None:
    rng = builder.rng
    regions = builder.element(site, "regions")
    region_elements = [builder.element(regions, name) for name in _REGIONS]
    for index in range(item_count):
        region = rng.choice(region_elements)
        item = builder.element(region, "item", id=f"item{index}")
        builder.element(item, "location", rng.choice(
            ["United States", "Germany", "Japan", "Brazil", "Kenya"]))
        builder.element(item, "quantity", str(rng.randint(1, 5)))
        builder.element(item, "name", builder.words(2))
        if rng.random() < 0.8:
            builder.element(item, "payment", rng.choice(
                ["Money order", "Creditcard", "Cash"]))
        description = builder.element(item, "description")
        builder.element(description, "text", builder.words(6))
        for _ in range(rng.randint(0, 2)):
            builder.element(item, "incategory",
                            category=f"category{rng.randrange(category_count)}")
        mailbox = builder.element(item, "mailbox")
        for _ in range(rng.randint(0, 2)):
            mail = builder.element(mailbox, "mail")
            builder.element(mail, "from", builder.person_name())
            builder.element(mail, "to", builder.person_name())
            builder.element(mail, "date", _date(rng))
            builder.element(mail, "text", builder.words(5))


def _build_categories(builder: _Builder, site: ElementNode,
                      category_count: int) -> None:
    categories = builder.element(site, "categories")
    for index in range(category_count):
        category = builder.element(categories, "category",
                                   id=f"category{index}")
        builder.element(category, "name",
                        _CATEGORIES[index % len(_CATEGORIES)])
        description = builder.element(category, "description")
        builder.element(description, "text", builder.words(4))


def _build_catgraph(builder: _Builder, site: ElementNode,
                    category_count: int) -> None:
    rng = builder.rng
    catgraph = builder.element(site, "catgraph")
    for _ in range(category_count):
        builder.element(catgraph, "edge",
                        **{"from": f"category{rng.randrange(category_count)}",
                           "to": f"category{rng.randrange(category_count)}"})


def _build_people(builder: _Builder, site: ElementNode, person_count: int,
                  email_probability: float) -> None:
    rng = builder.rng
    people = builder.element(site, "people")
    for index in range(person_count):
        person = builder.element(people, "person", id=f"person{index}")
        name = builder.person_name()
        builder.element(person, "name", name)
        if rng.random() < email_probability:
            local = name.replace(" ", ".").lower()
            builder.element(person, "emailaddress",
                            f"mailto:{local}{index}@example.com")
        if rng.random() < 0.4:
            builder.element(person, "phone",
                            f"+{rng.randint(1, 99)} {rng.randint(100, 999)} "
                            f"{rng.randint(1000, 9999)}")
        if rng.random() < 0.5:
            address = builder.element(person, "address")
            builder.element(address, "street",
                            f"{rng.randint(1, 99)} {builder.words(1)} St")
            builder.element(address, "city", rng.choice(
                ["Antwerp", "Yorktown", "Tokyo", "Lagos", "Porto"]))
            builder.element(address, "country", rng.choice(
                ["Belgium", "United States", "Japan", "Nigeria", "Portugal"]))
        if rng.random() < 0.75:
            profile = builder.element(person, "profile",
                                      income=str(rng.randint(10, 120) * 1000))
            for _ in range(rng.randint(0, 3)):
                builder.element(profile, "interest",
                                category=rng.choice(_CATEGORIES))
            if rng.random() < 0.5:
                builder.element(profile, "education", rng.choice(
                    ["High School", "College", "Graduate School"]))
            if rng.random() < 0.6:
                builder.element(profile, "age", str(rng.randint(18, 80)))
        if rng.random() < 0.3:
            watches = builder.element(person, "watches")
            for _ in range(rng.randint(1, 3)):
                builder.element(watches, "watch",
                                open_auction=f"auction{rng.randrange(max(person_count, 1))}")


def _build_open_auctions(builder: _Builder, site: ElementNode,
                         open_count: int, person_count: int,
                         item_count: int) -> None:
    rng = builder.rng
    auctions = builder.element(site, "open_auctions")
    for index in range(open_count):
        auction = builder.element(auctions, "open_auction",
                                  id=f"auction{index}")
        initial = rng.randint(1, 200)
        builder.element(auction, "initial", f"{initial}.00")
        current = initial
        for _ in range(rng.randint(0, 4)):
            bidder = builder.element(auction, "bidder")
            builder.element(bidder, "date", _date(rng))
            builder.element(bidder, "time", _time(rng))
            builder.element(bidder, "personref",
                            person=f"person{rng.randrange(person_count)}")
            increase = rng.randint(1, 20)
            current += increase
            builder.element(bidder, "increase", f"{increase}.00")
        builder.element(auction, "current", f"{current}.00")
        builder.element(auction, "itemref",
                        item=f"item{rng.randrange(item_count)}")
        builder.element(auction, "seller",
                        person=f"person{rng.randrange(person_count)}")
        annotation = builder.element(auction, "annotation")
        builder.element(annotation, "author",
                        person=f"person{rng.randrange(person_count)}")
        builder.element(annotation, "description", builder.words(5))
        builder.element(auction, "quantity", str(rng.randint(1, 3)))
        builder.element(auction, "type", rng.choice(
            ["Regular", "Featured", "Dutch"]))
        interval = builder.element(auction, "interval")
        builder.element(interval, "start", _date(rng))
        builder.element(interval, "end", _date(rng))


def _build_closed_auctions(builder: _Builder, site: ElementNode,
                           closed_count: int, person_count: int,
                           item_count: int) -> None:
    rng = builder.rng
    auctions = builder.element(site, "closed_auctions")
    for _ in range(closed_count):
        auction = builder.element(auctions, "closed_auction")
        builder.element(auction, "seller",
                        person=f"person{rng.randrange(person_count)}")
        builder.element(auction, "buyer",
                        person=f"person{rng.randrange(person_count)}")
        builder.element(auction, "itemref",
                        item=f"item{rng.randrange(item_count)}")
        builder.element(auction, "price", f"{rng.randint(5, 500)}.00")
        builder.element(auction, "date", _date(rng))
        builder.element(auction, "quantity", str(rng.randint(1, 3)))
        builder.element(auction, "type", rng.choice(["Regular", "Featured"]))


def _date(rng: random.Random) -> str:
    return (f"{rng.randint(1, 12):02d}/{rng.randint(1, 28):02d}/"
            f"{rng.randint(1998, 2006)}")


def _time(rng: random.Random) -> str:
    return f"{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}:00"


#: query pairs for the Figure 6 experiment: the child-axis form and the
#: semantically equivalent descendant-axis form (equivalence holds for
#: this generator's schema, where these element names appear at unique
#: paths).
XMARK_CHILD_DESCENDANT_PAIRS: List[tuple[str, str, str]] = [
    ("XMq1",
     "$input/site/people/person/name",
     "$input/descendant::person/name"),
    ("XMq2",
     "$input/site/people/person[emailaddress]/profile/interest",
     "$input/descendant::person[emailaddress]/descendant::interest"),
    ("XMq3",
     "$input/site/open_auctions/open_auction/bidder/increase",
     "$input/descendant::bidder/increase"),
    ("XMq4",
     "$input/site/closed_auctions/closed_auction/price",
     "$input/descendant::price"),
    ("XMq5",
     "$input/site/regions/*/item[payment]/name",
     "$input/descendant::item[payment]/name"),
]
