"""MemBeR-style synthetic documents.

The paper's micro-benchmark documents are characterised by three knobs:
total node count, tree depth and number of distinct tags (uniformly
distributed).  Two shapes are needed:

* :func:`member_document` — the Table 1 documents: bounded depth
  (depth 4 in the paper), many tags (100), sizes from ~2 MB to ~11 MB;
* :func:`deep_member_document` — the Section 5.3 document: a single
  tag (``t1``), 50,000 nodes, depth 15 (a roughly binary tree), on
  which ``(/t1[1])^k`` is highly selective.

Both are deterministic for a given seed.
"""

from __future__ import annotations

import random
from collections import deque
from typing import List, Optional

from ..xmltree.document import IndexedDocument
from ..xmltree.node import DocumentNode, ElementNode, assign_regions


def tag_name(index: int) -> str:
    """The i-th tag name (1-based): t01, t02, ..."""
    return f"t{index:02d}"


def member_document(node_count: int, depth: int = 4, tag_count: int = 100,
                    seed: int = 20070415) -> IndexedDocument:
    """A bounded-depth random tree with uniformly distributed tags.

    Every new element picks a uniformly random parent among the existing
    elements of depth < ``depth``; tags are drawn uniformly from
    ``t01..t{tag_count}``.  The root always exists and carries ``t01``
    so that rooted queries like the paper's QE1–QE6 (which all start at
    ``desc::t01``) have matches.
    """
    if node_count < 1:
        raise ValueError("node_count must be at least 1")
    rng = random.Random(seed)
    document = DocumentNode()
    root = ElementNode(tag_name(1))
    document.append_child(root)
    eligible: List[ElementNode] = [root]
    depths = {id(root): 1}
    for _ in range(node_count - 1):
        parent = eligible[rng.randrange(len(eligible))]
        element = ElementNode(tag_name(rng.randint(1, tag_count)))
        parent.append_child(element)
        element_depth = depths[id(parent)] + 1
        depths[id(element)] = element_depth
        if element_depth < depth:
            eligible.append(element)
    assign_regions(document)
    return IndexedDocument(document)


def deep_member_document(node_count: int = 50_000, depth: int = 15,
                         tag: str = "t1") -> IndexedDocument:
    """A deep single-tag tree (the Section 5.3 document).

    Builds a complete b-ary tree whose branching factor is chosen so the
    tree reaches (approximately) the requested depth at the requested
    size — for 50,000 nodes and depth 15 that is a binary tree.  The
    first-child chain from the root has length ``depth``, so
    ``(/t1[1])^k`` navigates k levels while the index-based algorithms
    scan the (single) 50,000-element tag stream at every step.
    """
    if node_count < 1:
        raise ValueError("node_count must be at least 1")
    branching = _branching_for(node_count, depth)
    document = DocumentNode()
    root = ElementNode(tag)
    document.append_child(root)
    created = 1
    # First lay down the first-child chain so the advertised depth (and
    # the ``(/t1[1])^k`` navigation path) always exists.
    chain: List[ElementNode] = [root]
    node = root
    while len(chain) < depth and created < node_count:
        child = ElementNode(tag)
        node.append_child(child)
        chain.append(child)
        node = child
        created += 1
    # Then fill breadth-first up to the branching factor, never exceeding
    # the depth bound.
    queue: deque[tuple[ElementNode, int]] = deque(
        (chain_node, level + 1) for level, chain_node in enumerate(chain))
    while created < node_count and queue:
        parent, level = queue.popleft()
        if level >= depth:
            continue
        while len(parent.children) < branching and created < node_count:
            child = ElementNode(tag)
            parent.append_child(child)
            queue.append((child, level + 1))
            created += 1
    assign_regions(document)
    return IndexedDocument(document)


def _branching_for(node_count: int, depth: int) -> int:
    """Smallest branching factor b with 1 + b + ... + b^(depth-1) ≥ n."""
    for branching in range(2, 64):
        total = 0
        power = 1
        for _ in range(depth):
            total += power
            power *= branching
            if total >= node_count:
                break
        if total >= node_count:
            return branching
    return 64


def approximate_size_bytes(document: IndexedDocument) -> int:
    """Rough serialized size (for labelling results like the paper's
    2.1 MB / 4.3 MB / ... columns)."""
    # An element serializes to roughly "<tNN></tNN>" = 11 bytes.
    return sum(2 * (len(node.name or "") + 2) + 1
               for node in document.nodes_by_pre
               if isinstance(node, ElementNode))
