"""Benchmark harness utilities.

Provides the pieces every experiment shares: scaled workload sizes, the
QE1–QE6 query set (paper Figure 5), timing helpers and paper-style table
rendering.

Scaling: the paper ran on 2.1–11 MB documents under OCaml; a pure-Python
interpreter is 1–2 orders of magnitude slower per node, so the default
document sizes are ~10× smaller, keeping the five-point size *series*.
Set ``REPRO_SCALE`` (a float multiplier, default 1.0) to grow or shrink
every workload, e.g. ``REPRO_SCALE=10`` approximates the paper's sizes.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs import ExecMetrics

#: the paper's Figure 5 queries, verbatim modulo the ``$input`` variable.
QE_QUERIES: Dict[str, str] = {
    "QE1": "$input/desc::t01[child::t02[child::t03[child::t04]]]",
    "QE2": "$input/desc::t01/child::t02[1]/child::t03[child::t04]",
    "QE3": "$input/desc::t01[child::t02[child::t03]/child::t04[child::t03]]",
    "QE4": "$input/desc::t01[desc::t02[desc::t03[desc::t04]]]",
    "QE5": "$input/desc::t01/desc::t02[1]/desc::t03[desc::t04]",
    "QE6": "$input/desc::t01[desc::t02[desc::t03]/desc::t04[desc::t03]]",
}

#: the paper's Table 1 document sizes, as labels.
TABLE1_SIZE_LABELS = ["2.1 MB", "4.3 MB", "6.5 MB", "8.7 MB", "11 MB"]

#: node counts that stand in for those sizes at scale 1.0 (≈10× smaller
#: than the originals; see module docstring).
TABLE1_BASE_NODE_COUNTS = [4_000, 8_000, 12_000, 16_000, 20_000]

STRATEGIES = ["nljoin", "twigjoin", "scjoin"]
STRATEGY_LABELS = {"nljoin": "NL", "twigjoin": "TJ", "scjoin": "SC"}


def scale() -> float:
    """The global workload multiplier from ``REPRO_SCALE``."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def scaled(count: int, minimum: int = 50) -> int:
    return max(int(count * scale()), minimum)


def table1_node_counts() -> List[int]:
    return [scaled(count) for count in TABLE1_BASE_NODE_COUNTS]


@dataclass
class Measurement:
    """One timed cell of a result table, optionally with the execution
    counters observed during the timed runs (see :mod:`repro.obs`)."""

    label: str
    seconds: float
    result_count: int = -1
    metrics: Optional[ExecMetrics] = None


def time_call(func: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-N wall time of a zero-argument call."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def measure_strategy(engine, compiled, strategy: str,
                     repeats: int = 3) -> Measurement:
    """Best-of-N timing of one strategy on one compiled query, with the
    counters of a single (separately run, untimed) instrumented pass —
    so tables can show *why* an algorithm wins, not just that it does."""
    seconds = time_call(
        lambda: engine.execute(compiled, strategy=strategy), repeats)
    metrics = ExecMetrics()
    result = engine.execute(compiled, strategy=strategy, metrics=metrics)
    return Measurement(label=strategy, seconds=seconds,
                       result_count=len(result), metrics=metrics)


def render_measurements(title: str,
                        rows: "Dict[str, List[Measurement]]") -> str:
    """Render measurements as a table of seconds *and* work counters.

    ``rows`` maps a row label (e.g. a query name) to one measurement per
    strategy.  Each cell shows seconds with visited/scanned counts, so a
    benchmark table explains the winner by the work each algorithm did.
    """
    lines = [title]
    header = None
    for row_label, measurements in rows.items():
        if header is None:
            header = " " * 8 + "".join(m.label.rjust(26)
                                       for m in measurements)
            lines.append(header)
        parts = [row_label.ljust(8)]
        for measurement in measurements:
            cell = f"{measurement.seconds:.5f}s"
            metrics = measurement.metrics
            if metrics is not None:
                visited = sum(metrics.nodes_visited.values())
                scanned = sum(metrics.stream_scanned.values())
                cell += f" v={visited} s={scanned}"
            parts.append(cell.rjust(26))
        lines.append("".join(parts))
    return "\n".join(lines)


def render_table(title: str, row_labels: Sequence[str],
                 column_labels: Sequence[str],
                 cells: Dict[tuple, float],
                 highlight_best_per_group: int | None = None) -> str:
    """Render a paper-style table of seconds.

    ``cells`` maps (row_label, column_label) to seconds.  When
    ``highlight_best_per_group`` is set, rows are grouped in blocks of
    that many and the best (minimum) cell of each block/column is
    marked with ``*`` — mirroring the boldface of the paper's Table 1.
    """
    width = max([len(label) for label in column_labels] + [9]) + 2
    label_width = max(len(label) for label in row_labels) + 2
    lines = [title]
    header = " " * label_width + "".join(
        label.rjust(width) for label in column_labels)
    lines.append(header)
    best: Dict[tuple, str] = {}
    if highlight_best_per_group:
        for start in range(0, len(row_labels), highlight_best_per_group):
            group = row_labels[start:start + highlight_best_per_group]
            for column in column_labels:
                values = [(cells.get((row, column), float("inf")), row)
                          for row in group]
                best[(start, column)] = min(values)[1]
    for index, row in enumerate(row_labels):
        parts = [row.ljust(label_width)]
        for column in column_labels:
            value = cells.get((row, column))
            if value is None:
                parts.append("-".rjust(width))
                continue
            text = f"{value:.5f}"
            if highlight_best_per_group:
                group_start = (index // highlight_best_per_group
                               ) * highlight_best_per_group
                if best.get((group_start, column)) == row:
                    text += "*"
            parts.append(text.rjust(width))
        lines.append("".join(parts))
    return "\n".join(lines)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean via a log-sum, so long series of very small (or
    very large) timings cannot underflow/overflow a running product.

    Non-positive values have no geometric mean and are skipped (timings
    are positive; a zero would otherwise collapse the whole series).
    """
    positive = [value for value in values if value > 0.0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(value) for value in positive)
                    / len(positive))
