"""Benchmark harness: workloads, timing and paper-style tables."""

from .harness import (Measurement, QE_QUERIES, STRATEGIES, STRATEGY_LABELS,
                      TABLE1_BASE_NODE_COUNTS, TABLE1_SIZE_LABELS,
                      geometric_mean, measure_strategy, render_measurements,
                      render_table, scale, scaled, table1_node_counts,
                      time_call)
from .variants import BASE_QUERY, generate_variants
from .xmark_queries import XMARK_CATALOG, CatalogQuery, catalog_queries

__all__ = [
    "Measurement", "QE_QUERIES", "STRATEGIES", "STRATEGY_LABELS",
    "TABLE1_BASE_NODE_COUNTS", "TABLE1_SIZE_LABELS", "geometric_mean",
    "measure_strategy", "render_measurements",
    "render_table", "scale", "scaled", "table1_node_counts", "time_call",
    "BASE_QUERY", "generate_variants",
    "XMARK_CATALOG", "CatalogQuery", "catalog_queries",
]
