"""The twenty syntactic variants for the Section 5.1 experiment.

The paper: "We generated 20 variants of the above path expression by
replacing the / operator by equivalent ``for`` clauses and optionally
replacing the predicate by a ``where`` clause."  The base expression::

    $input/site/people/person[emailaddress]/profile/interest

This module enumerates exactly such variants: every subset of the four
``/`` operators can become a ``for`` clause, and independently the
``[emailaddress]`` predicate can become a ``where`` clause (only
meaningful when the person step is iterated) — 20 distinct shapes.
"""

from __future__ import annotations

from typing import List

BASE_QUERY = "$input/site/people/person[emailaddress]/profile/interest"


def generate_variants() -> List[str]:
    """Exactly 20 variants, the pure path expression first.

    16 variants keep the ``[emailaddress]`` predicate and turn every
    subset of the four inner ``/`` joins into ``for`` clauses; 4 more
    use a ``where`` clause instead of the predicate (which requires the
    person step to be iterated) combined with the 4 subsets of the
    remaining {site, people} joins.
    """
    variants: list[str] = []
    # mask bit i set → the path join after steps[i] becomes a for clause.
    for mask in range(16):
        variants.append(_variant(mask, where_form=False))
    for submask in range(4):
        mask = 0b0100 | submask  # person split; site/people optional.
        variants.append(_variant(mask, where_form=True))
    return variants


def _variant(mask: int, where_form: bool) -> str:
    """Build one variant: mask bits choose which joins become for-loops."""
    clauses: list[str] = []
    var_index = 0
    current = "$input"

    def fresh() -> str:
        nonlocal var_index
        var_index += 1
        return f"$x{var_index}"

    steps = ["site", "people", "person", "profile", "interest"]
    for position, step in enumerate(steps):
        predicate = ""
        if step == "person" and not where_form:
            predicate = "[emailaddress]"
        current = f"{current}/{step}{predicate}"
        is_last = position == len(steps) - 1
        if not is_last and mask & (1 << position):
            var = fresh()
            clauses.append(f"for {var} in {current}")
            if step == "person" and where_form:
                clauses.append(f"where {var}/emailaddress")
            current = var
    if not clauses:
        return current
    return " ".join(clauses) + f" return {current}"
