"""An XMark query catalog, adapted to the engine's fragment.

The original XMark benchmark queries (Schmidt et al., VLDB 2002) mostly
*construct* result elements; this engine implements the paper's
construction-free fragment, so each catalog entry keeps the original
query's access pattern — the part that exercises tree-pattern detection
and the join algorithms — and returns the selected nodes/values
instead of building new elements.  The original query number is kept in
the identifier.

Entries marked ``join=True`` contain value-based joins (XMark Q8–Q11
territory): they exercise plans where tree patterns are composed with
value selections, the situation of the paper's Q2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class CatalogQuery:
    """One adapted XMark query."""

    name: str
    original: str          # the XMark query it is adapted from
    query: str
    join: bool = False
    positional: bool = False


XMARK_CATALOG: Dict[str, CatalogQuery] = {
    entry.name: entry for entry in [
        CatalogQuery(
            "XQ1", "XMark Q1",
            # original: the name of the person with id person0
            '$input/site/people/person[@id = "person0"]/name',
            join=True),
        CatalogQuery(
            "XQ2", "XMark Q2",
            # original: the initial increases of all open auctions
            "$input/site/open_auctions/open_auction/bidder[1]/increase",
            positional=True),
        CatalogQuery(
            "XQ3", "XMark Q3",
            # original: first and current increases of auctions with ≥2 bids
            "$input/site/open_auctions/open_auction[bidder[2]]/current"),
        CatalogQuery(
            "XQ4", "XMark Q4",
            # original: order of bidders inside an auction (simplified to
            # auctions where some bidder exists with a personref)
            "$input//open_auction[bidder/personref]/itemref"),
        CatalogQuery(
            "XQ5", "XMark Q5",
            # original: how many sold items cost more than 40
            "count($input/site/closed_auctions/closed_auction"
            "[price > 40]/price)"),
        CatalogQuery(
            "XQ6", "XMark Q6",
            # original: how many items are listed on all continents
            "count($input/site/regions//item)"),
        CatalogQuery(
            "XQ7", "XMark Q7",
            # original: how many pieces of prose are in the database
            "count($input//description) + count($input//mail) "
            "+ count($input//annotation)"),
        CatalogQuery(
            "XQ8", "XMark Q8",
            # original: how many items did person0 buy
            'count($input//closed_auction[buyer/@person = "person0"])',
            join=True),
        CatalogQuery(
            "XQ9", "XMark Q9 (join)",
            # original: item names bought by each person — adapted to the
            # items referenced by closed auctions of European sellers
            "for $closed in $input//closed_auction "
            "for $item in $input/site/regions/europe/item "
            "where $closed/itemref/@item = $item/@id "
            "return $item/name",
            join=True),
        CatalogQuery(
            "XQ13", "XMark Q13",
            # original: names of items in Australia (our regions differ)
            "$input/site/regions/africa/item/name"),
        CatalogQuery(
            "XQ14", "XMark Q14",
            # original: items whose description contains 'gold'
            '$input//item[contains(description, "rare")]/name'),
        CatalogQuery(
            "XQ15", "XMark Q15",
            # original: a long path expression
            "$input/site/open_auctions/open_auction/annotation/"
            "description/text()"),
        CatalogQuery(
            "XQ17", "XMark Q17",
            # original: people without a homepage (we have no homepage:
            # people without an emailaddress)
            "for $p in $input/site/people/person "
            "where empty($p/emailaddress) return $p/name"),
        CatalogQuery(
            "XQ19", "XMark Q19",
            # original: item bidder info sorted (no order by: projection)
            "$input/site/regions/*/item[location]/name"),
        CatalogQuery(
            "XQ20", "XMark Q20",
            # original: income category counts
            "count($input//profile[@income > 50000]) + "
            "count($input//profile[@income <= 50000])"),
    ]
}


def catalog_queries(include_joins: bool = True) -> Dict[str, str]:
    """name → query text, optionally excluding the slow value joins."""
    return {name: entry.query
            for name, entry in XMARK_CATALOG.items()
            if include_joins or not entry.join}
