"""XQuery Core: AST, normalization and pretty-printing."""

from .cast import (CaseClause, CCall, CDDO, CEmpty, CExpr, CFor, CGenCmp,
                   CIf, CArith, CLet, CLit, CLogical, CSeq, CStep,
                   CTypeswitch, CVar, Var, count_nodes, ebv_call, free_vars,
                   fresh_var, smart_ddo, substitute, usage_count, walk)
from .normalize import NormalizationError, NormalizedQuery, normalize_query
from .pretty import alpha_canonical, pretty

__all__ = [
    "CaseClause", "CCall", "CDDO", "CEmpty", "CExpr", "CFor", "CGenCmp",
    "CIf", "CArith", "CLet", "CLit", "CLogical", "CSeq", "CStep",
    "CTypeswitch", "CVar", "Var", "count_nodes", "ebv_call", "free_vars",
    "fresh_var", "smart_ddo", "substitute", "usage_count", "walk",
    "NormalizationError", "NormalizedQuery", "normalize_query",
    "alpha_canonical", "pretty",
]
