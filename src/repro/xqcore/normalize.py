"""Normalization: surface XQuery → XQuery Core (paper Section 2).

Implements the W3C Formal Semantics normalization of the fragment, in
the exact shape the paper shows for Q1a (its Q1a-n):

* ``E1/E2`` exposes the implicit iteration::

      ddo(let $seq := ddo([E1])
          let $last := fn:count($seq)
          for $dot at $position in $seq
          return [E2])

* ``E1[P]`` binds the context position and dispatches on the predicate's
  type with a ``typeswitch``::

      let $seq := [E1]
      let $last := fn:count($seq)
      for $dot at $position in $seq
      where typeswitch ([P])
              case $v as numeric() return $position = $v
              default $v return fn:boolean($v)
      return $dot

* axis steps become ``ddo(axis::test)`` applied to the context variable;
* FLWOR, conditionals, quantifiers and operators normalize structurally.

Every generated binder is a fresh :class:`~repro.xqcore.cast.Var`, so the
output is capture-free by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..guard.errors import ReproError
from ..xquery import ast
from ..xmltree.axes import Axis
from ..xmltree.nodetest import AnyKindTest
from .cast import (CaseClause, CCall, CDDO, CEmpty, CExpr, CFor, CGenCmp,
                   CIf, CArith, CLet, CLit, CLogical, CSeq, CStep,
                   CTypeswitch, CVar, Var, ebv_call, fresh_var, smart_ddo)


class NormalizationError(ReproError):
    """Raised when an expression falls outside the supported fragment."""

    code = "REPRO-NORMALIZE"


@dataclass(frozen=True)
class NormEnv:
    """Static environment used during normalization."""

    bindings: Dict[str, Var]
    dot: Optional[Var]
    position: Optional[Var]
    last: Optional[Var]

    def bind(self, name: str, var: Var) -> "NormEnv":
        updated = dict(self.bindings)
        updated[name] = var
        return replace(self, bindings=updated)

    def with_focus(self, dot: Var, position: Var, last: Var) -> "NormEnv":
        return replace(self, dot=dot, position=position, last=last)


@dataclass
class NormalizedQuery:
    """The result of normalization."""

    core: CExpr
    #: surface name → core variable, for the engine to bind externals.
    global_vars: Dict[str, Var]
    #: the variable standing for the initial context item (absolute paths).
    context_var: Var


_UNPREFIXED_FUNCTIONS = {
    "count", "boolean", "not", "exists", "empty", "root", "data", "string",
    "sum", "avg", "min", "max", "name", "local-name", "number", "concat",
    "contains", "starts-with", "string-length", "zero-or-one",
    "exactly-one", "distinct-values", "true", "false", "position", "last",
    "reverse", "subsequence", "doc",
}


def normalize_query(expr: ast.Expr) -> NormalizedQuery:
    """Normalize a parsed query into the Core."""
    normalizer = _Normalizer()
    env = NormEnv(bindings={}, dot=normalizer.context_var,
                  position=None, last=None)
    core = normalizer.normalize(expr, env)
    return NormalizedQuery(core=core,
                           global_vars=normalizer.global_vars,
                           context_var=normalizer.context_var)


class _Normalizer:
    def __init__(self) -> None:
        self.global_vars: Dict[str, Var] = {}
        self.context_var = fresh_var("fs:dot", origin="focus")

    # -- dispatcher -------------------------------------------------------

    def normalize(self, expr: ast.Expr, env: NormEnv) -> CExpr:
        if isinstance(expr, ast.Literal):
            return CLit(expr.value)
        if isinstance(expr, ast.VarRef):
            return CVar(self._resolve(expr.name, env))
        if isinstance(expr, ast.ContextItem):
            return CVar(self._require_dot(env))
        if isinstance(expr, ast.RootExpr):
            return CCall("fn:root", [CVar(self._require_dot(env))])
        if isinstance(expr, ast.SequenceExpr):
            if not expr.items:
                return CEmpty()
            return CSeq([self.normalize(item, env) for item in expr.items])
        if isinstance(expr, ast.AxisStep):
            return self._normalize_axis_step(expr, env)
        if isinstance(expr, ast.FilterExpr):
            base = self.normalize(expr.primary, env)
            for predicate in expr.predicates:
                base = self._normalize_predicate(base, predicate, env)
            return base
        if isinstance(expr, ast.PathExpr):
            return self._normalize_path(expr, env)
        if isinstance(expr, ast.FLWORExpr):
            return self._normalize_flwor(expr, env)
        if isinstance(expr, ast.IfExpr):
            return CIf(ebv_call(self.normalize(expr.condition, env)),
                       self.normalize(expr.then_branch, env),
                       self.normalize(expr.else_branch, env))
        if isinstance(expr, ast.QuantifiedExpr):
            return self._normalize_quantified(expr, env)
        if isinstance(expr, ast.BinaryExpr):
            return self._normalize_binary(expr, env)
        if isinstance(expr, ast.UnaryExpr):
            operand = self.normalize(expr.operand, env)
            if expr.op == "-":
                return CArith("-", CLit(0), operand)
            return operand
        if isinstance(expr, ast.FunctionCall):
            return self._normalize_call(expr, env)
        raise NormalizationError(f"unsupported expression {expr!r}")

    # -- helpers ----------------------------------------------------------

    def _resolve(self, name: str, env: NormEnv) -> Var:
        if name in env.bindings:
            return env.bindings[name]
        if name not in self.global_vars:
            self.global_vars[name] = fresh_var(name, origin="external")
        return self.global_vars[name]

    def _require_dot(self, env: NormEnv) -> Var:
        if env.dot is None:
            raise NormalizationError("no context item in scope")
        return env.dot

    # -- paths ------------------------------------------------------------

    def _normalize_axis_step(self, expr: ast.AxisStep, env: NormEnv) -> CExpr:
        dot = self._require_dot(env)
        base: CExpr = smart_ddo(CStep(expr.axis, expr.test, CVar(dot)))
        for predicate in expr.predicates:
            base = self._normalize_predicate(base, predicate, env)
        return base

    def _normalize_path(self, expr: ast.PathExpr, env: NormEnv) -> CExpr:
        source = self.normalize(expr.left, env)
        seq = fresh_var("seq", origin="focus")
        last = fresh_var("last", origin="focus")
        dot = fresh_var("dot", origin="focus")
        position = fresh_var("position", origin="focus")
        inner_env = env.with_focus(dot, position, last)
        body = self.normalize(expr.right, inner_env)
        return smart_ddo(
            CLet(seq, smart_ddo(source),
                 CLet(last, CCall("fn:count", [CVar(seq)]),
                      CFor(dot, position, CVar(seq), None, body))))

    def _normalize_predicate(self, base: CExpr, predicate: ast.Expr,
                             env: NormEnv) -> CExpr:
        seq = fresh_var("seq", origin="focus")
        last = fresh_var("last", origin="focus")
        dot = fresh_var("dot", origin="focus")
        position = fresh_var("position", origin="focus")
        inner_env = env.with_focus(dot, position, last)
        predicate_core = self.normalize(predicate, inner_env)
        case_var = fresh_var("v", origin="focus")
        default_var = fresh_var("v", origin="focus")
        where = CTypeswitch(
            predicate_core,
            cases=[CaseClause("numeric", case_var,
                              CGenCmp("=", CVar(position), CVar(case_var)))],
            default_var=default_var,
            default_body=CCall("fn:boolean", [CVar(default_var)]))
        return CLet(seq, base,
                    CLet(last, CCall("fn:count", [CVar(seq)]),
                         CFor(dot, position, CVar(seq), where, CVar(dot))))

    # -- FLWOR ------------------------------------------------------------

    def _normalize_flwor(self, expr: ast.FLWORExpr, env: NormEnv) -> CExpr:
        return self._normalize_clauses(expr.clauses, expr.return_expr, env)

    def _normalize_clauses(self, clauses: list, return_expr: ast.Expr,
                           env: NormEnv) -> CExpr:
        if not clauses:
            return self.normalize(return_expr, env)
        head, rest = clauses[0], clauses[1:]
        if isinstance(head, ast.ForClause):
            source = self.normalize(head.source, env)
            var = fresh_var(head.var)
            inner_env = env.bind(head.var, var)
            position_var: Optional[Var] = None
            if head.position_var is not None:
                position_var = fresh_var(head.position_var)
                inner_env = inner_env.bind(head.position_var, position_var)
            where, rest = self._take_where(rest, inner_env)
            body = self._normalize_clauses(rest, return_expr, inner_env)
            return CFor(var, position_var, source, where, body)
        if isinstance(head, ast.LetClause):
            value = self.normalize(head.value, env)
            var = fresh_var(head.var)
            inner_env = env.bind(head.var, var)
            body = self._normalize_clauses(rest, return_expr, inner_env)
            return CLet(var, value, body)
        if isinstance(head, ast.WhereClause):
            condition = ebv_call(self.normalize(head.condition, env))
            body = self._normalize_clauses(rest, return_expr, env)
            return CIf(condition, body, CEmpty())
        raise NormalizationError(f"unsupported clause {head!r}")

    def _take_where(self, clauses: list, env: NormEnv):
        """Attach a ``where`` directly following a ``for`` to that loop.

        This matches the paper's core, which carries ``where`` on the
        ``for`` construct.  A ``where`` elsewhere becomes a conditional.
        """
        if clauses and isinstance(clauses[0], ast.WhereClause):
            condition = ebv_call(self.normalize(clauses[0].condition, env))
            return condition, clauses[1:]
        return None, clauses

    # -- operators and calls ------------------------------------------------

    def _normalize_quantified(self, expr: ast.QuantifiedExpr,
                              env: NormEnv) -> CExpr:
        var = fresh_var(expr.var)
        inner_env = env.bind(expr.var, var)
        source = self.normalize(expr.source, env)
        condition = ebv_call(self.normalize(expr.condition, inner_env))
        if expr.quantifier == "some":
            loop = CFor(var, None, source, condition, CLit(True))
            return CCall("fn:exists", [loop])
        negated = CCall("fn:not", [condition])
        loop = CFor(var, None, source, negated, CLit(True))
        return CCall("fn:empty", [loop])

    def _normalize_binary(self, expr: ast.BinaryExpr, env: NormEnv) -> CExpr:
        left = self.normalize(expr.left, env)
        right = self.normalize(expr.right, env)
        if expr.op in ("and", "or"):
            return CLogical(expr.op, ebv_call(left), ebv_call(right))
        if expr.op in ("=", "!=", "<", "<=", ">", ">="):
            return CGenCmp(expr.op, left, right)
        if expr.op in ("+", "-", "*", "div", "mod"):
            return CArith(expr.op, left, right)
        if expr.op == "to":
            return CCall("op:to", [left, right])
        if expr.op == "|":
            return smart_ddo(CCall("op:union", [left, right]))
        raise NormalizationError(f"unsupported operator {expr.op!r}")

    def _normalize_call(self, expr: ast.FunctionCall, env: NormEnv) -> CExpr:
        name = expr.name
        if ":" not in name:
            if name not in _UNPREFIXED_FUNCTIONS:
                raise NormalizationError(f"unknown function {name!r}")
            name = f"fn:{name}"
        if name == "fn:position":
            if env.position is None:
                raise NormalizationError("fn:position() used without focus")
            return CVar(env.position)
        if name == "fn:last":
            if env.last is None:
                raise NormalizationError("fn:last() used without focus")
            return CVar(env.last)
        args = [self.normalize(arg, env) for arg in expr.args]
        return CCall(name, args)
