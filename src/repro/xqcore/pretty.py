"""Pretty-printing of Core expressions in the paper's concrete syntax.

The printer alpha-renames: each distinct variable gets its display name,
suffixed with a counter when several distinct variables share one name
(normalization introduces many ``$dot``/``$seq``).  Because renaming is
assigned in a canonical traversal order, the printed form doubles as an
alpha-equivalence witness: two Core expressions print identically if and
only if they are equal up to variable renaming.
"""

from __future__ import annotations

from typing import Dict

from .cast import (CaseClause, CCall, CDDO, CEmpty, CExpr, CFor, CGenCmp,
                   CIf, CArith, CLet, CLit, CLogical, CSeq, CStep,
                   CTypeswitch, CVar, Var, walk)


def pretty(expr: CExpr, indent: int = 0, unique_names: bool = True) -> str:
    """Render a core expression.

    With ``unique_names`` (the default), distinct variables sharing a
    display name get numeric suffixes; without it, the raw display names
    are used (closest to the paper's figures).
    """
    names = _assign_names(expr, unique_names)
    return _Printer(names).render(expr, indent)


def alpha_canonical(expr: CExpr) -> str:
    """A canonical string equal for alpha-equivalent core expressions."""
    names: Dict[Var, str] = {}
    for node in walk(expr):
        if isinstance(node, CVar) and node.var not in names:
            names[node.var] = f"v{len(names)}"
        for var in node.bound_vars():
            if var not in names:
                names[var] = f"v{len(names)}"
    return _Printer(names, bare_dot_steps=False).render(expr, 0)


def _assign_names(expr: CExpr, unique_names: bool) -> Dict[Var, str]:
    seen: Dict[str, int] = {}
    names: Dict[Var, str] = {}

    def assign(var: Var) -> None:
        if var in names:
            return
        count = seen.get(var.name, 0)
        seen[var.name] = count + 1
        if count == 0 or not unique_names:
            names[var] = var.name
        else:
            names[var] = f"{var.name}{count + 1}"

    for node in walk(expr):
        for var in node.bound_vars():
            assign(var)
        if isinstance(node, CVar):
            assign(node.var)
    return names


class _Printer:
    def __init__(self, names: Dict[Var, str], bare_dot_steps: bool = True) -> None:
        self.names = names
        self.bare_dot_steps = bare_dot_steps

    def var(self, var: Var) -> str:
        return "$" + self.names.get(var, f"{var.name}?{var.uid}")

    def inline(self, expr: CExpr) -> str:
        """A compact one-line rendering for binding values and sources."""
        return " ".join(self.render(expr, 0).split())

    def render(self, expr: CExpr, depth: int) -> str:
        pad = "  " * depth
        if isinstance(expr, CLit):
            if isinstance(expr.value, str):
                return pad + '"' + expr.value.replace('"', '""') + '"'
            if isinstance(expr.value, bool):
                return pad + ("fn:true()" if expr.value else "fn:false()")
            return pad + repr(expr.value)
        if isinstance(expr, CEmpty):
            return pad + "()"
        if isinstance(expr, CVar):
            return pad + self.var(expr.var)
        if isinstance(expr, CSeq):
            rendered = ", ".join(self.render(item, 0) for item in expr.items)
            return f"{pad}({rendered})"
        if isinstance(expr, CDDO):
            compact = self.inline(expr.arg)
            if len(compact) <= 60:
                return f"{pad}ddo({compact})"
            inner = self.render(expr.arg, depth + 1)
            return f"{pad}ddo(\n{inner})"
        if isinstance(expr, CStep):
            input_text = self.render(expr.input, 0)
            step_text = f"{expr.axis.value}::{expr.test.to_string()}"
            if (self.bare_dot_steps and isinstance(expr.input, CVar)
                    and expr.input.var.name == "dot"):
                return pad + step_text
            return f"{pad}{input_text}/{step_text}"
        if isinstance(expr, CLet):
            value = self.inline(expr.value)
            body = self.render(expr.body, depth)
            return f"{pad}let {self.var(expr.var)} := {value}\n{body}"
        if isinstance(expr, CFor):
            at_clause = (f" at {self.var(expr.position_var)}"
                         if expr.position_var is not None else "")
            source = self.inline(expr.source)
            lines = [f"{pad}for {self.var(expr.var)}{at_clause} in {source}"]
            if expr.where is not None:
                lines.append(f"{pad}where " + self.inline(expr.where))
            lines.append(f"{pad}return")
            lines.append(self.render(expr.body, depth + 1))
            return "\n".join(lines)
        if isinstance(expr, CIf):
            condition = self.render(expr.condition, 0).strip()
            then_branch = self.render(expr.then_branch, depth + 1)
            else_branch = self.render(expr.else_branch, depth + 1)
            return (f"{pad}if ({condition})\n{pad}then\n{then_branch}\n"
                    f"{pad}else\n{else_branch}")
        if isinstance(expr, CCall):
            name = "ddo" if expr.name == "fs:distinct-doc-order" else expr.name
            args = ", ".join(self.render(arg, 0).strip() for arg in expr.args)
            return f"{pad}{name}({args})"
        if isinstance(expr, CGenCmp):
            left = self.render(expr.left, 0).strip()
            right = self.render(expr.right, 0).strip()
            return f"{pad}{left} {expr.op} {right}"
        if isinstance(expr, CArith):
            left = self.render(expr.left, 0).strip()
            right = self.render(expr.right, 0).strip()
            return f"{pad}({left} {expr.op} {right})"
        if isinstance(expr, CLogical):
            left = self.render(expr.left, 0).strip()
            right = self.render(expr.right, 0).strip()
            return f"{pad}({left} {expr.op} {right})"
        if isinstance(expr, CTypeswitch):
            input_text = self.inline(expr.input)
            lines = [f"{pad}typeswitch ({input_text})"]
            for case in expr.cases:
                body = self.render(case.body, 0).strip()
                lines.append(f"{pad}  case {self.var(case.var)} as "
                             f"{case.seqtype}() return {body}")
            default = self.render(expr.default_body, 0).strip()
            lines.append(f"{pad}  default {self.var(expr.default_var)} "
                         f"return {default}")
            return "\n".join(lines)
        raise TypeError(f"cannot print {type(expr).__name__}")
