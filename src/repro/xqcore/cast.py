"""XQuery Core AST.

The Core is the target of normalization (paper Section 2): a small
explicitly-scoped calculus with ``let``, ``for`` (with optional
positional variable and ``where`` clause, as in the paper's examples),
``typeswitch``, conditionals, navigation steps, calls to built-in
functions, and the special function ``fs:distinct-doc-order`` (``ddo``).

Variables are *identity-based*: every binder introduces a fresh
:class:`Var` object, so rewrites never capture.  Display names (``dot``,
``seq``, ``position``, ``last``, …) are kept for pretty-printing in the
paper's concrete syntax.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..xmltree.axes import Axis
from ..xmltree.nodetest import NodeTest

_var_counter = itertools.count(1)


class Var:
    """A core variable with a stable identity.

    ``origin`` records provenance: ``"user"`` for variables written in
    the query, ``"external"`` for free query variables bound by the
    engine (always nodes in this engine), and ``"focus"`` for the
    normalization-introduced context variables (``$dot``, ``$seq``,
    ``$position``, ``$last``), whose types are known by construction.
    """

    __slots__ = ("name", "uid", "origin")

    def __init__(self, name: str, uid: Optional[int] = None,
                 origin: str = "user") -> None:
        self.name = name
        self.uid = uid if uid is not None else next(_var_counter)
        self.origin = origin

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"${self.name}_{self.uid}"

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.uid == self.uid


def fresh_var(name: str, origin: str = "user") -> Var:
    return Var(name, origin=origin)


class CExpr:
    """Base class of core expressions."""

    def children(self) -> Sequence["CExpr"]:
        raise NotImplementedError

    def replace_children(self, new_children: Sequence["CExpr"]) -> "CExpr":
        """Rebuild this node with new children (same shapes/arity)."""
        raise NotImplementedError

    def bound_vars(self) -> Sequence[Var]:
        """Variables bound *by this node* (scoping over some children)."""
        return ()


@dataclass
class CLit(CExpr):
    """A literal constant (string, int, float or bool)."""

    value: Union[str, int, float, bool]

    def children(self) -> Sequence[CExpr]:
        return ()

    def replace_children(self, new_children: Sequence[CExpr]) -> "CLit":
        return CLit(self.value)


@dataclass
class CEmpty(CExpr):
    """The empty sequence ``()``."""

    def children(self) -> Sequence[CExpr]:
        return ()

    def replace_children(self, new_children: Sequence[CExpr]) -> "CEmpty":
        return CEmpty()


@dataclass
class CVar(CExpr):
    """A variable reference."""

    var: Var

    def children(self) -> Sequence[CExpr]:
        return ()

    def replace_children(self, new_children: Sequence[CExpr]) -> "CVar":
        return CVar(self.var)


@dataclass
class CSeq(CExpr):
    """Sequence construction ``E1, E2, ...``."""

    items: List[CExpr]

    def children(self) -> Sequence[CExpr]:
        return self.items

    def replace_children(self, new_children: Sequence[CExpr]) -> "CSeq":
        return CSeq(list(new_children))


@dataclass
class CLet(CExpr):
    """``let $var := value return body``."""

    var: Var
    value: CExpr
    body: CExpr

    def children(self) -> Sequence[CExpr]:
        return (self.value, self.body)

    def replace_children(self, new_children: Sequence[CExpr]) -> "CLet":
        value, body = new_children
        return CLet(self.var, value, body)

    def bound_vars(self) -> Sequence[Var]:
        return (self.var,)


@dataclass
class CFor(CExpr):
    """``for $var (at $pos)? in source (where cond)? return body``.

    The optional ``where`` clause is part of the node, exactly as in the
    paper's core examples (Q1a-n line 11), because the loop-split and
    tree-pattern rewrites treat the filtered loop as one unit.
    """

    var: Var
    position_var: Optional[Var]
    source: CExpr
    where: Optional[CExpr]
    body: CExpr

    def children(self) -> Sequence[CExpr]:
        parts: list[CExpr] = [self.source]
        if self.where is not None:
            parts.append(self.where)
        parts.append(self.body)
        return parts

    def replace_children(self, new_children: Sequence[CExpr]) -> "CFor":
        if self.where is not None:
            source, where, body = new_children
            return CFor(self.var, self.position_var, source, where, body)
        source, body = new_children
        return CFor(self.var, self.position_var, source, None, body)

    def bound_vars(self) -> Sequence[Var]:
        if self.position_var is not None:
            return (self.var, self.position_var)
        return (self.var,)


@dataclass
class CIf(CExpr):
    """``if (cond) then t else e`` — cond uses effective boolean value."""

    condition: CExpr
    then_branch: CExpr
    else_branch: CExpr

    def children(self) -> Sequence[CExpr]:
        return (self.condition, self.then_branch, self.else_branch)

    def replace_children(self, new_children: Sequence[CExpr]) -> "CIf":
        condition, then_branch, else_branch = new_children
        return CIf(condition, then_branch, else_branch)


@dataclass
class CStep(CExpr):
    """A navigation step ``input/axis::test`` from every node of ``input``.

    The dynamic semantics is the XPath step applied to each item of the
    input sequence in turn, concatenating results in input order — the
    navigational primitive that compiles to the ``TreeJoin`` operator.
    With a *single* context node the result is in document order and
    duplicate-free.
    """

    axis: Axis
    test: NodeTest
    input: CExpr

    def children(self) -> Sequence[CExpr]:
        return (self.input,)

    def replace_children(self, new_children: Sequence[CExpr]) -> "CStep":
        (input_expr,) = new_children
        return CStep(self.axis, self.test, input_expr)


@dataclass
class CDDO(CExpr):
    """``fs:distinct-doc-order(arg)`` — sort by document order + dedup."""

    arg: CExpr

    def children(self) -> Sequence[CExpr]:
        return (self.arg,)

    def replace_children(self, new_children: Sequence[CExpr]) -> "CDDO":
        (arg,) = new_children
        return CDDO(arg)


@dataclass
class CCall(CExpr):
    """A call to a built-in function (``fn:count``, ``fn:boolean``, …)."""

    name: str
    args: List[CExpr]

    def children(self) -> Sequence[CExpr]:
        return self.args

    def replace_children(self, new_children: Sequence[CExpr]) -> "CCall":
        return CCall(self.name, list(new_children))


@dataclass
class CGenCmp(CExpr):
    """General comparison with existential semantics over atomized values."""

    op: str  # "=" "!=" "<" "<=" ">" ">="
    left: CExpr
    right: CExpr

    def children(self) -> Sequence[CExpr]:
        return (self.left, self.right)

    def replace_children(self, new_children: Sequence[CExpr]) -> "CGenCmp":
        left, right = new_children
        return CGenCmp(self.op, left, right)


@dataclass
class CArith(CExpr):
    """Arithmetic on atomized singletons (empty-propagating)."""

    op: str  # "+" "-" "*" "div" "mod"
    left: CExpr
    right: CExpr

    def children(self) -> Sequence[CExpr]:
        return (self.left, self.right)

    def replace_children(self, new_children: Sequence[CExpr]) -> "CArith":
        left, right = new_children
        return CArith(self.op, left, right)


@dataclass
class CLogical(CExpr):
    """``and`` / ``or`` over effective boolean values."""

    op: str  # "and" | "or"
    left: CExpr
    right: CExpr

    def children(self) -> Sequence[CExpr]:
        return (self.left, self.right)

    def replace_children(self, new_children: Sequence[CExpr]) -> "CLogical":
        left, right = new_children
        return CLogical(self.op, left, right)


@dataclass
class CaseClause:
    """One ``case $var as seqtype return body`` clause.

    ``seqtype`` is a coarse sequence type from the small type system in
    :mod:`repro.typing` — the paper only needs ``numeric()``.
    """

    seqtype: str
    var: Var
    body: CExpr


@dataclass
class CTypeswitch(CExpr):
    """``typeswitch (input) case ... default $var return body``."""

    input: CExpr
    cases: List[CaseClause]
    default_var: Var
    default_body: CExpr

    def children(self) -> Sequence[CExpr]:
        parts: list[CExpr] = [self.input]
        parts.extend(case.body for case in self.cases)
        parts.append(self.default_body)
        return parts

    def replace_children(self, new_children: Sequence[CExpr]) -> "CTypeswitch":
        input_expr = new_children[0]
        case_bodies = new_children[1:-1]
        default_body = new_children[-1]
        cases = [CaseClause(case.seqtype, case.var, body)
                 for case, body in zip(self.cases, case_bodies)]
        return CTypeswitch(input_expr, cases, self.default_var, default_body)

    def bound_vars(self) -> Sequence[Var]:
        return tuple(case.var for case in self.cases) + (self.default_var,)


# -- traversal utilities -------------------------------------------------------


def walk(expr: CExpr) -> Iterable[CExpr]:
    """All sub-expressions, pre-order, including ``expr`` itself."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def free_vars(expr: CExpr) -> set[Var]:
    """The free variables of ``expr``.

    Because binders are identity-based, shadowing cannot occur and the
    computation is a simple set difference over the whole tree.
    """
    used: set[Var] = set()
    bound: set[Var] = set()
    for node in walk(expr):
        if isinstance(node, CVar):
            used.add(node.var)
        bound.update(node.bound_vars())
        if isinstance(node, CTypeswitch):
            bound.update(case.var for case in node.cases)
    return used - bound


def usage_count(expr: CExpr, var: Var) -> int:
    """How many times ``var`` is referenced in ``expr``.

    This is the auxiliary judgment of the paper's FLWOR rewritings.
    Occurrences inside loops count as *many* (2) because inlining a
    non-trivial expression into a loop body would duplicate work and,
    for ``at``-counted loops, change positions — matching the usage
    analysis implemented in Galax.
    """

    def count(node: CExpr, multiplier: int) -> int:
        if isinstance(node, CVar):
            return multiplier if node.var == var else 0
        total = 0
        if isinstance(node, CFor):
            total += count(node.source, multiplier)
            inner = 2  # conservatively "many" inside the loop
            if node.where is not None:
                total += count(node.where, inner)
            total += count(node.body, inner)
            return total
        for child in node.children():
            total += count(child, multiplier)
        return total

    return count(expr, 1)


def substitute(expr: CExpr, var: Var, replacement: CExpr) -> CExpr:
    """Capture-free substitution ``[expr | var => replacement]``.

    Binder identities make capture impossible; the replacement is shared
    (not copied), which is safe because rewrites only inline single-use
    bindings or bindings of binder-free expressions.
    """
    if isinstance(expr, CVar):
        return replacement if expr.var == var else expr
    children = expr.children()
    if not children:
        return expr
    new_children = [substitute(child, var, replacement) for child in children]
    if all(new is old for new, old in zip(new_children, children)):
        return expr
    return expr.replace_children(new_children)


def count_nodes(expr: CExpr) -> int:
    """Size of the core expression (used to check rewrite termination)."""
    return sum(1 for _ in walk(expr))


def smart_ddo(expr: CExpr) -> CExpr:
    """Build ``ddo(expr)``, collapsing ``ddo(ddo(E))`` to ``ddo(E)``."""
    if isinstance(expr, CDDO):
        return expr
    return CDDO(expr)


def ebv_call(expr: CExpr) -> CExpr:
    """Wrap in ``fn:boolean`` unless already boolean-producing."""
    if isinstance(expr, (CGenCmp, CLogical)):
        return expr
    if isinstance(expr, CCall) and expr.name in (
            "fn:boolean", "fn:exists", "fn:empty", "fn:not", "fn:true",
            "fn:false"):
        return expr
    if isinstance(expr, CLit) and isinstance(expr.value, bool):
        return expr
    return CCall("fn:boolean", [expr])
