"""repro — reproduction of "Put a Tree Pattern in Your Algebra" (ICDE 2007).

An XQuery-fragment compiler and evaluator whose optimizer detects tree
patterns algebraically (the paper's ``TupleTreePattern`` operator and
rewriting rules) and executes them with pluggable physical algorithms:
nested-loop navigation (NLJoin), holistic twig joins (TwigJoin) and
staircase joins (SCJoin).

Quickstart::

    from repro import Engine

    engine = Engine.from_xml("<doc><a><b/></a></doc>")
    print(engine.run("$input//a[b]"))
"""

from .engine import CompiledQuery, Engine, execute_query, xpath
from .obs import (CacheStats, ExecMetrics, PipelineMetrics, PlanCache,
                  TracedRun)
from .pattern import TreePattern, parse_pattern
from .physical import NLJoin, StaircaseJoin, Strategy, TwigJoin
from .xmltree import (ColumnarDocument, IndexedDocument, PathSummary,
                      StorageError, parse_xml, serialize)

__version__ = "1.1.0"

__all__ = [
    "CompiledQuery", "Engine", "execute_query", "xpath",
    "CacheStats", "ExecMetrics", "PipelineMetrics", "PlanCache",
    "TracedRun",
    "TreePattern", "parse_pattern",
    "NLJoin", "StaircaseJoin", "Strategy", "TwigJoin",
    "ColumnarDocument", "IndexedDocument", "PathSummary", "StorageError",
    "parse_xml", "serialize",
    "__version__",
]
