"""Service-level metrics: QPS, queue depth, sheds, coalescing, latency.

:class:`ServiceMetrics` aggregates what :class:`repro.serve.QueryService`
does *between* queries — admission, shedding, coalescing, queueing — on
top of the per-query counters :mod:`repro.obs` already provides.  All
updates happen under one internal lock (they are a handful of integer
adds, far off the query hot path), and :meth:`ServiceMetrics.stats`
returns an immutable :class:`ServiceStats` snapshot so callers never
observe torn state.

Latency is recorded in a :class:`LatencyHistogram` — fixed
logarithmic buckets from 1 µs to ~100 s, constant memory regardless of
request count — from which p50/p95/p99 are interpolated.  Percentiles
from log buckets are exact to within one bucket width (~26%), the usual
production trade-off (HdrHistogram-style) and plenty to rank strategies
or spot a queueing collapse.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["LatencyHistogram", "ServiceMetrics", "ServiceStats"]

#: histogram bucket geometry: the first upper bound (seconds) and the
#: multiplicative step between bounds.  72 buckets of ×1.26 span
#: 1 µs … ~100 s; everything slower lands in the overflow bucket.
_FIRST_BOUND = 1e-6
_GROWTH = 1.26
_BUCKETS = 72


def _bounds() -> List[float]:
    bounds, bound = [], _FIRST_BOUND
    for _ in range(_BUCKETS):
        bounds.append(bound)
        bound *= _GROWTH
    return bounds


class LatencyHistogram:
    """Fixed-size logarithmic latency histogram (seconds).

    Not thread-safe by itself: :class:`ServiceMetrics` serializes access
    under its own lock.
    """

    BOUNDS: Tuple[float, ...] = tuple(_bounds())

    def __init__(self) -> None:
        self.counts = [0] * (len(self.BOUNDS) + 1)  # +1: overflow
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, seconds: float) -> None:
        seconds = max(seconds, 0.0)
        index = self._index(seconds)
        self.counts[index] += 1
        self.count += 1
        self.total += seconds
        self.min = seconds if self.min is None else min(self.min, seconds)
        self.max = seconds if self.max is None else max(self.max, seconds)

    def _index(self, seconds: float) -> int:
        # Binary search beats a log() call in pure Python for 72 buckets.
        low, high = 0, len(self.BOUNDS)
        while low < high:
            mid = (low + high) // 2
            if seconds <= self.BOUNDS[mid]:
                high = mid
            else:
                low = mid + 1
        return low

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The latency at quantile ``q`` (0 < q <= 1), interpolated to
        the upper bound of the bucket the quantile falls in; 0.0 when
        empty."""
        if not self.count:
            return 0.0
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        rank = q * self.count
        observed_max = self.max if self.max is not None else 0.0
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(self.BOUNDS):
                    # The bucket's upper bound, clamped to the observed
                    # maximum so quantiles never exceed a real latency.
                    return min(self.BOUNDS[index], observed_max)
                return observed_max
        return observed_max

    def snapshot(self) -> "LatencyHistogram":
        copy = LatencyHistogram()
        copy.counts = list(self.counts)
        copy.count = self.count
        copy.total = self.total
        copy.min = self.min
        copy.max = self.max
        return copy


@dataclass(frozen=True)
class ServiceStats:
    """An immutable snapshot of one :class:`ServiceMetrics`."""

    submitted: int
    accepted: int
    completed: int
    failed: int
    shed: int
    coalesced: int
    deadline_expired: int
    retried: int
    breaker_rejected: int
    degraded: int
    queue_depth: int
    in_flight: int
    uptime_seconds: float
    qps: float
    latency_count: int
    latency_mean: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_max: float
    queue_wait_p95: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "submitted": self.submitted, "accepted": self.accepted,
            "completed": self.completed, "failed": self.failed,
            "shed": self.shed, "coalesced": self.coalesced,
            "deadline_expired": self.deadline_expired,
            "retried": self.retried,
            "breaker_rejected": self.breaker_rejected,
            "degraded": self.degraded,
            "queue_depth": self.queue_depth, "in_flight": self.in_flight,
            "uptime_seconds": self.uptime_seconds, "qps": self.qps,
            "latency": {
                "count": self.latency_count, "mean": self.latency_mean,
                "p50": self.latency_p50, "p95": self.latency_p95,
                "p99": self.latency_p99, "max": self.latency_max,
            },
            "queue_wait_p95": self.queue_wait_p95,
        }

    def report(self) -> str:
        lines = [
            f"requests   : submitted={self.submitted} "
            f"accepted={self.accepted} completed={self.completed} "
            f"failed={self.failed}",
            f"backpressure: shed={self.shed} coalesced={self.coalesced} "
            f"deadline_expired={self.deadline_expired}",
            f"resilience : retried={self.retried} "
            f"breaker_rejected={self.breaker_rejected} "
            f"degraded={self.degraded}",
            f"queue      : depth={self.queue_depth} "
            f"in_flight={self.in_flight} "
            f"wait_p95={self.queue_wait_p95 * 1e3:.3f} ms",
            f"throughput : {self.qps:.1f} qps over "
            f"{self.uptime_seconds:.2f} s",
            f"latency    : p50={self.latency_p50 * 1e3:.3f} ms "
            f"p95={self.latency_p95 * 1e3:.3f} ms "
            f"p99={self.latency_p99 * 1e3:.3f} ms "
            f"max={self.latency_max * 1e3:.3f} ms "
            f"(n={self.latency_count})",
        ]
        return "\n".join(lines)


class ServiceMetrics:
    """Thread-safe aggregate counters for a :class:`QueryService`.

    Counter semantics: every request is *submitted*; it is then either
    *shed* (queue full), *coalesced* (attached to an identical in-flight
    request) or *accepted* (enqueued for a worker).  Accepted requests
    end *completed* or *failed*; ``deadline_expired`` counts the subset
    of failures whose deadline lapsed while still queued.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.started = clock()
        self._lock = threading.Lock()
        self.submitted = 0
        self.accepted = 0
        self.completed = 0
        self.failed = 0
        self.shed = 0
        self.coalesced = 0
        self.deadline_expired = 0
        self.retried = 0
        self.breaker_rejected = 0
        self.degraded = 0
        self.latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()

    # -- recording (called by the service) ---------------------------------

    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_accepted(self) -> None:
        with self._lock:
            self.accepted += 1

    def record_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def record_coalesced(self) -> None:
        with self._lock:
            self.coalesced += 1

    def record_retried(self) -> None:
        """One retry attempt (a request retried twice counts 2)."""
        with self._lock:
            self.retried += 1

    def record_breaker_rejected(self) -> None:
        """One request rejected at admission by an open circuit."""
        with self._lock:
            self.breaker_rejected += 1

    def record_degraded(self) -> None:
        """One provably-empty answer served while circuit-open."""
        with self._lock:
            self.degraded += 1

    def record_done(self, latency_seconds: float, queue_seconds: float,
                    failed: bool, deadline_expired: bool = False) -> None:
        with self._lock:
            if failed:
                self.failed += 1
                if deadline_expired:
                    self.deadline_expired += 1
            else:
                self.completed += 1
            self.latency.record(latency_seconds)
            self.queue_wait.record(queue_seconds)

    # -- views --------------------------------------------------------------

    def snapshot_histograms(self) -> Tuple[LatencyHistogram,
                                           LatencyHistogram]:
        """Consistent copies of ``(latency, queue_wait)`` — the raw
        bucket counts the Prometheus exporter needs (``stats()`` only
        exposes interpolated quantiles)."""
        with self._lock:
            return self.latency.snapshot(), self.queue_wait.snapshot()

    def stats(self, queue_depth: int = 0,
              in_flight: int = 0) -> ServiceStats:
        """An immutable snapshot (the service passes the live queue
        depth and in-flight count; standalone callers may omit them)."""
        with self._lock:
            uptime = max(self._clock() - self.started, 1e-9)
            latency = self.latency
            return ServiceStats(
                submitted=self.submitted, accepted=self.accepted,
                completed=self.completed, failed=self.failed,
                shed=self.shed, coalesced=self.coalesced,
                deadline_expired=self.deadline_expired,
                retried=self.retried,
                breaker_rejected=self.breaker_rejected,
                degraded=self.degraded,
                queue_depth=queue_depth, in_flight=in_flight,
                uptime_seconds=uptime,
                qps=self.completed / uptime,
                latency_count=latency.count,
                latency_mean=latency.mean,
                latency_p50=latency.quantile(0.50),
                latency_p95=latency.quantile(0.95),
                latency_p99=latency.quantile(0.99),
                latency_max=latency.max or 0.0,
                queue_wait_p95=self.queue_wait.quantile(0.95))
