"""Multi-process sharded serving: scatter-gather over columnar shards.

:class:`ClusterService` is the process-parallel sibling of
:class:`~repro.serve.QueryService`: instead of a thread pool sharing
one in-process engine (GIL-bound), it drives a pool of **worker
processes** (:mod:`repro.serve.worker`), each mmap-opening the same
saved columnar shards read-only — the page cache is shared, so N
workers cost one copy of the columns — and runs queries either

* **scattered**: a shardable query is dispatched once per shard of its
  document, evaluated shard-locally (the shards are subtree-closed, see
  :mod:`repro.xmltree.shard`) and the partial results **k-way merged by
  global pre number** — byte-identical to a single-process evaluation;
* **whole-document**: everything else (positional predicates, FLWOR,
  aggregates, patterns whose predicates could need cross-shard
  witnesses) runs as one task on one worker against the full index.
  Requests still parallelize across the pool.

The **scatter planner** (:func:`scatter_plan`) is deliberately
conservative, in the style of
:func:`~repro.serve.resilience.provably_empty`: it admits exactly the
optimized plan shape ``[DDO*] MapToItem(FieldAccess, TupleTreePattern(
pattern, MapFromItem(bind, Var)))`` with downward axes only (child /
descendant / attribute), no positional steps, and no predicated first
step that could match the **root element** — the one node whose
children are split across shards, so an existential witness for it may
live in a different shard than the match.  Anything it cannot prove
shard-safe runs whole-document; wrong answers are never on the menu.

Coordination details:

* **protocol** — length-prefixed pickle frames over the worker's
  stdin/stdout pipes (:func:`~repro.serve.worker.send_frame`);
  ``transport="inline"`` runs the same frame codec and worker code
  in-process for fast differential tests;
* **deadlines** — per-shard deadlines are derived **tighten-only** from
  the admission deadline: each task ships the remaining wall seconds at
  dispatch, which the worker maps onto its engine's
  :class:`~repro.guard.Budgets`;
* **errors** — workers reply with pickled typed REPRO-* errors
  (:mod:`repro.guard.errors` round-trips the whole taxonomy); a dead
  worker surfaces as :class:`~repro.guard.WorkerLost`, its in-flight
  tasks are re-dispatched once, and the pool **respawns** the worker;
* **resilience** — per-worker circuit breakers
  (:class:`~repro.serve.resilience.CircuitBreaker`) steer dispatch away
  from flapping workers; with ``allow_partial=True`` a scatter whose
  shards partially failed still answers with the merged successes and
  ``QueryResponse.partial=True``;
* **chaos** — sites ``cluster.dispatch`` / ``cluster.gather`` fire in
  the coordinator; worker processes re-activate the configured specs
  with seed ``base + worker_index``
  (:func:`~repro.guard.worker_seed`), so ``REPRO_CHAOS_SEED`` sweeps
  are reproducible across the pool;
* **tracing** — one coordinator root span per request plus one
  ``shard`` child span per task (worker-measured duration), stitched
  under the same trace id.

See ``docs/CLUSTER.md`` for the architecture and ``benchmarks/
bench_serve.py`` (E13) for the scaling numbers.
"""

from __future__ import annotations

import heapq
import os
import pickle
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..algebra.ops import (DDOPlan, FieldAccess, MapFromItem, MapToItem,
                           TupleTreePattern, VarPlan)
from ..guard import (BudgetExceeded, Budgets, ChaosSpec, CircuitOpen,
                     InjectedFault, InternalError, ReproError,
                     ServiceClosed, ServiceOverloaded, WorkerLost,
                     chaos_point, default_seed)
from ..pattern.tree import PatternPath, TreePattern
from ..trace import (FlightRecorder, FlightSnapshot, TraceContext,
                     Tracer, graft_remote)
from ..xmltree.axes import Axis
from ..xmltree.nodetest import NameTest, TextTest
from ..xmltree.shard import ShardManifest, write_shard_layout
from .catalog import DocumentCatalog
from .metrics import LatencyHistogram, ServiceMetrics, ServiceStats
from .resilience import BreakerPolicy, CircuitBreaker
from .service import (DEFAULT_QUEUE_LIMIT, PendingQuery, QueryRequest,
                      QueryResponse)
from .worker import ShardWorker, recv_frame, send_frame

__all__ = ["ClusterLayout", "ClusterService", "ClusterStats",
           "WorkerStats", "merge_shard_results", "scatter_plan"]

#: axes a scatterable pattern may use: strictly downward, strictly
#: depth-increasing (SELF / DESCENDANT_OR_SELF would let deep steps
#: match the replicated spine, breaking the depth argument below).
_SCATTER_AXES = (Axis.CHILD, Axis.DESCENDANT, Axis.ATTRIBUTE)


# -- layout ------------------------------------------------------------------


@dataclass
class ClusterLayout:
    """The on-disk shard layouts one cluster serves: per document name,
    a :class:`~repro.xmltree.shard.ShardManifest` in ``directory``."""

    directory: str
    manifests: Dict[str, ShardManifest] = field(default_factory=dict)

    @classmethod
    def build(cls, documents: Dict[str, Any], directory: str,
              shard_count: int) -> "ClusterLayout":
        """Shard every document's columns into ``directory`` (see
        :func:`~repro.xmltree.shard.write_shard_layout`)."""
        layout = cls(directory=os.path.abspath(directory))
        for name, columns in documents.items():
            manifest_path = write_shard_layout(columns, layout.directory,
                                               name, shard_count)
            layout.manifests[name] = ShardManifest.load(manifest_path)
        return layout

    @classmethod
    def load(cls, directory: str) -> "ClusterLayout":
        """Scan ``directory`` for ``*.manifest.json`` files."""
        layout = cls(directory=os.path.abspath(directory))
        for entry in sorted(os.listdir(directory)):
            if entry.endswith(".manifest.json"):
                manifest = ShardManifest.load(
                    os.path.join(directory, entry))
                layout.manifests[manifest.name] = manifest
        return layout

    def worker_documents(self) -> Dict[str, Dict[str, str]]:
        """The ``documents`` section of a worker init frame."""
        return {name: {"directory": self.directory,
                       "manifest": f"{name}.manifest.json"}
                for name in self.manifests}


# -- scatter planner ---------------------------------------------------------


def scatter_plan(compiled, root_tag: str) -> bool:
    """True when the compiled query's **optimized** plan can be
    evaluated independently per shard and merged by pre number.

    Conservative by construction: admits only the canonical path shape
    (an optional DDO stack over ``MapToItem(FieldAccess(out),
    TupleTreePattern(pattern, MapFromItem(bind, $external)))``) whose
    pattern is downward, position-free, and whose first step cannot be
    a predicated match of the root element (the only non-attribute node
    whose subtree spans shards; ``root_tag`` names it).  Everything
    else — aggregates, FLWOR, positional predicates, Select stacks —
    returns False and runs whole-document.
    """
    plan = compiled.optimized
    while isinstance(plan, DDOPlan):
        plan = plan.input
    if not isinstance(plan, MapToItem):
        return False
    dep = plan.dep
    if not isinstance(dep, FieldAccess):
        return False
    pattern_op = plan.input
    if not isinstance(pattern_op, TupleTreePattern):
        return False
    source = pattern_op.input
    if not isinstance(source, MapFromItem) \
            or source.index_field is not None:
        return False
    if not isinstance(source.input, VarPlan) \
            or source.input.var.origin != "external":
        # Only the engine-bound document root is replicated into every
        # shard; anything else anchors the pattern unpredictably.
        return False
    pattern = pattern_op.pattern
    if source.bind_field != pattern.input_field:
        return False
    if not pattern.is_single_output_at_extraction_point():
        return False
    if pattern.extraction_point.output_field != dep.field:
        return False
    return _pattern_scatterable(pattern, root_tag)


def _pattern_scatterable(pattern: TreePattern, root_tag: str) -> bool:
    if not _path_downward(pattern.path):
        return False
    first = pattern.path.steps[0]
    # Only the first main-path step can match the root element (every
    # admitted axis strictly increases depth, and the context — the
    # document node — sits at depth 0).  A predicate there may need a
    # witness from a child subtree living in another shard.
    if first.predicates and first.axis in (Axis.CHILD, Axis.DESCENDANT) \
            and _may_match_root(first.test, root_tag):
        return False
    return True


def _path_downward(path: PatternPath) -> bool:
    for step in path.steps:
        if step.axis not in _SCATTER_AXES:
            return False
        if step.position is not None:
            return False
        for predicate in step.predicates:
            if not _path_downward(predicate):
                return False
    return True


def _may_match_root(test, root_tag: str) -> bool:
    if isinstance(test, TextTest):
        return False
    if isinstance(test, NameTest):
        return test.name == root_tag
    # Wildcards, kind tests, anything else: assume it can.
    return True


# -- merge -------------------------------------------------------------------


def merge_shard_results(
        streams: Sequence[Sequence[Tuple[str, int]]]) -> List[int]:
    """K-way merge shard result streams into one global-pre list.

    Each stream is the encoded result of one shard — ``("n",
    global_pre)`` pairs in strictly increasing pre order (shard-local
    document order maps monotonically onto global order).  Spine nodes
    appear in several streams; duplicates are dropped, so the merged
    list is exactly the distinct-document-order union.
    """
    merged: List[int] = []
    last = -1
    for tag, pre in heapq.merge(*streams, key=lambda item: item[1]):
        if tag != "n":
            raise InternalError(
                f"scatter stream carries a non-node item tagged "
                f"{tag!r}; the scatter planner admitted a plan it "
                f"should not have")
        if pre != last:
            merged.append(pre)
            last = pre
    return merged


# -- metrics -----------------------------------------------------------------


@dataclass(frozen=True)
class WorkerStats:
    """One worker's counters at snapshot time."""

    index: int
    pid: Optional[int]
    alive: bool
    dispatched: int
    completed: int
    failed: int
    queue_depth: int
    breaker_state: str
    #: cumulative worker-self-measured task execution seconds — the
    #: per-worker utilization series on ``/metrics``.
    busy_seconds: float = 0.0


@dataclass
class ClusterStats:
    """Cluster-level counters next to the base :class:`ServiceStats`."""

    workers: List[WorkerStats]
    respawns: int
    partials: int
    scattered: int
    whole_document: int
    #: per ``document/shard`` latency histograms (worker-measured
    #: execution seconds; shard ``-1`` is the whole-document path).
    shard_latency: Dict[str, LatencyHistogram]

    def report(self) -> str:
        lines = [
            f"cluster    : {len(self.workers)} workers, "
            f"respawns={self.respawns} scattered={self.scattered} "
            f"whole={self.whole_document} partials={self.partials}",
        ]
        for worker in self.workers:
            lines.append(
                f"worker {worker.index}   : "
                f"{'alive' if worker.alive else 'dead '} "
                f"pid={worker.pid} dispatched={worker.dispatched} "
                f"completed={worker.completed} failed={worker.failed} "
                f"queue={worker.queue_depth} "
                f"breaker={worker.breaker_state}")
        for key in sorted(self.shard_latency):
            histogram = self.shard_latency[key]
            if histogram.count:
                lines.append(
                    f"shard {key}: n={histogram.count} "
                    f"p50={histogram.quantile(0.5) * 1e3:.2f}ms "
                    f"p95={histogram.quantile(0.95) * 1e3:.2f}ms")
        return "\n".join(lines)


class _ClusterMetrics:
    """Thread-safe per-worker / per-shard counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.dispatched: Dict[int, int] = {}
        self.completed: Dict[int, int] = {}
        self.failed: Dict[int, int] = {}
        self.busy_seconds: Dict[int, float] = {}
        self.respawns = 0
        self.partials = 0
        self.scattered = 0
        self.whole_document = 0
        self.shard_latency: Dict[str, LatencyHistogram] = {}

    def record_dispatched(self, worker: int) -> None:
        with self._lock:
            self.dispatched[worker] = self.dispatched.get(worker, 0) + 1

    def record_result(self, worker: int, document: str, shard: Optional[int],
                      seconds: float, ok: bool) -> None:
        key = f"{document}/{-1 if shard is None else shard}"
        with self._lock:
            if ok:
                self.completed[worker] = self.completed.get(worker, 0) + 1
            else:
                self.failed[worker] = self.failed.get(worker, 0) + 1
            self.busy_seconds[worker] = \
                self.busy_seconds.get(worker, 0.0) + seconds
            histogram = self.shard_latency.get(key)
            if histogram is None:
                histogram = self.shard_latency[key] = LatencyHistogram()
        histogram.record(seconds)

    def record_respawn(self) -> None:
        with self._lock:
            self.respawns += 1

    def record_partial(self) -> None:
        with self._lock:
            self.partials += 1

    def record_mode(self, scattered: bool) -> None:
        with self._lock:
            if scattered:
                self.scattered += 1
            else:
                self.whole_document += 1


# -- executions and tasks ----------------------------------------------------


class _ClusterExecution:
    """Shared state of one admitted request (drop-in for the
    :class:`~repro.serve.service.PendingQuery` handle: ``done``,
    ``response``, ``request``, ``coalesced``)."""

    def __init__(self, request: QueryRequest, admitted: float,
                 deadline: Optional[float], scattered: bool) -> None:
        self.request = request
        self.admitted = admitted
        self.deadline = deadline
        self.scattered = scattered
        self.response: Optional[QueryResponse] = None
        self.done = threading.Event()
        self.coalesced = 0
        self.pending = 0
        self.tasks: List["_Task"] = []
        self.trace = None


class _Task:
    """One dispatched unit: a (document, shard) evaluation."""

    __slots__ = ("task_id", "execution", "shard", "worker", "dispatched",
                 "received", "exec_seconds", "ok", "items", "error",
                 "retried", "finished", "remote_trace")

    def __init__(self, task_id: int, execution: _ClusterExecution,
                 shard: Optional[int]) -> None:
        self.task_id = task_id
        self.execution = execution
        self.shard = shard
        self.worker = -1
        self.dispatched = 0.0
        #: coordinator-clock instant the result frame arrived (0.0 when
        #: the task failed without one) — with ``dispatched`` it bounds
        #: the dispatch→first-frame wait on ONE clock.
        self.received = 0.0
        self.exec_seconds = 0.0
        self.ok = False
        self.items: Optional[List[Tuple[str, Any]]] = None
        self.error: Optional[Exception] = None
        self.retried = False
        self.finished = False
        #: packed worker span payload (:func:`repro.trace.pack_trace`)
        #: when the request was sampled and the worker replied with one.
        self.remote_trace: Optional[Dict[str, Any]] = None


# -- transports --------------------------------------------------------------


class _ProcessTransport:
    """A worker subprocess plus its reader thread."""

    def __init__(self, service: "ClusterService", index: int) -> None:
        self.service = service
        self.index = index
        self._write_lock = threading.Lock()
        package_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = package_root if not existing \
            else package_root + os.pathsep + existing
        # -c instead of -m: the package __init__ imports .worker, and
        # runpy warns when the -m target is already in sys.modules.
        self.process = subprocess.Popen(
            [sys.executable, "-c",
             "import sys; from repro.serve.worker import main; "
             "sys.exit(main())"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=None, env=env, cwd=service.layout.directory)
        self.reader = threading.Thread(
            target=self._reader_loop,
            name=f"repro-cluster-reader-{index}", daemon=True)

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.poll() is None

    def start(self, init: Dict[str, Any]) -> None:
        self.send(init)
        self.reader.start()

    def send(self, message: Dict[str, Any]) -> None:
        with self._write_lock:
            send_frame(self.process.stdin, message)

    def _reader_loop(self) -> None:
        stream = self.process.stdout
        try:
            while True:
                message = recv_frame(stream)
                if message is None:
                    break
                self.service._on_frame(self.index, message)
        except Exception:
            pass
        self.service._on_worker_exit(self.index, self)

    def shutdown(self) -> None:
        try:
            self.send({"type": "shutdown"})
        except Exception:
            pass
        try:
            self.process.stdin.close()
        except Exception:
            pass

    def reap(self, timeout: float = 5.0) -> None:
        """Wait for exit, escalating to terminate/kill — the no-orphan
        guarantee behind the CI leak check."""
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.terminate()
            try:
                self.process.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()
        try:
            self.process.stdout.close()
        except Exception:
            pass
        if self.reader.is_alive() and self.reader is not \
                threading.current_thread():
            self.reader.join(timeout=2.0)


class _InlineTransport:
    """The worker code path without the process: frames still go
    through the pickle codec (wire fidelity), execution is synchronous
    in the caller's thread.  For tests — fast, deterministic, and the
    ambient in-process chaos injector applies."""

    def __init__(self, service: "ClusterService", index: int) -> None:
        self.service = service
        self.index = index
        self.worker: Optional[ShardWorker] = None
        self._closed = False

    @property
    def pid(self) -> Optional[int]:
        return os.getpid()

    def alive(self) -> bool:
        return not self._closed

    def start(self, init: Dict[str, Any]) -> None:
        init = pickle.loads(pickle.dumps(init))
        self.worker = ShardWorker.from_init(init)

    def send(self, message: Dict[str, Any]) -> None:
        if self._closed:
            raise BrokenPipeError("inline worker is closed")
        message = pickle.loads(pickle.dumps(message))
        if message.get("type") == "task":
            result = self.worker.handle(message)
            self.service._on_frame(self.index,
                                   pickle.loads(pickle.dumps(result)))

    def shutdown(self) -> None:
        if not self._closed:
            self._closed = True
            if self.worker is not None:
                self.worker.close()

    def reap(self, timeout: float = 5.0) -> None:
        self.shutdown()


# -- the coordinator ---------------------------------------------------------


class ClusterService:
    """Scatter-gather query service over a pool of worker processes.

    ::

        layout = ClusterLayout.build({"site": doc.columns}, tmp, 4)
        with ClusterService(layout, workers=4) as cluster:
            names = cluster.query("site", "$input//person/name")

    The surface mirrors :class:`~repro.serve.QueryService` — ``submit``
    / ``query`` / ``stats`` / ``close(drain=)``, typed REPRO-* errors,
    tighten-only deadlines — so the load generator and benchmarks drive
    either interchangeably.  ``catalog`` supplies the engines used for
    the scatter decision and node rehydration; when omitted, one is
    built from the layout's full indexes (and closed with the
    service).
    """

    def __init__(self, layout: ClusterLayout,
                 workers: int = 4,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 catalog: Optional[DocumentCatalog] = None,
                 transport: str = "process",
                 backend: str = "compiled",
                 use_summary: bool = True,
                 default_budgets: Optional[Budgets] = None,
                 clock=time.perf_counter,
                 tracer: Optional[Tracer] = None,
                 flight_recorder: Optional[FlightRecorder] = None,
                 breaker_policy: Optional[BreakerPolicy] = None,
                 allow_partial: bool = False,
                 scatter: bool = True,
                 placement: str = "replicate",
                 respawn: bool = True,
                 chaos_specs: Sequence[ChaosSpec] = (),
                 chaos_seed: Optional[int] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if transport not in ("process", "inline"):
            raise ValueError(f"unknown transport {transport!r}; "
                             f"valid: process, inline")
        if placement not in ("replicate", "partition"):
            raise ValueError(f"unknown placement {placement!r}; "
                             f"valid: replicate, partition")
        self.layout = layout
        self.queue_limit = queue_limit
        self.transport = transport
        self.backend = backend
        self.use_summary = use_summary
        self.default_budgets = default_budgets
        self.allow_partial = allow_partial
        self.scatter = scatter
        self.placement = placement
        self.respawn = respawn
        self.breaker_policy = breaker_policy
        self._chaos_specs = tuple(chaos_specs)
        self._chaos_seed = chaos_seed
        self._clock = clock
        self.tracer = tracer
        if flight_recorder is None and tracer is not None:
            flight_recorder = FlightRecorder()
        self._flight = flight_recorder
        self.metrics = ServiceMetrics(clock=clock)
        self.cluster_metrics = _ClusterMetrics()
        self._owns_catalog = catalog is None
        if catalog is None:
            catalog = DocumentCatalog()
            for name, manifest in layout.manifests.items():
                catalog.add_columnar_file(
                    name,
                    os.path.join(layout.directory, manifest.index_file),
                    verify=False)
        self.catalog = catalog
        self._owned_directory: Optional[str] = None

        self._lock = threading.Lock()
        self._closed = False
        self._next_task_id = 0
        self._tasks: Dict[int, _Task] = {}
        self._inflight_per_worker: Dict[int, int] = \
            {index: 0 for index in range(workers)}
        self._rr = 0
        self._breakers: Dict[int, CircuitBreaker] = {}
        if breaker_policy is not None:
            self._breakers = {
                index: CircuitBreaker(breaker_policy, clock=clock)
                for index in range(workers)}
        self._workers: List[Any] = []
        for index in range(workers):
            self._workers.append(self._spawn(index))

    # -- pool management -----------------------------------------------------

    def _spawn(self, index: int):
        transport = _ProcessTransport(self, index) \
            if self.transport == "process" \
            else _InlineTransport(self, index)
        transport.start(self._init_message(index))
        return transport

    def _init_message(self, index: int) -> Dict[str, Any]:
        chaos = None
        if self._chaos_specs and self.transport == "process":
            chaos = {"specs": list(self._chaos_specs),
                     "seed": default_seed() if self._chaos_seed is None
                     else self._chaos_seed}
        return {"type": "init", "worker_index": index,
                "documents": self.layout.worker_documents(),
                "engine": {"backend": self.backend,
                           "use_summary": self.use_summary,
                           "default_budgets": self.default_budgets},
                "chaos": chaos}

    @property
    def worker_count(self) -> int:
        return len(self._workers)

    def worker_pids(self) -> List[Optional[int]]:
        return [transport.pid for transport in self._workers]

    @property
    def closed(self) -> bool:
        return self._closed

    # -- admission -----------------------------------------------------------

    def submit(self, request: QueryRequest) -> PendingQuery:
        """Admit a request: decide scatter vs whole-document, dispatch
        its tasks, and return a waitable handle.  Sheds with
        :class:`~repro.guard.ServiceOverloaded` when the in-flight task
        count reaches ``queue_limit``; raises
        :class:`~repro.guard.CircuitOpen` when every worker's breaker
        is open."""
        self.metrics.record_submitted()
        manifest = self.layout.manifests.get(request.document)
        if manifest is None:
            raise ReproError(
                f"unknown cluster document {request.document!r}; "
                f"known: {sorted(self.layout.manifests)}",
                code="REPRO-CLUSTER-DOCUMENT")
        admitted = self._clock()
        deadline = admitted + request.timeout \
            if request.timeout is not None else None

        scattered = False
        if self.scatter and self.placement == "replicate" \
                and request.optimize and manifest.shard_count > 1:
            try:
                engine = self.catalog.engine(request.document)
                compiled = engine.compile(request.query,
                                          optimize=True)
            except ReproError as err:
                return self._fail_immediately(request, admitted, err)
            scattered = scatter_plan(compiled, manifest.root_tag)

        execution = _ClusterExecution(request, admitted, deadline,
                                      scattered)
        shards: List[Optional[int]] = \
            list(range(manifest.shard_count)) if scattered else [None]
        with self._lock:
            if self._closed:
                raise ServiceClosed("cluster service is closed")
            pending_total = len(self._tasks)
            if pending_total + len(shards) > self.queue_limit:
                self.metrics.record_shed()
                raise ServiceOverloaded(
                    f"cluster task queue full ({pending_total} in "
                    f"flight, limit {self.queue_limit}); request shed",
                    queue_depth=pending_total,
                    queue_limit=self.queue_limit)
            targets = []
            for shard in shards:
                worker = self._pick_worker_locked(request.document)
                task = _Task(self._next_task_id, execution, shard)
                self._next_task_id += 1
                task.worker = worker
                execution.tasks.append(task)
                execution.pending += 1
                self._tasks[task.task_id] = task
                self._inflight_per_worker[worker] = \
                    self._inflight_per_worker.get(worker, 0) + 1
                targets.append(task)
        self.metrics.record_accepted()
        self.cluster_metrics.record_mode(scattered)
        execution.trace = self._begin_trace(execution)
        for task in targets:
            self._dispatch(task)
        return PendingQuery(execution, coalesced=False)

    def query(self, document: str, query: str,
              strategy: Optional[str] = None,
              timeout: Optional[float] = None,
              optimize: bool = True) -> List:
        """Submit one request and block for its results."""
        pending = self.submit(QueryRequest(document=document, query=query,
                                           strategy=strategy,
                                           timeout=timeout,
                                           optimize=optimize))
        return pending.result()

    def _fail_immediately(self, request: QueryRequest, admitted: float,
                          error: ReproError) -> PendingQuery:
        self.metrics.record_accepted()
        execution = _ClusterExecution(request, admitted, None, False)
        execution.response = QueryResponse(request=request, error=error)
        execution.done.set()
        self.metrics.record_done(latency_seconds=0.0, queue_seconds=0.0,
                                 failed=True)
        return PendingQuery(execution, coalesced=False)

    def _pick_worker_locked(self, document: str) -> int:
        """The worker for the next task: pinned in ``partition``
        placement, else round-robin over live workers whose breaker
        admits traffic."""
        count = len(self._workers)
        if self.placement == "partition":
            names = sorted(self.layout.manifests)
            return names.index(document) % count
        candidates = []
        for offset in range(count):
            index = (self._rr + offset) % count
            if not self._workers[index].alive():
                continue
            breaker = self._breakers.get(index)
            if breaker is not None and not breaker.allow():
                continue
            candidates.append(index)
        if not candidates:
            retry_after = 0.0
            for breaker in self._breakers.values():
                retry_after = max(retry_after, breaker.retry_after())
            self.metrics.record_breaker_rejected()
            raise CircuitOpen(
                "every cluster worker's circuit is open",
                document=document, retry_after_seconds=retry_after)
        chosen = candidates[0]
        self._rr = (chosen + 1) % count
        return chosen

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, task: _Task) -> None:
        execution = task.execution
        remaining = None
        if execution.deadline is not None:
            remaining = execution.deadline - self._clock()
            if remaining <= 0:
                elapsed = self._clock() - execution.admitted
                self._complete_task(task, error=BudgetExceeded(
                    "wall", execution.request.timeout or 0.0, elapsed,
                    elapsed_seconds=elapsed))
                return
        message = {"type": "task", "task_id": task.task_id,
                   "document": execution.request.document,
                   "query": execution.request.query,
                   "strategy": execution.request.strategy,
                   "optimize": execution.request.optimize,
                   "shard": task.shard,
                   "remaining": remaining,
                   "timeout": execution.request.timeout}
        if execution.trace is not None:
            # Context presence IS the sampling decision: only sampled
            # requests make the workers trace.
            message["trace"] = TraceContext(
                execution.trace.trace_id,
                execution.trace.root.span_id).to_wire()
        task.dispatched = self._clock()
        self.cluster_metrics.record_dispatched(task.worker)
        transport = self._workers[task.worker]
        try:
            chaos_point("cluster.dispatch")
            transport.send(message)
        except InjectedFault as fault:
            self._complete_task(task, error=fault)
        except Exception:
            # The pipe broke mid-write: the worker is gone.  The exit
            # path re-dispatches or fails this task.
            self._on_worker_exit(task.worker, transport)

    # -- gather --------------------------------------------------------------

    def _on_frame(self, worker_index: int, message: Dict[str, Any]) -> None:
        if message.get("type") != "result":
            return
        with self._lock:
            task = self._tasks.get(message.get("task_id"))
        if task is None or task.worker != worker_index:
            return
        task.exec_seconds = message.get("exec_seconds", 0.0)
        task.received = self._clock()
        task.remote_trace = message.get("trace")
        document = task.execution.request.document
        ok = bool(message.get("ok"))
        self.cluster_metrics.record_result(worker_index, document,
                                           task.shard,
                                           task.exec_seconds, ok)
        breaker = self._breakers.get(worker_index)
        if breaker is not None:
            # A frame — success or typed query error — proves the
            # worker itself is healthy.
            breaker.record_success()
        try:
            chaos_point("cluster.gather")
        except InjectedFault as fault:
            self._complete_task(task, error=fault)
            return
        if ok:
            self._complete_task(task, items=message.get("items", []))
        else:
            error = message.get("error")
            if not isinstance(error, Exception):
                error = InternalError(
                    f"worker {worker_index} reported a malformed "
                    f"error payload: {error!r}")
            self._complete_task(task, error=error)

    def _complete_task(self, task: _Task,
                       items: Optional[List[Tuple[str, Any]]] = None,
                       error: Optional[Exception] = None) -> None:
        execution = task.execution
        with self._lock:
            if task.finished:
                return
            task.finished = True
            task.ok = error is None
            task.items = items
            task.error = error
            self._tasks.pop(task.task_id, None)
            if task.worker in self._inflight_per_worker:
                self._inflight_per_worker[task.worker] = max(
                    0, self._inflight_per_worker[task.worker] - 1)
            execution.pending -= 1
            finished = execution.pending == 0
        if finished:
            self._finalize(execution)

    def _finalize(self, execution: _ClusterExecution) -> None:
        request = execution.request
        response = QueryResponse(request=request)
        succeeded = [task for task in execution.tasks if task.ok]
        failed = [task for task in execution.tasks if not task.ok]
        try:
            if failed and not (execution.scattered and succeeded
                               and self.allow_partial):
                response.error = failed[0].error
            else:
                document = self.catalog.engine(request.document).document
                if execution.scattered:
                    merged = merge_shard_results(
                        [task.items for task in succeeded])
                    response.results = [document.node_at(pre)
                                        for pre in merged]
                    if failed:
                        response.partial = True
                        self.cluster_metrics.record_partial()
                        self.metrics.record_degraded()
                else:
                    (task,) = execution.tasks
                    response.results = [
                        document.node_at(value) if tag == "n" else value
                        for tag, value in task.items]
        except Exception as err:
            if not isinstance(err, ReproError):
                wrapped = InternalError(
                    f"unexpected {type(err).__name__} while merging "
                    f"{request.query!r}: {err}")
                wrapped.__cause__ = err
                err = wrapped
            response.error = err
        response.exec_seconds = self._clock() - execution.admitted
        deadline_expired = isinstance(response.error, BudgetExceeded) \
            and response.error.kind == "wall"
        trace = execution.trace
        if trace is not None:
            response.trace_id = trace.trace_id
            for task in execution.tasks:
                # Every instant here is coordinator-clock: the shard
                # span covers dispatch -> result-frame arrival as this
                # process measured it.  The worker's self-measured
                # execution time rides along as ``worker_seconds`` —
                # an attribute, never a position — so clock skew
                # between the two processes cannot produce negative
                # gaps in the stitched tree.
                # Offsets are measured from the trace root's own start
                # (same coordinator clock), not ``execution.admitted``:
                # the trace begins after admission, so admitted-based
                # offsets would push spans past the root span's end.
                dispatch_offset = max(
                    task.dispatched - trace.root.start, 0.0) \
                    if task.dispatched else 0.0
                wait = max(task.received - task.dispatched, 0.0) \
                    if task.dispatched and task.received else 0.0
                payload = task.remote_trace
                duration = wait
                if payload is not None:
                    # Under rate skew the worker may report a longer
                    # execution than the coordinator-observed wait;
                    # widen the envelope so grafted children still
                    # nest inside it.
                    duration = max(duration,
                                   payload.get("duration", 0.0))
                shard_span = trace.add_span(
                    "shard",
                    start=trace.root.start + dispatch_offset,
                    duration=duration,
                    shard=-1 if task.shard is None else task.shard,
                    worker=task.worker, ok=task.ok,
                    wait_seconds=wait,
                    worker_seconds=task.exec_seconds)
                if payload is not None and trace.spans \
                        and trace.spans[-1] is shard_span:
                    # Only graft when the shard span itself survived
                    # the buffer cap — stitching under a dropped span
                    # would break the no-dropped-parent invariant.
                    try:
                        graft_remote(
                            trace, payload,
                            anchor=shard_span.start,
                            parent_id=shard_span.span_id,
                            attrs={"worker": task.worker,
                                   "shard": -1 if task.shard is None
                                   else task.shard})
                    except ValueError as err:
                        trace.event("graft-failed", error=str(err))
            if response.error is not None:
                trace.annotate(error=getattr(
                    response.error, "code",
                    type(response.error).__name__))
            trace.finish(rows=len(response.results)
                         if response.results is not None else 0,
                         scattered=execution.scattered,
                         partial=response.partial)
            if self._flight is not None:
                self._flight.record(trace,
                                    latency=response.exec_seconds)
        execution.response = response
        execution.done.set()
        self.metrics.record_done(latency_seconds=response.exec_seconds,
                                 queue_seconds=0.0,
                                 failed=response.error is not None,
                                 deadline_expired=deadline_expired)

    def _begin_trace(self, execution: _ClusterExecution):
        if self.tracer is None:
            return None
        trace = self.tracer.begin(
            "request",
            document=execution.request.document,
            query=execution.request.query,
            strategy=execution.request.strategy or "default",
            cluster=True)
        return trace

    # -- worker loss ---------------------------------------------------------

    def _on_worker_exit(self, index: int, transport) -> None:
        with self._lock:
            if self._closed:
                return
            if index >= len(self._workers) \
                    or self._workers[index] is not transport:
                return  # already replaced
            lost = [task for task in self._tasks.values()
                    if task.worker == index and not task.finished]
            replacement = None
            if self.respawn:
                self.cluster_metrics.record_respawn()
                replacement = _ProcessTransport(self, index) \
                    if self.transport == "process" \
                    else _InlineTransport(self, index)
                self._workers[index] = replacement
            self._inflight_per_worker[index] = 0
        breaker = self._breakers.get(index)
        if breaker is not None:
            breaker.record_failure()
        if replacement is not None:
            try:
                replacement.start(self._init_message(index))
            except Exception:
                pass
        transport.reap(timeout=0.5)
        for task in lost:
            self._retry_or_fail(task, index)

    def _retry_or_fail(self, task: _Task, dead_index: int) -> None:
        execution = task.execution
        error = WorkerLost(
            f"cluster worker {dead_index} died while evaluating "
            f"{execution.request.query!r}", worker_index=dead_index)
        if task.retried or self._closed:
            self._complete_task(task, error=error)
            return
        with self._lock:
            if task.finished:
                return
            try:
                worker = self._pick_worker_locked(
                    execution.request.document)
            except ReproError:
                worker = None
            if worker is None:
                pass
            else:
                old = task.worker
                task.worker = worker
                task.retried = True
                if old in self._inflight_per_worker:
                    self._inflight_per_worker[old] = max(
                        0, self._inflight_per_worker[old] - 1)
                self._inflight_per_worker[worker] = \
                    self._inflight_per_worker.get(worker, 0) + 1
        if worker is None:
            self._complete_task(task, error=error)
        else:
            self.metrics.record_retried()
            self._dispatch(task)

    # -- introspection -------------------------------------------------------

    def stats(self) -> ServiceStats:
        with self._lock:
            queue_depth = len(self._tasks)
            in_flight = sum(self._inflight_per_worker.values())
        return self.metrics.stats(queue_depth=queue_depth,
                                  in_flight=in_flight)

    def cluster_stats(self) -> ClusterStats:
        metrics = self.cluster_metrics
        with self._lock:
            inflight = dict(self._inflight_per_worker)
            workers = []
            for index, transport in enumerate(self._workers):
                breaker = self._breakers.get(index)
                workers.append(WorkerStats(
                    index=index, pid=transport.pid,
                    alive=transport.alive(),
                    dispatched=metrics.dispatched.get(index, 0),
                    completed=metrics.completed.get(index, 0),
                    failed=metrics.failed.get(index, 0),
                    queue_depth=inflight.get(index, 0),
                    breaker_state=breaker.state if breaker is not None
                    else "disabled",
                    busy_seconds=metrics.busy_seconds.get(index, 0.0)))
        with metrics._lock:
            latency = {key: histogram.snapshot()
                       for key, histogram
                       in metrics.shard_latency.items()}
        return ClusterStats(workers=workers, respawns=metrics.respawns,
                            partials=metrics.partials,
                            scattered=metrics.scattered,
                            whole_document=metrics.whole_document,
                            shard_latency=latency)

    def flight_recorder(self) -> Optional[FlightSnapshot]:
        if self._flight is None:
            return None
        return self._flight.snapshot()

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def from_catalog(cls, catalog: DocumentCatalog,
                     directory: Optional[str] = None,
                     shard_count: int = 4,
                     **options) -> "ClusterService":
        """Shard every catalog document into ``directory`` (a private
        temporary directory when omitted — removed on ``close``) and
        build a cluster over the layout.  The catalog's engines serve
        as the coordinator's rehydration/baseline side."""
        owned = directory is None
        if owned:
            directory = tempfile.mkdtemp(prefix="repro-cluster-")
        documents = {name: catalog.engine(name).document.columns
                     for name in catalog.names()}
        layout = ClusterLayout.build(documents, directory, shard_count)
        service = cls(layout, catalog=catalog, **options)
        if owned:
            service._owned_directory = directory
        return service

    def close(self, drain: bool = True) -> None:
        """Stop admitting, settle in-flight work, shut every worker
        down and reap it (no orphan processes, no open pipes).

        ``drain=True`` waits for dispatched tasks to finish first;
        ``drain=False`` fails them with
        :class:`~repro.guard.ServiceClosed`.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._tasks.values())
        if drain:
            for task in pending:
                task.execution.done.wait(timeout=30.0)
        else:
            for task in pending:
                self._complete_task(task, error=ServiceClosed(
                    "cluster service closed before execution"))
        for transport in self._workers:
            transport.shutdown()
        for transport in self._workers:
            transport.reap()
        if self._owns_catalog:
            for name in self.catalog.names():
                engine = self.catalog.engine_if_built(name)
                if engine is not None:
                    engine.document.close()
        if self._owned_directory is not None:
            shutil.rmtree(self._owned_directory, ignore_errors=True)

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
