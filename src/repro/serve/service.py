"""The concurrent query service: admission, workers, coalescing.

:class:`QueryService` turns a :class:`~repro.serve.DocumentCatalog`
into a multi-tenant query endpoint with the three properties a serving
layer needs under load:

* **bounded admission** — requests wait in a fixed-capacity queue; when
  it is full, :meth:`QueryService.submit` sheds the request immediately
  with a typed :class:`~repro.guard.ServiceOverloaded` instead of
  letting work pile up without bound (backpressure, not collapse);
* **deadlines** — a per-request ``timeout`` becomes a wall deadline
  fixed at admission.  Time spent queued counts against it; whatever
  remains when a worker picks the request up is mapped onto
  :class:`~repro.guard.Budgets` so the engine's own governor aborts a
  slow query mid-flight — one slow query cannot starve the pool;
* **request coalescing** — identical in-flight requests (same document,
  query text, strategy and optimize flag) share a single execution: the
  first becomes the *leader*, later duplicates attach to its pending
  result and are never enqueued.  Thundering herds of a hot query cost
  one evaluation.

Results are deterministic: workers only ever *read* the shared,
immutable engines (the plan cache and summary builds are internally
locked, see PR notes in :mod:`repro.obs` / :mod:`repro.xmltree.
document`), so a response is byte-identical to a sequential
``engine.run()`` of the same request.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..guard import (Budgets, BudgetExceeded, ServiceClosed,
                     ServiceOverloaded)
from ..trace import FlightRecorder, FlightSnapshot, Tracer
from .catalog import DocumentCatalog
from .metrics import ServiceMetrics, ServiceStats

__all__ = ["QueryRequest", "QueryResponse", "PendingQuery", "QueryService"]

#: default admission-queue capacity (requests waiting for a worker).
DEFAULT_QUEUE_LIMIT = 128

#: default worker count.
DEFAULT_WORKERS = 4

_SENTINEL = object()


@dataclass(frozen=True)
class QueryRequest:
    """One query against one named catalog document."""

    document: str
    query: str
    strategy: Optional[str] = None
    #: wall-clock deadline in seconds, measured from admission (queue
    #: wait included); ``None`` inherits only the service's default
    #: budgets.
    timeout: Optional[float] = None
    optimize: bool = True

    def coalesce_key(self) -> Tuple[Hashable, ...]:
        """Requests with equal keys may share one execution.  The
        deadline is deliberately excluded: a follower rides the
        leader's execution whatever its own timeout was."""
        return (self.document, self.query, self.strategy, self.optimize)


@dataclass
class QueryResponse:
    """The outcome of one executed request (shared by coalesced
    followers — ``coalesced`` on the :class:`PendingQuery` handle, not
    here, says how *this caller* got it)."""

    request: QueryRequest
    results: Optional[List] = None
    error: Optional[Exception] = None
    #: seconds from admission to a worker picking the request up.
    queue_seconds: float = 0.0
    #: seconds the worker spent compiling + executing.
    exec_seconds: float = 0.0
    #: id of this request's span trace, when the service traces (and
    #: its sampler admitted this request); ``None`` otherwise.
    trace_id: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def total_seconds(self) -> float:
        return self.queue_seconds + self.exec_seconds

    def unwrap(self) -> List:
        """The result sequence, re-raising the execution error if any."""
        if self.error is not None:
            raise self.error
        assert self.results is not None
        return self.results


class _Execution:
    """Shared state of one admitted execution (leader + followers)."""

    def __init__(self, request: QueryRequest, admitted: float,
                 deadline: Optional[float]) -> None:
        self.request = request
        self.admitted = admitted
        self.deadline = deadline
        self.response: Optional[QueryResponse] = None
        self.done = threading.Event()
        #: followers coalesced onto this execution (admission lock).
        self.coalesced = 0


class PendingQuery:
    """A caller's handle on an admitted (or coalesced) request."""

    def __init__(self, execution: _Execution, coalesced: bool) -> None:
        self._execution = execution
        #: True when this handle attached to an identical in-flight
        #: request instead of enqueueing its own execution.
        self.coalesced = coalesced

    @property
    def request(self) -> QueryRequest:
        return self._execution.request

    def done(self) -> bool:
        return self._execution.done.is_set()

    def response(self, timeout: Optional[float] = None) -> QueryResponse:
        """Block until the execution finishes and return its response
        (errors stay wrapped); raises :class:`TimeoutError` if it does
        not finish within ``timeout`` seconds."""
        if not self._execution.done.wait(timeout):
            raise TimeoutError(
                f"query {self.request.query!r} still pending after "
                f"{timeout} s")
        assert self._execution.response is not None
        return self._execution.response

    def result(self, timeout: Optional[float] = None) -> List:
        """Block for the result sequence, re-raising execution errors."""
        return self.response(timeout).unwrap()


class QueryService:
    """A thread-pool query service over a :class:`DocumentCatalog`.

    ::

        catalog = DocumentCatalog()
        catalog.add_xml("site", "<site>...</site>")
        with QueryService(catalog, workers=4, queue_limit=64) as service:
            names = service.query("site", "$input//person/name")

    ``default_budgets`` apply to every request (per-request deadlines
    tighten, never loosen, the wall budget).  ``queue_limit`` bounds the
    *waiting* requests only; in-flight executions are bounded by
    ``workers``.

    With a ``tracer`` attached, every admitted request the sampler
    accepts gets a root ``request`` span covering queue wait and
    execution (``QueryResponse.trace_id`` identifies it), and finished
    traces are retained in a :class:`~repro.trace.FlightRecorder`
    (supply your own to size it; snapshot via
    :meth:`flight_recorder`).
    """

    def __init__(self, catalog: DocumentCatalog,
                 workers: int = DEFAULT_WORKERS,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 default_budgets: Optional[Budgets] = None,
                 clock=time.perf_counter,
                 tracer: Optional[Tracer] = None,
                 flight_recorder: Optional[FlightRecorder] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.catalog = catalog
        self.queue_limit = queue_limit
        self.default_budgets = default_budgets
        self.metrics = ServiceMetrics(clock=clock)
        self.tracer = tracer
        if flight_recorder is None and tracer is not None:
            flight_recorder = FlightRecorder()
        self._flight = flight_recorder
        self._clock = clock
        self._queue: "queue_module.Queue[Any]" = \
            queue_module.Queue(maxsize=queue_limit)
        self._inflight: Dict[Tuple[Hashable, ...], _Execution] = {}
        self._admission_lock = threading.Lock()
        self._in_flight_count = 0
        self._closed = False
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-serve-{index}", daemon=True)
            for index in range(workers)]
        for thread in self._workers:
            thread.start()

    # -- admission ----------------------------------------------------------

    def submit(self, request: QueryRequest) -> PendingQuery:
        """Admit, coalesce or shed a request (never blocks).

        Raises :class:`~repro.guard.ServiceOverloaded` when the
        admission queue is full and :class:`~repro.guard.ServiceClosed`
        after :meth:`close`.
        """
        self.metrics.record_submitted()
        key = request.coalesce_key()
        with self._admission_lock:
            if self._closed:
                raise ServiceClosed("query service is closed")
            existing = self._inflight.get(key)
            if existing is not None:
                self.metrics.record_coalesced()
                existing.coalesced += 1
                return PendingQuery(existing, coalesced=True)
            admitted = self._clock()
            deadline = None
            if request.timeout is not None:
                deadline = admitted + request.timeout
            execution = _Execution(request, admitted, deadline)
            try:
                self._queue.put_nowait(execution)
            except queue_module.Full:
                self.metrics.record_shed()
                raise ServiceOverloaded(
                    f"admission queue full ({self.queue_limit} waiting); "
                    f"request shed — retry later or lower concurrency",
                    queue_depth=self._queue.qsize(),
                    queue_limit=self.queue_limit) from None
            self._inflight[key] = execution
            self.metrics.record_accepted()
        return PendingQuery(execution, coalesced=False)

    def query(self, document: str, query: str,
              strategy: Optional[str] = None,
              timeout: Optional[float] = None,
              optimize: bool = True) -> List:
        """Submit one request and block for its results."""
        pending = self.submit(QueryRequest(document=document, query=query,
                                           strategy=strategy,
                                           timeout=timeout,
                                           optimize=optimize))
        return pending.result()

    # -- workers ------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            execution = self._queue.get()
            if execution is _SENTINEL:
                self._queue.task_done()
                return
            try:
                self._run(execution)
            finally:
                self._queue.task_done()

    def _run(self, execution: _Execution) -> None:
        started = self._clock()
        queue_seconds = started - execution.admitted
        with self._admission_lock:
            self._in_flight_count += 1
        response = QueryResponse(request=execution.request,
                                 queue_seconds=queue_seconds)
        trace = None
        if self.tracer is not None:
            # The root span covers the whole request: it starts
            # queue_seconds in the past *on the tracer's own clock* (the
            # service clock may differ, e.g. a fake one under test), and
            # the already-elapsed wait is recorded as a completed child.
            trace = self.tracer.begin(
                "request", start_offset=-queue_seconds,
                document=execution.request.document,
                query=execution.request.query,
                strategy=execution.request.strategy or "default")
            if trace is not None:
                trace.add_span("queue", start=trace.root.start,
                               duration=queue_seconds)
                response.trace_id = trace.trace_id
        deadline_expired = False
        try:
            request = execution.request
            remaining = None
            if execution.deadline is not None:
                remaining = execution.deadline - started
                if remaining <= 0:
                    # The deadline lapsed while queued: charge the wait,
                    # skip the execution entirely.
                    deadline_expired = True
                    raise BudgetExceeded(
                        "wall", request.timeout or 0.0, queue_seconds,
                        elapsed_seconds=queue_seconds)
            engine = self.catalog.engine(request.document)
            budgets = self._budgets_for(remaining)
            compiled = engine.compile(request.query,
                                      optimize=request.optimize,
                                      tracing=trace)
            response.results = engine.execute(
                compiled, strategy=request.strategy,
                optimized=request.optimize, budgets=budgets,
                tracing=trace)
        except Exception as err:  # typed errors travel to the waiters
            response.error = err
            if isinstance(err, BudgetExceeded) and err.kind == "wall":
                deadline_expired = True
        finally:
            response.exec_seconds = self._clock() - started
            key = execution.request.coalesce_key()
            with self._admission_lock:
                if self._inflight.get(key) is execution:
                    del self._inflight[key]
                self._in_flight_count -= 1
                coalesced = execution.coalesced
            if trace is not None:
                if response.error is not None:
                    trace.annotate(error=getattr(
                        response.error, "code",
                        type(response.error).__name__))
                trace.finish(coalesced=coalesced,
                             rows=len(response.results)
                             if response.results is not None else 0)
                if self._flight is not None:
                    self._flight.record(trace,
                                        latency=response.total_seconds)
            execution.response = response
            execution.done.set()
            self.metrics.record_done(
                latency_seconds=response.total_seconds,
                queue_seconds=queue_seconds,
                failed=response.error is not None,
                deadline_expired=deadline_expired)

    def _budgets_for(self, remaining: Optional[float]) -> Optional[Budgets]:
        """The service defaults with the wall budget tightened to the
        request's remaining deadline (whichever is smaller)."""
        budgets = self.default_budgets
        if remaining is None:
            return budgets
        if budgets is None:
            return Budgets(wall_seconds=remaining)
        if budgets.wall_seconds is None or remaining < budgets.wall_seconds:
            return replace(budgets, wall_seconds=remaining)
        return budgets

    # -- introspection ------------------------------------------------------

    def stats(self) -> ServiceStats:
        """A consistent snapshot of the service counters (see
        :class:`~repro.serve.metrics.ServiceStats`)."""
        with self._admission_lock:
            in_flight = self._in_flight_count
        return self.metrics.stats(queue_depth=self._queue.qsize(),
                                  in_flight=in_flight)

    def flight_recorder(self) -> Optional[FlightSnapshot]:
        """A snapshot of the retained request traces (the K slowest and
        most recent); ``None`` when the service runs untraced."""
        if self._flight is None:
            return None
        return self._flight.snapshot()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def worker_count(self) -> int:
        return len(self._workers)

    # -- lifecycle ----------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop admitting requests and shut the workers down.

        With ``drain=True`` (default) queued requests finish first;
        with ``drain=False`` still-queued requests fail with
        :class:`~repro.guard.ServiceClosed`.  Idempotent.
        """
        with self._admission_lock:
            if self._closed:
                return
            self._closed = True
        if not drain:
            self._fail_queued()
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for thread in self._workers:
            thread.join()
        if not drain:
            self._fail_queued()

    def _fail_queued(self) -> None:
        while True:
            try:
                execution = self._queue.get_nowait()
            except queue_module.Empty:
                return
            self._queue.task_done()
            if execution is _SENTINEL:
                continue
            execution.response = QueryResponse(
                request=execution.request,
                error=ServiceClosed("service closed before execution"))
            key = execution.request.coalesce_key()
            with self._admission_lock:
                if self._inflight.get(key) is execution:
                    del self._inflight[key]
            execution.done.set()
            self.metrics.record_done(latency_seconds=0.0, queue_seconds=0.0,
                                     failed=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
