"""The concurrent query service: admission, workers, coalescing.

:class:`QueryService` turns a :class:`~repro.serve.DocumentCatalog`
into a multi-tenant query endpoint with the three properties a serving
layer needs under load:

* **bounded admission** — requests wait in a fixed-capacity queue; when
  it is full, :meth:`QueryService.submit` sheds the request immediately
  with a typed :class:`~repro.guard.ServiceOverloaded` instead of
  letting work pile up without bound (backpressure, not collapse);
* **deadlines** — a per-request ``timeout`` becomes a wall deadline
  fixed at admission.  Time spent queued counts against it; whatever
  remains when a worker picks the request up is mapped onto
  :class:`~repro.guard.Budgets` so the engine's own governor aborts a
  slow query mid-flight — one slow query cannot starve the pool;
* **request coalescing** — identical in-flight requests (same document,
  query text, strategy and optimize flag) share a single execution: the
  first becomes the *leader*, later duplicates attach to its pending
  result and are never enqueued.  Thundering herds of a hot query cost
  one evaluation.

Results are deterministic: workers only ever *read* the shared,
immutable engines (the plan cache and summary builds are internally
locked, see PR notes in :mod:`repro.obs` / :mod:`repro.xmltree.
document`), so a response is byte-identical to a sequential
``engine.run()`` of the same request.

On top sits the **resilience layer** (:mod:`repro.serve.resilience`,
``docs/ROBUSTNESS.md``): with a :class:`~repro.serve.RetryPolicy`
failed attempts retry with deadline-aware exponential backoff (stepping
to the next fallback strategy on deterministic errors); with a
:class:`~repro.serve.BreakerPolicy` each document gets a circuit
breaker that sheds requests at admission with a typed
:class:`~repro.guard.CircuitOpen` once the document's failure rate
trips it — and, while open, queries the structural summary *proves*
empty are still answered (``QueryResponse.degraded``).  Every caller
always sees either a correct result or a typed
:class:`~repro.guard.ReproError` — never a bare exception, never a
hang: unexpected worker exceptions are wrapped in
:class:`~repro.guard.InternalError` and :meth:`QueryService.close`
sweeps abandoned executions to :class:`~repro.guard.ServiceClosed`.
"""

from __future__ import annotations

import queue as queue_module
import random
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..guard import (AlgorithmError, Budgets, BudgetExceeded, CircuitOpen,
                     InjectedFault, InternalError, ReproError,
                     ServiceClosed, ServiceOverloaded, chaos_point)
from ..trace import FlightRecorder, FlightSnapshot, Tracer
from ..xmltree.columnar import StorageError
from .catalog import DocumentCatalog
from .metrics import ServiceMetrics, ServiceStats
from .resilience import (BreakerPolicy, DocumentHealth, FATAL,
                         HealthTracker, NEXT_STRATEGY, RetryPolicy,
                         ServiceHealth, provably_empty)

__all__ = ["QueryRequest", "QueryResponse", "PendingQuery", "QueryService"]

#: errors that count against a document's health/breaker: the engine or
#: its storage failed.  Caller errors (bad query, unknown strategy) and
#: deadline trips say nothing about the document.
_HEALTH_ERRORS = (AlgorithmError, InjectedFault, InternalError,
                  StorageError)

#: default admission-queue capacity (requests waiting for a worker).
DEFAULT_QUEUE_LIMIT = 128

#: default worker count.
DEFAULT_WORKERS = 4

_SENTINEL = object()


@dataclass(frozen=True)
class QueryRequest:
    """One query against one named catalog document."""

    document: str
    query: str
    strategy: Optional[str] = None
    #: wall-clock deadline in seconds, measured from admission (queue
    #: wait included); ``None`` inherits only the service's default
    #: budgets.
    timeout: Optional[float] = None
    optimize: bool = True

    def coalesce_key(self) -> Tuple[Hashable, ...]:
        """Requests with equal keys may share one execution.  The
        deadline is deliberately excluded: a follower rides the
        leader's execution whatever its own timeout was."""
        return (self.document, self.query, self.strategy, self.optimize)


@dataclass
class QueryResponse:
    """The outcome of one executed request (shared by coalesced
    followers — ``coalesced`` on the :class:`PendingQuery` handle, not
    here, says how *this caller* got it)."""

    request: QueryRequest
    results: Optional[List] = None
    error: Optional[Exception] = None
    #: seconds from admission to a worker picking the request up.
    queue_seconds: float = 0.0
    #: seconds the worker spent compiling + executing.
    exec_seconds: float = 0.0
    #: id of this request's span trace, when the service traces (and
    #: its sampler admitted this request); ``None`` otherwise.
    trace_id: Optional[str] = None
    #: total execution attempts (1 = no retry was needed).
    attempts: int = 1
    #: True when this is a degraded-mode answer: the document's circuit
    #: was open and the summary proved the result empty (the ``[]`` is
    #: still byte-identical to a full evaluation).
    degraded: bool = False
    #: True when this is a *partial* scatter-gather answer: some shards
    #: of a clustered execution failed and the coordinator merged the
    #: ones that succeeded (see :mod:`repro.serve.cluster`,
    #: ``allow_partial=True``).  Always False on a single-process
    #: service.
    partial: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def total_seconds(self) -> float:
        return self.queue_seconds + self.exec_seconds

    def unwrap(self) -> List:
        """The result sequence, re-raising the execution error if any."""
        if self.error is not None:
            raise self.error
        assert self.results is not None
        return self.results


class _Execution:
    """Shared state of one admitted execution (leader + followers)."""

    def __init__(self, request: QueryRequest, admitted: float,
                 deadline: Optional[float]) -> None:
        self.request = request
        self.admitted = admitted
        self.deadline = deadline
        self.response: Optional[QueryResponse] = None
        self.done = threading.Event()
        #: followers coalesced onto this execution (admission lock).
        self.coalesced = 0


class PendingQuery:
    """A caller's handle on an admitted (or coalesced) request."""

    def __init__(self, execution: _Execution, coalesced: bool) -> None:
        self._execution = execution
        #: True when this handle attached to an identical in-flight
        #: request instead of enqueueing its own execution.
        self.coalesced = coalesced

    @property
    def request(self) -> QueryRequest:
        return self._execution.request

    def done(self) -> bool:
        return self._execution.done.is_set()

    def response(self, timeout: Optional[float] = None) -> QueryResponse:
        """Block until the execution finishes and return its response
        (errors stay wrapped); raises :class:`TimeoutError` if it does
        not finish within ``timeout`` seconds."""
        if not self._execution.done.wait(timeout):
            raise TimeoutError(
                f"query {self.request.query!r} still pending after "
                f"{timeout} s")
        if self.coalesced:
            chaos_point("serve.wake")
        assert self._execution.response is not None
        return self._execution.response

    def result(self, timeout: Optional[float] = None) -> List:
        """Block for the result sequence, re-raising execution errors."""
        return self.response(timeout).unwrap()


class QueryService:
    """A thread-pool query service over a :class:`DocumentCatalog`.

    ::

        catalog = DocumentCatalog()
        catalog.add_xml("site", "<site>...</site>")
        with QueryService(catalog, workers=4, queue_limit=64) as service:
            names = service.query("site", "$input//person/name")

    ``default_budgets`` apply to every request (per-request deadlines
    tighten, never loosen, the wall budget).  ``queue_limit`` bounds the
    *waiting* requests only; in-flight executions are bounded by
    ``workers``.

    With a ``tracer`` attached, every admitted request the sampler
    accepts gets a root ``request`` span covering queue wait and
    execution (``QueryResponse.trace_id`` identifies it), and finished
    traces are retained in a :class:`~repro.trace.FlightRecorder`
    (supply your own to size it; snapshot via
    :meth:`flight_recorder`).
    """

    def __init__(self, catalog: DocumentCatalog,
                 workers: int = DEFAULT_WORKERS,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 default_budgets: Optional[Budgets] = None,
                 clock=time.perf_counter,
                 tracer: Optional[Tracer] = None,
                 flight_recorder: Optional[FlightRecorder] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 breaker_policy: Optional[BreakerPolicy] = None,
                 degraded_mode: bool = True,
                 retry_seed: int = 0) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.catalog = catalog
        self.queue_limit = queue_limit
        self.default_budgets = default_budgets
        self.metrics = ServiceMetrics(clock=clock)
        self.retry_policy = retry_policy
        self.breaker_policy = breaker_policy
        #: with a breaker, serve provably-empty answers while open.
        self.degraded_mode = degraded_mode
        self.health_tracker = HealthTracker(breaker_policy=breaker_policy,
                                            clock=clock)
        self._retry_rng = random.Random(retry_seed)
        self.tracer = tracer
        if flight_recorder is None and tracer is not None:
            flight_recorder = FlightRecorder()
        self._flight = flight_recorder
        self._clock = clock
        self._queue: "queue_module.Queue[Any]" = \
            queue_module.Queue(maxsize=queue_limit)
        self._inflight: Dict[Tuple[Hashable, ...], _Execution] = {}
        self._admission_lock = threading.Lock()
        self._in_flight_count = 0
        self._closed = False
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-serve-{index}", daemon=True)
            for index in range(workers)]
        for thread in self._workers:
            thread.start()

    # -- admission ----------------------------------------------------------

    def submit(self, request: QueryRequest) -> PendingQuery:
        """Admit, coalesce or shed a request (never blocks).

        Raises :class:`~repro.guard.ServiceOverloaded` when the
        admission queue is full, :class:`~repro.guard.ServiceClosed`
        after :meth:`close`, and :class:`~repro.guard.CircuitOpen` when
        the document's breaker is open and the answer is not provably
        empty (degraded mode, see :mod:`repro.serve.resilience`).
        """
        self.metrics.record_submitted()
        chaos_point("serve.admit")
        breaker = self.health_tracker.breaker(request.document) \
            if self.breaker_policy is not None else None
        if breaker is not None and not breaker.allow():
            # Open circuit: shed at admission — no queue slot, no
            # worker.  (A duplicate that could have coalesced is shed
            # too; with the circuit open there is normally no leader to
            # ride anyway.)
            response = self._degraded_response(request)
            if response is not None:
                self.metrics.record_accepted()
                self.metrics.record_degraded()
                self.metrics.record_done(latency_seconds=0.0,
                                         queue_seconds=0.0, failed=False)
                execution = _Execution(request, self._clock(), None)
                execution.response = response
                execution.done.set()
                return PendingQuery(execution, coalesced=False)
            self.metrics.record_breaker_rejected()
            retry_after = breaker.retry_after()
            raise CircuitOpen(
                f"document {request.document!r} circuit is open "
                f"(retry in {retry_after:.2f} s)",
                document=request.document,
                retry_after_seconds=retry_after)
        key = request.coalesce_key()
        with self._admission_lock:
            if self._closed:
                raise ServiceClosed("query service is closed")
            existing = self._inflight.get(key)
            if existing is not None:
                self.metrics.record_coalesced()
                existing.coalesced += 1
                return PendingQuery(existing, coalesced=True)
            admitted = self._clock()
            deadline = None
            if request.timeout is not None:
                deadline = admitted + request.timeout
            execution = _Execution(request, admitted, deadline)
            try:
                self._queue.put_nowait(execution)
            except queue_module.Full:
                self.metrics.record_shed()
                raise ServiceOverloaded(
                    f"admission queue full ({self.queue_limit} waiting); "
                    f"request shed — retry later or lower concurrency",
                    queue_depth=self._queue.qsize(),
                    queue_limit=self.queue_limit) from None
            self._inflight[key] = execution
            self.metrics.record_accepted()
        return PendingQuery(execution, coalesced=False)

    def query(self, document: str, query: str,
              strategy: Optional[str] = None,
              timeout: Optional[float] = None,
              optimize: bool = True) -> List:
        """Submit one request and block for its results."""
        pending = self.submit(QueryRequest(document=document, query=query,
                                           strategy=strategy,
                                           timeout=timeout,
                                           optimize=optimize))
        return pending.result()

    # -- workers ------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            execution = self._queue.get()
            if execution is _SENTINEL:
                self._queue.task_done()
                return
            try:
                self._run(execution)
            finally:
                self._queue.task_done()

    def _run(self, execution: _Execution) -> None:
        started = self._clock()
        queue_seconds = started - execution.admitted
        with self._admission_lock:
            self._in_flight_count += 1
        response = QueryResponse(request=execution.request,
                                 queue_seconds=queue_seconds)
        trace = None
        deadline_expired = False
        try:
            # Everything — including trace setup — runs inside this
            # try: an exception anywhere before completion must become
            # a typed response, never a dead worker with hanging
            # waiters (the shutdown/coalesce regression).
            trace = self._begin_trace(execution, queue_seconds, response)
            self._attempt_loop(execution, response, started, trace)
        except Exception as err:  # typed errors travel to the waiters
            if not isinstance(err, ReproError):
                wrapped = InternalError(
                    f"unexpected {type(err).__name__} while serving "
                    f"{execution.request.query!r}: {err}")
                wrapped.__cause__ = err
                err = wrapped
            response.error = err
            if isinstance(err, BudgetExceeded) and err.kind == "wall":
                deadline_expired = True
        finally:
            response.exec_seconds = self._clock() - started
            key = execution.request.coalesce_key()
            with self._admission_lock:
                if self._inflight.get(key) is execution:
                    del self._inflight[key]
                self._in_flight_count -= 1
                coalesced = execution.coalesced
            if response.error is None and response.results is None:
                # A BaseException (worker being killed) skipped both
                # branches above: complete the execution typed rather
                # than leave the waiters hanging.
                response.error = InternalError(
                    "execution aborted before completion")
            if trace is not None:
                if response.error is not None:
                    trace.annotate(error=getattr(
                        response.error, "code",
                        type(response.error).__name__))
                trace.finish(coalesced=coalesced,
                             rows=len(response.results)
                             if response.results is not None else 0)
                if self._flight is not None:
                    self._flight.record(trace,
                                        latency=response.total_seconds)
            execution.response = response
            execution.done.set()
            self.metrics.record_done(
                latency_seconds=response.total_seconds,
                queue_seconds=queue_seconds,
                failed=response.error is not None,
                deadline_expired=deadline_expired)

    def _begin_trace(self, execution: _Execution, queue_seconds: float,
                     response: QueryResponse):
        if self.tracer is None:
            return None
        # The root span covers the whole request: it starts
        # queue_seconds in the past *on the tracer's own clock* (the
        # service clock may differ, e.g. a fake one under test), and
        # the already-elapsed wait is recorded as a completed child.
        trace = self.tracer.begin(
            "request", start_offset=-queue_seconds,
            document=execution.request.document,
            query=execution.request.query,
            strategy=execution.request.strategy or "default")
        if trace is not None:
            trace.add_span("queue", start=trace.root.start,
                           duration=queue_seconds)
            response.trace_id = trace.trace_id
        return trace

    def _attempt_loop(self, execution: _Execution,
                      response: QueryResponse, started: float,
                      trace) -> None:
        """Execute the request, retrying per :attr:`retry_policy`.

        Transient faults retry on the same strategy, deterministic
        engine failures step down the policy's strategy chain; no
        retry ever starts when its backoff would cross the admission
        deadline.  Attempt outcomes feed the document's health/breaker.
        """
        request = execution.request
        remaining = None
        if execution.deadline is not None:
            remaining = execution.deadline - started
            if remaining <= 0:
                # The deadline lapsed while queued: charge the wait,
                # skip the execution entirely.
                raise BudgetExceeded(
                    "wall", request.timeout or 0.0,
                    response.queue_seconds,
                    elapsed_seconds=response.queue_seconds)
        policy = self.retry_policy
        strategies: List[Optional[str]] = [request.strategy]
        if policy is not None:
            strategies = policy.attempt_strategies(request.strategy)
        level = 0
        attempt = 0
        while True:
            attempt += 1
            response.attempts = attempt
            try:
                chaos_point("serve.execute")
                engine = self.catalog.engine(request.document)
                if execution.deadline is not None:
                    remaining = execution.deadline - self._clock()
                    if remaining <= 0:
                        elapsed = self._clock() - execution.admitted
                        raise BudgetExceeded(
                            "wall", request.timeout or 0.0, elapsed,
                            elapsed_seconds=elapsed)
                budgets = self._budgets_for(remaining)
                compiled = engine.compile(request.query,
                                          optimize=request.optimize,
                                          tracing=trace)
                response.results = engine.execute(
                    compiled, strategy=strategies[level],
                    optimized=request.optimize, budgets=budgets,
                    tracing=trace)
            except Exception as err:
                if not isinstance(err, ReproError):
                    wrapped = InternalError(
                        f"unexpected {type(err).__name__} while "
                        f"serving {request.query!r}: {err}")
                    wrapped.__cause__ = err
                    err = wrapped
                if isinstance(err, _HEALTH_ERRORS):
                    self.health_tracker.record_failure(request.document,
                                                       err)
                backoff = self._retry_backoff(policy, err, attempt,
                                              execution)
                if backoff is None:
                    raise err
                if policy.classify(err) == NEXT_STRATEGY \
                        and level + 1 < len(strategies):
                    level += 1
                self.metrics.record_retried()
                if trace is not None:
                    trace.event("retry", attempt=attempt,
                                error_code=err.code,
                                strategy=strategies[level] or "default",
                                backoff_ms=round(backoff * 1e3, 3))
                if backoff > 0:
                    time.sleep(backoff)
            else:
                self.health_tracker.record_success(request.document)
                return

    def _retry_backoff(self, policy: Optional[RetryPolicy],
                       err: Exception, attempt: int,
                       execution: _Execution) -> Optional[float]:
        """Backoff seconds before the next attempt, or ``None`` to give
        up (no policy, attempts exhausted, fatal error, or the sleep
        would cross the admission deadline)."""
        if policy is None or attempt >= policy.max_attempts:
            return None
        if policy.classify(err) == FATAL:
            return None
        backoff = policy.delay(attempt, self._retry_rng)
        if execution.deadline is not None and \
                self._clock() + backoff >= execution.deadline:
            return None
        return backoff

    def _degraded_response(self,
                           request: QueryRequest) -> Optional[QueryResponse]:
        """A provably-empty ``[]`` answer servable while the circuit is
        open, or ``None`` when the summary cannot prove emptiness (the
        engine must already be built — degraded mode never triggers the
        possibly-poisoned load path)."""
        if not self.degraded_mode:
            return None
        engine = self.catalog.engine_if_built(request.document)
        if engine is None:
            return None
        try:
            compiled = engine.compile(request.query, optimize=True)
            if not provably_empty(compiled, engine):
                return None
        except Exception:
            return None
        return QueryResponse(request=request, results=[], degraded=True)

    def _budgets_for(self, remaining: Optional[float]) -> Optional[Budgets]:
        """The service defaults with the wall budget tightened to the
        request's remaining deadline (whichever is smaller)."""
        budgets = self.default_budgets
        if remaining is None:
            return budgets
        if budgets is None:
            return Budgets(wall_seconds=remaining)
        if budgets.wall_seconds is None or remaining < budgets.wall_seconds:
            return replace(budgets, wall_seconds=remaining)
        return budgets

    # -- introspection ------------------------------------------------------

    def stats(self) -> ServiceStats:
        """A consistent snapshot of the service counters (see
        :class:`~repro.serve.metrics.ServiceStats`)."""
        with self._admission_lock:
            in_flight = self._in_flight_count
        return self.metrics.stats(queue_depth=self._queue.qsize(),
                                  in_flight=in_flight)

    def flight_recorder(self) -> Optional[FlightSnapshot]:
        """A snapshot of the retained request traces (the K slowest and
        most recent); ``None`` when the service runs untraced."""
        if self._flight is None:
            return None
        return self._flight.snapshot()

    def health(self) -> ServiceHealth:
        """Per-document health: outcome counters, breaker states, the
        catalog's quarantined set, and whether each document can serve
        degraded (provably-empty) answers while circuit-open."""
        return self.health_tracker.snapshot(
            quarantined=self.catalog.quarantined_names(),
            degraded_capable=self._degraded_capable())

    def probe(self, document: str) -> DocumentHealth:
        """Run the health tracker's probe query against ``document``
        and return its refreshed health.  A successful probe closes a
        half-open breaker without waiting for real traffic."""
        self.health_tracker.probe(
            document, lambda: self.catalog.engine(document))
        return self.health_tracker.document_health(
            document,
            degraded_capable=document in self._degraded_capable())

    def _degraded_capable(self) -> set:
        if not self.degraded_mode:
            return set()
        capable = set()
        for name in self.catalog.names():
            engine = self.catalog.engine_if_built(name)
            if engine is not None and engine.use_summary:
                capable.add(name)
        return capable

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def worker_count(self) -> int:
        return len(self._workers)

    # -- lifecycle ----------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop admitting requests and shut the workers down.

        With ``drain=True`` (default) queued requests finish first;
        with ``drain=False`` still-queued requests fail with
        :class:`~repro.guard.ServiceClosed`.  Idempotent.
        """
        with self._admission_lock:
            if self._closed:
                return
            self._closed = True
        if not drain:
            self._fail_queued()
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for thread in self._workers:
            thread.join()
        # Always sweep what the workers left behind: with drain=False,
        # requests that slipped in between the first sweep and the
        # sentinels; in either mode, anything a dead worker abandoned
        # — queued executions it never picked up and in-flight ones it
        # never completed (with their coalesced followers).  Waiters
        # get a typed ServiceClosed instead of hanging forever.
        self._fail_queued()
        self._fail_abandoned()

    def _fail_queued(self) -> None:
        while True:
            try:
                execution = self._queue.get_nowait()
            except queue_module.Empty:
                return
            self._queue.task_done()
            if execution is _SENTINEL:
                continue
            execution.response = QueryResponse(
                request=execution.request,
                error=ServiceClosed("service closed before execution"))
            key = execution.request.coalesce_key()
            with self._admission_lock:
                if self._inflight.get(key) is execution:
                    del self._inflight[key]
            execution.done.set()
            self.metrics.record_done(latency_seconds=0.0, queue_seconds=0.0,
                                     failed=True)

    def _fail_abandoned(self) -> None:
        """Complete every never-finished in-flight execution with a
        typed ServiceClosed (leaders a dead worker abandoned — and
        with them every coalesced follower waiting on the same
        event)."""
        with self._admission_lock:
            executions = list(self._inflight.values())
            self._inflight.clear()
        for execution in executions:
            if execution.done.is_set():
                continue
            execution.response = QueryResponse(
                request=execution.request,
                error=ServiceClosed(
                    "service closed before the execution completed"))
            execution.done.set()
            self.metrics.record_done(latency_seconds=0.0,
                                     queue_seconds=0.0, failed=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
