"""The serving layer: many documents, many callers, one process.

The compiler (paper Figure 2) and its guardrails assume they sit inside
a *serving engine* — the setting of the source paper, whose tree-pattern
operators were built as pluggable physical operators of a reusable
XQuery engine.  This package supplies that engine-around-the-engine:

* :class:`DocumentCatalog` — named documents, one shared
  :class:`~repro.engine.Engine` each (shared plan cache + structural
  summary, built once under a lock);
* :class:`QueryService` — a worker pool behind a **bounded admission
  queue**: full queue → typed :class:`~repro.guard.ServiceOverloaded`
  shed (backpressure), per-request deadlines mapped onto
  :class:`~repro.guard.Budgets`, and **coalescing** of identical
  in-flight requests into a single execution;
* :class:`~repro.serve.metrics.ServiceMetrics` /
  :class:`~repro.serve.metrics.ServiceStats` — QPS, queue depth, shed /
  coalesce counts and a constant-memory latency histogram (p50/p95/p99);
* :mod:`repro.serve.loadgen` — a seeded closed-loop load generator that
  doubles as a concurrency differential test (``python -m repro
  serve-bench``), plus the chaos availability sweep (EXPERIMENTS E11);
* :mod:`repro.serve.resilience` — per-request retries with backoff
  (:class:`RetryPolicy`), per-document circuit breakers
  (:class:`BreakerPolicy` / :class:`CircuitBreaker`), health tracking
  (:class:`HealthTracker`, ``QueryService.health()``) and the
  degraded-mode emptiness prover; the catalog quarantines documents
  whose load hits a storage failure (:class:`QuarantineRecord`);
* :mod:`repro.serve.httpobs` — the live observability endpoint:
  :class:`ObservabilityServer` mounts ``/metrics`` (Prometheus text),
  ``/healthz``, ``/flight`` and ``/traces/<id>`` on either service
  (stdlib ``http.server``; see ``docs/OBSPLANE.md``);
* :mod:`repro.serve.cluster` — **multi-process sharded serving**:
  :class:`ClusterService` scatter-gathers shardable queries over a pool
  of worker processes (:mod:`repro.serve.worker`), each mmap-sharing
  the same saved columnar shards (:mod:`repro.xmltree.shard`), with
  per-worker circuit breakers, dead-worker respawn and optional partial
  answers (``QueryResponse.partial``).

See ``docs/SERVING.md`` for the architecture and tuning knobs and
``docs/ROBUSTNESS.md`` for the failure-handling contract.
"""

from ..guard import CircuitOpen, DocumentQuarantined, ServiceClosed, \
    ServiceOverloaded
from .catalog import DocumentCatalog, QuarantineRecord
from .httpobs import ObservabilityServer
from .cluster import (ClusterLayout, ClusterService, ClusterStats,
                      WorkerStats, merge_shard_results, scatter_plan)
from .loadgen import (ChaosCell, LoadReport, default_catalog,
                      mixed_workload, run_chaos_cell, run_chaos_sweep,
                      run_load, sequential_baseline)
from .metrics import LatencyHistogram, ServiceMetrics, ServiceStats
from .resilience import (BreakerPolicy, CircuitBreaker, DocumentHealth,
                         HealthTracker, RetryPolicy, ServiceHealth)
from .service import (PendingQuery, QueryRequest, QueryResponse,
                      QueryService)

__all__ = [
    "BreakerPolicy", "ChaosCell", "CircuitBreaker", "CircuitOpen",
    "ClusterLayout", "ClusterService", "ClusterStats",
    "DocumentCatalog", "DocumentHealth", "DocumentQuarantined",
    "HealthTracker", "LatencyHistogram", "LoadReport",
    "ObservabilityServer", "PendingQuery",
    "QuarantineRecord", "QueryRequest", "QueryResponse", "QueryService",
    "RetryPolicy", "ServiceClosed", "ServiceHealth", "ServiceMetrics",
    "ServiceOverloaded", "ServiceStats", "WorkerStats", "default_catalog",
    "merge_shard_results", "mixed_workload", "run_chaos_cell",
    "run_chaos_sweep", "run_load", "scatter_plan", "sequential_baseline",
]
