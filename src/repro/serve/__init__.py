"""The serving layer: many documents, many callers, one process.

The compiler (paper Figure 2) and its guardrails assume they sit inside
a *serving engine* — the setting of the source paper, whose tree-pattern
operators were built as pluggable physical operators of a reusable
XQuery engine.  This package supplies that engine-around-the-engine:

* :class:`DocumentCatalog` — named documents, one shared
  :class:`~repro.engine.Engine` each (shared plan cache + structural
  summary, built once under a lock);
* :class:`QueryService` — a worker pool behind a **bounded admission
  queue**: full queue → typed :class:`~repro.guard.ServiceOverloaded`
  shed (backpressure), per-request deadlines mapped onto
  :class:`~repro.guard.Budgets`, and **coalescing** of identical
  in-flight requests into a single execution;
* :class:`~repro.serve.metrics.ServiceMetrics` /
  :class:`~repro.serve.metrics.ServiceStats` — QPS, queue depth, shed /
  coalesce counts and a constant-memory latency histogram (p50/p95/p99);
* :mod:`repro.serve.loadgen` — a seeded closed-loop load generator that
  doubles as a concurrency differential test (``python -m repro
  serve-bench``).

See ``docs/SERVING.md`` for the architecture and tuning knobs.
"""

from .catalog import DocumentCatalog
from .loadgen import (LoadReport, default_catalog, mixed_workload,
                      run_load)
from .metrics import LatencyHistogram, ServiceMetrics, ServiceStats
from .service import (PendingQuery, QueryRequest, QueryResponse,
                      QueryService)

__all__ = [
    "DocumentCatalog", "LatencyHistogram", "LoadReport", "PendingQuery",
    "QueryRequest", "QueryResponse", "QueryService", "ServiceMetrics",
    "ServiceStats", "default_catalog", "mixed_workload", "run_load",
]
