"""The cluster worker: one process, mmap-opened shards, a full Engine.

Run as ``python -m repro.serve.worker`` by the
:class:`~repro.serve.cluster.ClusterService` coordinator.  The protocol
is **length-prefixed pickle frames** over the worker's stdin/stdout
pipes: an 8-byte little-endian payload length followed by the pickled
message dict (:func:`send_frame` / :func:`recv_frame`).  The worker

1. receives one ``init`` frame naming the shard layouts
   (:class:`~repro.xmltree.shard.ShardManifest` files) it serves, its
   ``worker_index``, the engine options and an optional chaos
   configuration;
2. mmap-opens shard and index files **read-only and unverified**
   (O(1); the page cache is shared with every sibling worker and the
   coordinator — no per-worker copy of the columns);
3. answers ``task`` frames — one query against one shard (or the whole
   document) — with ``result`` frames carrying either encoded result
   items or a pickled typed :class:`~repro.guard.ReproError`.

Result items are encoded store-independently as ``("n", global_pre)``
for nodes — shard-local pres are mapped through the manifest's runs, so
the coordinator can k-way merge streams from different shards in global
document order — and ``("v", value)`` for atomics.

Process hygiene: the protocol channel is a ``dup()`` of fd 1 taken at
startup, after which fd 1 is redirected onto stderr — a stray
``print`` anywhere in the engine cannot corrupt the frame stream.

Determinism under chaos: when the init frame carries chaos specs the
worker activates them for its whole lifetime with seed ``base_seed +
worker_index`` (:func:`repro.guard.worker_seed`), so a single
``REPRO_CHAOS_SEED`` reproduces the pool's fire sequences exactly.
"""

from __future__ import annotations

import os
import pickle
import struct
import sys
import time
from dataclasses import replace
from typing import Any, BinaryIO, Dict, List, Optional, Tuple

from ..engine import Engine
from ..guard import (BudgetExceeded, Budgets, InternalError, ReproError,
                     inject, worker_seed)
from ..trace import TraceContext, Tracer, pack_trace
from ..xmltree.node import Node
from ..xmltree.shard import ShardManifest

__all__ = ["ShardWorker", "recv_frame", "send_frame", "main",
           "MAX_FRAME_BYTES"]

_LENGTH = struct.Struct("<Q")

#: hard upper bound on one frame's payload — a corrupted length prefix
#: must not trigger a multi-gigabyte allocation.
MAX_FRAME_BYTES = 1 << 31


# -- framing -----------------------------------------------------------------


def send_frame(stream: BinaryIO, message: Any) -> None:
    """Write one length-prefixed pickle frame and flush."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise InternalError(
            f"cluster frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    stream.write(_LENGTH.pack(len(payload)))
    stream.write(payload)
    stream.flush()


def recv_frame(stream: BinaryIO) -> Optional[Any]:
    """Read one frame; ``None`` on a clean EOF (peer closed the pipe)."""
    header = _read_exact(stream, _LENGTH.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise InternalError(
            f"cluster frame announces {length} bytes (limit "
            f"{MAX_FRAME_BYTES}); protocol stream is corrupt")
    payload = _read_exact(stream, length, allow_eof=False)
    return pickle.loads(payload)


def _read_exact(stream: BinaryIO, count: int,
                allow_eof: bool) -> Optional[bytes]:
    chunks: List[bytes] = []
    got = 0
    while got < count:
        chunk = stream.read(count - got)
        if not chunk:
            if allow_eof and got == 0:
                return None
            raise InternalError(
                f"cluster protocol stream truncated: wanted {count} "
                f"bytes, got {got}")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def wire_safe_error(err: Exception) -> ReproError:
    """A typed error guaranteed to pickle: non-:class:`ReproError`
    exceptions are wrapped in :class:`~repro.guard.InternalError`, and
    an error whose context resists pickling is flattened to its string
    form (code preserved)."""
    if not isinstance(err, ReproError):
        wrapped = InternalError(
            f"unexpected {type(err).__name__} in cluster worker: {err}")
        wrapped.__cause__ = err
        err = wrapped
    try:
        pickle.dumps(err, protocol=pickle.HIGHEST_PROTOCOL)
        return err
    except Exception:
        return ReproError(str(err.message), code=err.code)


# -- the worker --------------------------------------------------------------


class ShardWorker:
    """Executes shard tasks against lazily opened shard engines.

    Usable in-process (the coordinator's ``transport="inline"`` test
    mode) or wrapped by :func:`main` in a subprocess.  Engines are
    cached per ``(document, shard)``; shard ``None`` is the full
    document (non-scatterable queries).
    """

    def __init__(self, worker_index: int,
                 documents: Dict[str, Dict[str, str]],
                 backend: str = "compiled",
                 use_summary: bool = True,
                 default_budgets: Optional[Budgets] = None) -> None:
        self.worker_index = worker_index
        self.backend = backend
        self.use_summary = use_summary
        self.default_budgets = default_budgets
        self._manifests: Dict[str, ShardManifest] = {}
        self._directories: Dict[str, str] = {}
        for name, spec in documents.items():
            directory = spec["directory"]
            self._directories[name] = directory
            self._manifests[name] = ShardManifest.load(
                os.path.join(directory, spec["manifest"]))
        self._engines: Dict[Tuple[str, Optional[int]], Engine] = {}
        #: worker-local tracer for sampled tasks.  Always enabled: the
        #: coordinator makes the sampling decision, and a task without
        #: a trace context never touches the tracer at all.
        self.tracer = Tracer()

    @classmethod
    def from_init(cls, init: Dict[str, Any]) -> "ShardWorker":
        options = init.get("engine", {})
        return cls(worker_index=init["worker_index"],
                   documents=init["documents"],
                   backend=options.get("backend", "compiled"),
                   use_summary=options.get("use_summary", True),
                   default_budgets=options.get("default_budgets"))

    # -- engines -------------------------------------------------------------

    def engine_for(self, document: str, shard: Optional[int]) -> Engine:
        key = (document, shard)
        engine = self._engines.get(key)
        if engine is None:
            manifest = self._manifest(document)
            directory = self._directories[document]
            file_name = manifest.index_file if shard is None \
                else manifest.shard_files[shard]
            engine = Engine.from_columnar_file(
                os.path.join(directory, file_name), verify=False,
                backend=self.backend, use_summary=self.use_summary)
            self._engines[key] = engine
        return engine

    def _manifest(self, document: str) -> ShardManifest:
        manifest = self._manifests.get(document)
        if manifest is None:
            raise InternalError(
                f"worker {self.worker_index} has no layout for "
                f"document {document!r}")
        return manifest

    # -- task handling -------------------------------------------------------

    def handle(self, task: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one ``task`` frame and build its ``result`` frame
        (errors come back typed and wire-safe, never raised).

        A task whose frame carries a trace context
        (:class:`~repro.trace.TraceContext` wire dict) runs under a
        worker-local trace; its span buffer and exact ``op_stats`` ride
        back on the result frame as a :func:`~repro.trace.pack_trace`
        payload — **relative durations and offsets only**, never
        absolute worker timestamps — for the coordinator to stitch.
        """
        started = time.perf_counter()
        context = TraceContext.from_wire(task.get("trace"))
        trace = None
        if context is not None:
            trace = self.tracer.begin(
                "worker", worker=self.worker_index,
                shard=-1 if task.get("shard") is None else task["shard"],
                remote_trace_id=context.trace_id)
        try:
            items = self._execute(task, trace)
        except Exception as err:
            frame = {"type": "result", "task_id": task["task_id"],
                     "ok": False, "error": wire_safe_error(err),
                     "exec_seconds": time.perf_counter() - started}
            if trace is not None:
                trace.annotate(error=getattr(err, "code",
                                             type(err).__name__))
                trace.finish()
                frame["trace"] = pack_trace(trace)
            return frame
        frame = {"type": "result", "task_id": task["task_id"],
                 "ok": True, "items": items,
                 "exec_seconds": time.perf_counter() - started}
        if trace is not None:
            trace.finish(rows=len(items))
            frame["trace"] = pack_trace(trace)
        return frame

    def _execute(self, task: Dict[str, Any],
                 trace=None) -> List[Tuple[str, Any]]:
        document = task["document"]
        shard = task.get("shard")
        remaining = task.get("remaining")
        if remaining is not None and remaining <= 0:
            raise BudgetExceeded("wall", task.get("timeout") or 0.0,
                                 -remaining, elapsed_seconds=-remaining)
        engine = self.engine_for(document, shard)
        compiled = engine.compile(task["query"],
                                  optimize=task.get("optimize", True),
                                  tracing=trace)
        results = engine.execute(compiled, strategy=task.get("strategy"),
                                 optimized=task.get("optimize", True),
                                 budgets=self._budgets_for(remaining),
                                 tracing=trace)
        if shard is None:
            return [("n", item.pre) if isinstance(item, Node)
                    else ("v", item) for item in results]
        runs = self._manifest(document).runs_for(shard)
        encoded: List[Tuple[str, Any]] = []
        for item in results:
            if isinstance(item, Node):
                encoded.append(("n", _to_global(runs, item.pre)))
            else:
                # The scatter planner only ships node-producing plans;
                # an atomic here means the plan walker and the engine
                # disagree — surface it loudly.
                raise InternalError(
                    f"shard task produced a non-node item "
                    f"{type(item).__name__}; query {task['query']!r} "
                    f"should not have been scattered")
        return encoded

    def _budgets_for(self, remaining: Optional[float]) -> Optional[Budgets]:
        """Tighten-only mapping of the coordinator's per-shard deadline
        onto the worker's default budgets (mirrors
        ``QueryService._budgets_for``)."""
        budgets = self.default_budgets
        if remaining is None:
            return budgets
        if budgets is None:
            return Budgets(wall_seconds=remaining)
        if budgets.wall_seconds is None or remaining < budgets.wall_seconds:
            return replace(budgets, wall_seconds=remaining)
        return budgets

    def close(self) -> None:
        for engine in self._engines.values():
            engine.document.close()
        self._engines.clear()


def _to_global(runs, local_pre: int) -> int:
    for run in runs:
        if run.local_start <= local_pre < run.local_start + run.length:
            return run.global_start + (local_pre - run.local_start)
    raise InternalError(f"result pre {local_pre} outside the shard's runs")


# -- subprocess entry --------------------------------------------------------


def main() -> int:
    """The ``python -m repro.serve.worker`` entry point."""
    # Claim the protocol channel, then point fd 1 at stderr so stray
    # stdout writes (prints, warnings) cannot corrupt the frame stream.
    proto_in = os.fdopen(os.dup(0), "rb")
    proto_out = os.fdopen(os.dup(1), "wb")
    os.dup2(2, 1)
    sys.stdout = sys.stderr

    init = recv_frame(proto_in)
    if init is None or init.get("type") != "init":
        return 1
    worker = ShardWorker.from_init(init)
    send_frame(proto_out, {"type": "ready", "pid": os.getpid(),
                           "worker_index": worker.worker_index})

    chaos = init.get("chaos")

    def serve_loop() -> None:
        while True:
            message = recv_frame(proto_in)
            if message is None or message.get("type") == "shutdown":
                return
            if message.get("type") == "task":
                send_frame(proto_out, worker.handle(message))

    try:
        if chaos and chaos.get("specs"):
            seed = worker_seed(chaos.get("seed", 0), worker.worker_index)
            with inject(*chaos["specs"], seed=seed):
                serve_loop()
        else:
            serve_loop()
    finally:
        worker.close()
        try:
            proto_out.close()
        except Exception:
            pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
