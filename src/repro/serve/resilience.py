"""Resilience primitives for the serving layer.

Four cooperating pieces let :class:`~repro.serve.QueryService` survive
partial failure instead of surfacing every fault to the caller:

* :class:`RetryPolicy` — per-request retry with exponential backoff and
  seeded jitter.  Retries are **deadline-aware** (an attempt is never
  started when its backoff sleep would cross the admission deadline)
  and **error-classified**: transient faults retry on the same
  strategy, deterministic algorithm failures step to the next strategy
  of the fallback chain (the paper's eight interchangeable physical
  algorithms are what make this cheap), and caller errors never retry.

* :class:`CircuitBreaker` / :class:`BreakerPolicy` — a per-document
  closed/open/half-open breaker over a sliding outcome window.  When a
  document's recent failure rate crosses the threshold the breaker
  opens and requests are rejected *at admission* with a typed
  :class:`~repro.guard.CircuitOpen` — a poisoned document sheds fast
  instead of burning worker threads.  After the cooldown the breaker
  half-opens and lets traffic probe; one success closes it, one
  failure re-opens it.

* :class:`HealthTracker` — per-document outcome counters, breaker
  ownership and probe queries; :meth:`HealthTracker.snapshot` is what
  :meth:`QueryService.health` returns.

* :func:`provably_empty` — the **degraded mode** test: when a
  document's circuit is open but its structural summary is healthy,
  a query whose optimized plan the summary *proves* can match nothing
  is answered with ``[]`` — byte-identical to what the full engine
  would return — instead of being rejected.  The analysis is strictly
  conservative: only plan shapes whose emptiness follows from an
  unsatisfiable bottom tree pattern qualify; everything else raises
  :class:`~repro.guard.CircuitOpen`.

See ``docs/ROBUSTNESS.md`` for the state machines and the
failure-mode table.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import (Any, Callable, Deque, Dict, Iterable, List, Optional,
                    Tuple)

from ..algebra.ops import (DDOPlan, LetPlan, MapFromItem, MapToItem, Plan,
                           Select, SeqPlan, TreeJoin, TupleTreePattern,
                           VarPlan)
from ..guard import (AlgorithmError, BudgetExceeded, DocumentQuarantined,
                     InjectedFault, InternalError)
from ..xmltree.columnar import StorageError

__all__ = [
    "BreakerPolicy", "CircuitBreaker", "DocumentHealth", "HealthTracker",
    "RetryPolicy", "ServiceHealth", "provably_empty",
    "FATAL", "RETRY", "NEXT_STRATEGY",
]

#: retry verdicts: give up, retry the same strategy, retry the next
#: strategy of the chain.
FATAL = "fatal"
RETRY = "retry"
NEXT_STRATEGY = "next-strategy"

#: breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: per-document health statuses, in increasing severity (the service
#: status is the worst of its documents').
_STATUS_ORDER = ("healthy", "degraded", "unhealthy")


# -- retry ------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """How :class:`~repro.serve.QueryService` retries a failed attempt.

    ``max_attempts`` bounds the total tries (1 = no retry); backoff for
    attempt *n* is ``base_delay * multiplier**(n-1)`` capped at
    ``max_delay``, stretched by up to ``jitter`` (a 0..1 fraction)
    drawn from the service's seeded generator.  ``strategy_chain``
    names the strategies a deterministic failure steps through, in
    order, after the request's own strategy.
    """

    max_attempts: int = 3
    base_delay: float = 0.002
    max_delay: float = 0.050
    multiplier: float = 2.0
    jitter: float = 0.5
    strategy_chain: Tuple[str, ...] = ("nljoin", "item")

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def classify(self, error: Exception) -> str:
        """The retry verdict for one failed attempt.

        * transient faults (injected chaos, storage reads, wrapped
          internal errors) → :data:`RETRY` on the same strategy;
        * deterministic engine failures (an algorithm failed, a
          non-wall budget tripped) → :data:`NEXT_STRATEGY`;
        * everything else — caller errors, wall-deadline trips,
          quarantine, an already-open circuit — → :data:`FATAL`.
        """
        if isinstance(error, BudgetExceeded):
            return FATAL if error.kind == "wall" else NEXT_STRATEGY
        if isinstance(error, AlgorithmError):
            return NEXT_STRATEGY
        if isinstance(error, DocumentQuarantined):
            return FATAL
        if isinstance(error, (InjectedFault, StorageError, InternalError)):
            return RETRY
        return FATAL

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before attempt ``attempt + 1`` (attempts are
        1-based, so the first retry sees ``attempt=1``)."""
        base = self.base_delay * self.multiplier ** max(attempt - 1, 0)
        base = min(base, self.max_delay)
        if self.jitter:
            base *= 1.0 + self.jitter * rng.random()
        return base

    def attempt_strategies(self,
                           requested: Optional[str]) -> List[Optional[str]]:
        """The strategy for each escalation level: the request's own,
        then each chain entry not already tried."""
        strategies: List[Optional[str]] = [requested]
        for name in self.strategy_chain:
            if name != requested:
                strategies.append(name)
        return strategies


# -- circuit breaker --------------------------------------------------------

@dataclass(frozen=True)
class BreakerPolicy:
    """When a per-document :class:`CircuitBreaker` trips.

    The breaker opens when at least ``min_samples`` of the last
    ``window`` attempt outcomes are recorded and the failure fraction
    reaches ``failure_threshold``; it stays open ``reset_seconds``,
    then half-opens."""

    window: int = 20
    min_samples: int = 8
    failure_threshold: float = 0.5
    reset_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.window < 1 or self.min_samples < 1:
            raise ValueError("window and min_samples must be >= 1")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")


class CircuitBreaker:
    """Closed → open → half-open breaker over a sliding outcome window.

    Thread-safe; time comes from the injectable ``clock`` so tests can
    drive the cooldown deterministically.  In the half-open state
    traffic is allowed through: the first recorded success closes the
    breaker (window cleared), the first failure re-opens it for
    another cooldown.
    """

    def __init__(self, policy: BreakerPolicy,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.policy = policy
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._opened_at = 0.0
        self._outcomes: Deque[bool] = deque(maxlen=policy.window)

    @property
    def state(self) -> str:
        with self._lock:
            self._poll()
            return self._state

    def allow(self) -> bool:
        """True when a request may proceed (closed, or half-open
        probing)."""
        with self._lock:
            self._poll()
            return self._state != OPEN

    def retry_after(self) -> float:
        """Remaining cooldown seconds; 0 unless open."""
        with self._lock:
            self._poll()
            if self._state != OPEN:
                return 0.0
            elapsed = self._clock() - self._opened_at
            return max(self.policy.reset_seconds - elapsed, 0.0)

    def record_success(self) -> None:
        with self._lock:
            self._poll()
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._outcomes.clear()
            self._outcomes.append(True)

    def record_failure(self) -> None:
        with self._lock:
            self._poll()
            if self._state == HALF_OPEN:
                self._trip()
                return
            self._outcomes.append(False)
            if len(self._outcomes) < self.policy.min_samples:
                return
            failures = sum(1 for ok in self._outcomes if not ok)
            if failures / len(self._outcomes) \
                    >= self.policy.failure_threshold:
                self._trip()

    def _poll(self) -> None:
        if self._state == OPEN and \
                self._clock() - self._opened_at >= self.policy.reset_seconds:
            self._state = HALF_OPEN

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._outcomes.clear()


# -- health tracking --------------------------------------------------------

@dataclass(frozen=True)
class DocumentHealth:
    """One document's health as seen by the service."""

    document: str
    status: str                       # healthy | degraded | unhealthy
    breaker_state: Optional[str]      # None without a breaker policy
    successes: int
    failures: int
    consecutive_failures: int
    last_error: Optional[str]         # code of the last failure
    probes: int
    last_probe_ok: Optional[bool]
    degraded_capable: bool            # summary available for degraded mode

    def to_dict(self) -> Dict[str, Any]:
        return {
            "document": self.document, "status": self.status,
            "breaker": self.breaker_state,
            "successes": self.successes, "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error, "probes": self.probes,
            "last_probe_ok": self.last_probe_ok,
            "degraded_capable": self.degraded_capable,
        }


@dataclass(frozen=True)
class ServiceHealth:
    """The :meth:`QueryService.health` snapshot."""

    status: str
    documents: Tuple[DocumentHealth, ...]
    quarantined: Tuple[str, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "documents": [doc.to_dict() for doc in self.documents],
            "quarantined": list(self.quarantined),
        }

    def report(self) -> str:
        lines = [f"service    : {self.status}"]
        for doc in self.documents:
            breaker = f" breaker={doc.breaker_state}" \
                if doc.breaker_state is not None else ""
            lines.append(
                f"  {doc.document:>10}: {doc.status}{breaker} "
                f"ok={doc.successes} fail={doc.failures} "
                f"consecutive={doc.consecutive_failures}"
                + (f" last_error={doc.last_error}"
                   if doc.last_error else ""))
        if self.quarantined:
            lines.append(
                f"quarantined: {', '.join(self.quarantined)}")
        return "\n".join(lines)


class _DocumentState:
    """Mutable per-document counters (guarded by the tracker lock)."""

    def __init__(self, breaker: Optional[CircuitBreaker]) -> None:
        self.breaker = breaker
        self.successes = 0
        self.failures = 0
        self.consecutive_failures = 0
        self.last_error: Optional[str] = None
        self.probes = 0
        self.last_probe_ok: Optional[bool] = None


class HealthTracker:
    """Per-document health: outcome counters, breakers, probe queries.

    With a ``breaker_policy`` every tracked document gets its own
    :class:`CircuitBreaker` (created on first touch); without one,
    :meth:`breaker` returns ``None`` and tracking is purely
    observational.
    """

    def __init__(self, breaker_policy: Optional[BreakerPolicy] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 probe_query: str = "$input") -> None:
        self.breaker_policy = breaker_policy
        self.probe_query = probe_query
        self._clock = clock
        self._lock = threading.Lock()
        self._documents: Dict[str, _DocumentState] = {}

    def _state(self, document: str) -> _DocumentState:
        state = self._documents.get(document)
        if state is None:
            breaker = CircuitBreaker(self.breaker_policy, self._clock) \
                if self.breaker_policy is not None else None
            state = self._documents.setdefault(
                document, _DocumentState(breaker))
        return state

    def breaker(self, document: str) -> Optional[CircuitBreaker]:
        with self._lock:
            return self._state(document).breaker

    def record_success(self, document: str) -> None:
        with self._lock:
            state = self._state(document)
            state.successes += 1
            state.consecutive_failures = 0
            breaker = state.breaker
        if breaker is not None:
            breaker.record_success()

    def record_failure(self, document: str, error: Exception) -> None:
        with self._lock:
            state = self._state(document)
            state.failures += 1
            state.consecutive_failures += 1
            state.last_error = getattr(error, "code",
                                       type(error).__name__)
            breaker = state.breaker
        if breaker is not None:
            breaker.record_failure()

    def probe(self, document: str,
              engine_supplier: Callable[[], Any]) -> bool:
        """Run the cheap probe query against the document's engine and
        record the outcome (feeding the breaker, so a successful probe
        closes a half-open circuit without real traffic)."""
        try:
            engine = engine_supplier()
            engine.run(self.probe_query)
        except Exception as err:
            with self._lock:
                state = self._state(document)
                state.probes += 1
                state.last_probe_ok = False
            self.record_failure(document, err)
            return False
        with self._lock:
            state = self._state(document)
            state.probes += 1
            state.last_probe_ok = True
        self.record_success(document)
        return True

    def document_health(self, document: str,
                        degraded_capable: bool = False) -> DocumentHealth:
        with self._lock:
            state = self._state(document)
            breaker_state = state.breaker.state \
                if state.breaker is not None else None
            return DocumentHealth(
                document=document,
                status=self._status(state, breaker_state,
                                    degraded_capable),
                breaker_state=breaker_state,
                successes=state.successes, failures=state.failures,
                consecutive_failures=state.consecutive_failures,
                last_error=state.last_error, probes=state.probes,
                last_probe_ok=state.last_probe_ok,
                degraded_capable=degraded_capable)

    @staticmethod
    def _status(state: _DocumentState, breaker_state: Optional[str],
                degraded_capable: bool) -> str:
        if breaker_state == OPEN:
            return "degraded" if degraded_capable else "unhealthy"
        if breaker_state == HALF_OPEN or state.consecutive_failures > 0:
            return "degraded"
        return "healthy"

    def snapshot(self, quarantined: Iterable[str] = (),
                 degraded_capable: Iterable[str] = ()) -> ServiceHealth:
        """The full health snapshot.  ``degraded_capable`` names the
        documents whose summary can serve provably-empty answers while
        circuit-open (the service computes this)."""
        capable = set(degraded_capable)
        with self._lock:
            names = sorted(self._documents)
        documents = tuple(
            self.document_health(name, degraded_capable=name in capable)
            for name in names)
        quarantined = tuple(sorted(quarantined))
        status = "healthy"
        for doc in documents:
            if _STATUS_ORDER.index(doc.status) > \
                    _STATUS_ORDER.index(status):
                status = doc.status
        if quarantined and status == "healthy":
            status = "degraded"
        return ServiceHealth(status=status, documents=documents,
                             quarantined=quarantined)


# -- degraded mode: the provably-empty analyzer -----------------------------

def provably_empty(compiled, engine) -> bool:
    """True only when the structural summary *proves* the compiled
    query's result is empty.

    Sound by construction: the only emptiness source accepted is a
    bottom :class:`TupleTreePattern` whose input binds a document-root
    variable and whose pattern path the summary rejects
    (``can_match(...) is False`` — itself conservative), propagated
    upward through operators that map empty input to empty output
    (``MapToItem``, ``TreeJoin``, ``DDO``, ``Select``, nested
    patterns, ``Let`` bodies, all-empty sequences).  Any other shape —
    constants, function calls, arithmetic, unknown operators — returns
    False, so a degraded answer of ``[]`` is always byte-identical to
    what the full engine would have produced.
    """
    if not getattr(engine, "use_summary", False):
        return False
    try:
        summary = engine.document.summary
        if summary is None:
            return False
        root = [engine.document.root]
        roots = {compiled.normalized.context_var}
        roots.update(compiled.normalized.global_vars.values())
        return _item_empty(compiled.optimized, summary, root, roots)
    except Exception:
        return False


def _item_empty(plan: Plan, summary, root, roots) -> bool:
    if isinstance(plan, MapToItem):
        return _tuple_empty(plan.input, summary, root, roots)
    if isinstance(plan, (DDOPlan, TreeJoin)):
        return _item_empty(plan.input, summary, root, roots)
    if isinstance(plan, SeqPlan):
        return all(_item_empty(item, summary, root, roots)
                   for item in plan.items)
    if isinstance(plan, LetPlan):
        return _item_empty(plan.body, summary, root, roots)
    return False


def _tuple_empty(plan: Plan, summary, root, roots) -> bool:
    if isinstance(plan, TupleTreePattern):
        if _tuple_empty(plan.input, summary, root, roots):
            return True
        inner = plan.input
        if isinstance(inner, MapFromItem) \
                and isinstance(inner.input, VarPlan) \
                and inner.input.var in roots:
            # The bottom pattern evaluates against the document root:
            # the summary's verdict is authoritative (and conservative).
            return not summary.can_match(plan.pattern.path, root)
        return False
    if isinstance(plan, Select):
        return _tuple_empty(plan.input, summary, root, roots)
    return False
