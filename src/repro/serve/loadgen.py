"""Closed-loop load generator for :class:`~repro.serve.QueryService`.

Drives a service with a **seeded, mixed workload** — the paper's QE1–QE6
tree-pattern queries over a MemBeR document plus a slice of the adapted
XMark catalog — from N closed-loop clients (each waits for its response
before sending the next request, the standard closed-loop model whose
offered load adapts to service capacity).

Every response is checked against a **sequential baseline** computed on
the same engines before the load starts, so the harness doubles as a
concurrency differential test: any mismatch means a thread-safety bug,
and :class:`LoadReport` carries the count for CI to fail on
(``python -m repro serve-bench --check``).

Determinism: the request *schedule* is seeded per client; wall-clock
latencies of course vary run to run, result sets never do.

The **chaos sweep** (:func:`run_chaos_sweep`, CLI ``serve-bench
--chaos-rate``, EXPERIMENTS E11) re-runs the same closed loop with a
fault injected at a serve-layer chaos site at increasing rates, with
retries and the per-document circuit breaker toggled on and off, and
measures *availability* — the fraction of requests answered
successfully — plus the two invariants the resilience layer
guarantees: every failure carries a typed
:class:`~repro.guard.ReproError` code, and every success is
byte-identical to the no-chaos sequential baseline.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bench.harness import QE_QUERIES, scaled
from ..bench.xmark_queries import XMARK_CATALOG
from ..data import member_document, xmark_document
from ..guard import ChaosSpec, ReproError, ServiceOverloaded, inject
from .catalog import DocumentCatalog
from .metrics import ServiceStats
from .resilience import BreakerPolicy, RetryPolicy
from .service import QueryRequest, QueryService

__all__ = ["ChaosCell", "LoadReport", "default_catalog", "mixed_workload",
           "run_chaos_cell", "run_chaos_sweep", "run_load",
           "sequential_baseline"]

#: XMark catalog entries in the default mix (construction-free,
#: non-positional, cheap enough for a load loop).
_XMARK_PICKS = ("XQ1", "XQ3", "XQ6", "XQ13", "XQ15", "XQ19")

#: strategies cycled through the mix; ``None`` means the engine default.
_STRATEGY_MIX: Tuple[Optional[str], ...] = (None, "twigjoin", "scjoin",
                                            "auto")


def default_catalog(member_nodes: int = 4_000,
                    xmark_persons: int = 60,
                    seed: int = 20070415) -> DocumentCatalog:
    """The benchmark catalog: one MemBeR and one XMark document, sized
    through ``REPRO_SCALE`` like every other benchmark workload."""
    catalog = DocumentCatalog()
    catalog.add_factory(
        "member", lambda: member_document(scaled(member_nodes), depth=4,
                                          tag_count=100, seed=seed))
    catalog.add_factory(
        "xmark", lambda: xmark_document(scaled(xmark_persons, minimum=10),
                                        seed=seed))
    return catalog


def mixed_workload(seed: int = 1) -> List[QueryRequest]:
    """The deterministic request mix: QE1–QE6 on ``member`` and the
    XMark picks on ``xmark``, each appearing once per strategy in the
    rotation, shuffled by ``seed``."""
    entries: List[Tuple[str, str]] = \
        [("member", query) for query in QE_QUERIES.values()] + \
        [("xmark", XMARK_CATALOG[name].query) for name in _XMARK_PICKS]
    requests = [
        QueryRequest(document=document, query=query,
                     strategy=_STRATEGY_MIX[index % len(_STRATEGY_MIX)])
        for index, (document, query) in enumerate(entries)]
    random.Random(seed).shuffle(requests)
    return requests


def _result_key(results: List) -> Tuple:
    """A comparable key for a result sequence: node identity (``pre``)
    for nodes, the value itself for atomics."""
    return tuple(getattr(item, "pre", item) for item in results)


@dataclass
class LoadReport:
    """What one :func:`run_load` observed."""

    workers: int
    concurrency: int
    attempted: int
    succeeded: int
    shed: int
    errors: int
    mismatches: int
    coalesced: int
    wall_seconds: float
    stats: ServiceStats
    #: error strings of non-shed failures, bounded (first 8).
    error_samples: List[str] = field(default_factory=list)
    #: failures that were NOT typed :class:`ReproError`\ s — the
    #: resilience layer's contract is that this stays zero even under
    #: chaos (see ``docs/ROBUSTNESS.md``).
    bare_errors: int = 0

    @property
    def throughput(self) -> float:
        return self.succeeded / self.wall_seconds \
            if self.wall_seconds > 0 else 0.0

    @property
    def availability(self) -> float:
        """Fraction of attempted requests answered successfully."""
        return self.succeeded / self.attempted if self.attempted else 1.0

    def row(self) -> Dict[str, float]:
        """One table row for the benchmark renderer."""
        return {
            "clients": self.concurrency,
            "qps": self.throughput,
            "p50_ms": self.stats.latency_p50 * 1e3,
            "p95_ms": self.stats.latency_p95 * 1e3,
            "p99_ms": self.stats.latency_p99 * 1e3,
            "shed": self.shed,
            "coalesced": self.coalesced,
        }

    def report(self) -> str:
        lines = [
            f"load       : {self.concurrency} clients x closed loop, "
            f"{self.workers} workers",
            f"requests   : attempted={self.attempted} "
            f"succeeded={self.succeeded} shed={self.shed} "
            f"errors={self.errors} (bare={self.bare_errors}) "
            f"mismatches={self.mismatches} "
            f"availability={self.availability:.4f}",
            f"throughput : {self.throughput:.1f} qps "
            f"({self.wall_seconds:.2f} s wall)",
        ]
        lines.extend(self.stats.report().splitlines())
        for sample in self.error_samples:
            lines.append(f"error      : {sample}")
        return "\n".join(lines)


def sequential_baseline(service: QueryService,
                        workload: List[QueryRequest]) -> Dict[Tuple, Tuple]:
    """Result keys for every workload entry, computed sequentially on
    the service's own engines.  Run this *before* enabling chaos so the
    baseline reflects fault-free answers."""
    expected: Dict[Tuple, Tuple] = {}
    for request in workload:
        engine = service.catalog.engine(request.document)
        compiled = engine.compile(request.query, optimize=request.optimize)
        results = engine.execute(compiled, strategy=request.strategy,
                                 optimized=request.optimize)
        expected[request.coalesce_key()] = _result_key(results)
    return expected


def run_load(service: QueryService,
             workload: Optional[List[QueryRequest]] = None,
             concurrency: int = 8,
             requests_per_client: int = 25,
             seed: int = 1,
             timeout: Optional[float] = None,
             coalesce_burst: int = 4,
             expected: Optional[Dict[Tuple, Tuple]] = None) -> LoadReport:
    """Run the closed loop and return a verified :class:`LoadReport`.

    ``timeout`` attaches a per-request deadline; ``coalesce_burst``
    submits that many back-to-back duplicates of the first workload
    entry before the clients start, exercising the coalescing path
    deterministically (0 disables).  ``expected`` supplies a
    precomputed :func:`sequential_baseline` (the chaos sweep computes
    it once, outside the fault injection context).
    """
    workload = workload if workload is not None else mixed_workload(seed)
    if not workload:
        raise ValueError("workload must contain at least one request")
    if expected is None:
        # Sequential baseline on the same engines, before any concurrency.
        expected = sequential_baseline(service, workload)

    lock = threading.Lock()
    totals = {"attempted": 0, "succeeded": 0, "shed": 0, "errors": 0,
              "mismatches": 0, "bare_errors": 0}
    error_samples: List[str] = []

    def record_error(err: Exception, bare: bool = False) -> None:
        with lock:
            totals["errors"] += 1
            if bare:
                totals["bare_errors"] += 1
            if len(error_samples) < 8:
                error_samples.append(f"{type(err).__name__}: {err}")

    def check(request: QueryRequest, results: List) -> None:
        with lock:
            totals["succeeded"] += 1
            if _result_key(results) != expected[request.coalesce_key()]:
                totals["mismatches"] += 1

    def client(client_index: int) -> None:
        rng = random.Random(seed * 7919 + client_index)
        for _ in range(requests_per_client):
            request = workload[rng.randrange(len(workload))]
            if timeout is not None:
                request = QueryRequest(document=request.document,
                                       query=request.query,
                                       strategy=request.strategy,
                                       timeout=timeout,
                                       optimize=request.optimize)
            with lock:
                totals["attempted"] += 1
            try:
                results = service.submit(request).result()
            except ServiceOverloaded:
                with lock:
                    totals["shed"] += 1
                continue
            except ReproError as err:
                record_error(err)
                continue
            except Exception as err:  # the contract says this can't happen
                record_error(err, bare=True)
                continue
            check(request, results)

    start = time.perf_counter()
    if coalesce_burst:
        # A back-to-back duplicate burst: the first submit becomes the
        # leader (a worker needs milliseconds to pick it up and run it;
        # the follow-up submits land microseconds later), the rest
        # coalesce onto it.
        burst = [service.submit(workload[0])
                 for _ in range(max(coalesce_burst, 1))]
        for pending in burst:
            with lock:
                totals["attempted"] += 1
            try:
                check(workload[0], pending.result())
            except ReproError as err:
                record_error(err)
            except Exception as err:
                record_error(err, bare=True)
    threads = [threading.Thread(target=client, args=(index,),
                                name=f"loadgen-{index}")
               for index in range(concurrency)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start

    stats = service.stats()
    return LoadReport(workers=service.worker_count,
                      concurrency=concurrency,
                      attempted=totals["attempted"],
                      succeeded=totals["succeeded"],
                      shed=totals["shed"], errors=totals["errors"],
                      mismatches=totals["mismatches"],
                      coalesced=stats.coalesced,
                      wall_seconds=wall, stats=stats,
                      error_samples=error_samples,
                      bare_errors=totals["bare_errors"])


# -- chaos sweep (EXPERIMENTS E11) ------------------------------------------


@dataclass(frozen=True)
class ChaosCell:
    """One cell of the availability grid: a chaos configuration plus
    the :class:`LoadReport` observed under it."""

    rate: float
    retry: bool
    breaker: bool
    site: str
    action: str
    report: LoadReport

    def row(self) -> Dict[str, object]:
        report = self.report
        return {
            "rate_pct": self.rate * 100.0,
            "retry": "on" if self.retry else "off",
            "breaker": "on" if self.breaker else "off",
            "availability_pct": report.availability * 100.0,
            "retried": report.stats.retried,
            "errors": report.errors,
            "bare": report.bare_errors,
            "mismatches": report.mismatches,
        }


def run_chaos_cell(rate: float,
                   retry: bool = True,
                   breaker: bool = True,
                   site: str = "serve.execute",
                   action: str = "raise",
                   delay_seconds: float = 0.005,
                   workers: int = 4,
                   concurrency: int = 8,
                   requests_per_client: int = 25,
                   seed: int = 1,
                   chaos_seed: Optional[int] = None,
                   catalog: Optional[DocumentCatalog] = None) -> ChaosCell:
    """Run one chaos cell: a fresh service over ``catalog`` (or the
    default one), the standard mixed workload, and a fault injected at
    ``site`` at ``rate`` while the load runs.

    The sequential baseline is computed *before* injection starts so
    successes are compared against fault-free answers.
    """
    catalog = catalog if catalog is not None else default_catalog()
    service = QueryService(
        catalog, workers=workers,
        retry_policy=RetryPolicy() if retry else None,
        breaker_policy=BreakerPolicy() if breaker else None)
    try:
        workload = mixed_workload(seed)
        expected = sequential_baseline(service, workload)
        spec = ChaosSpec(site=site, action=action, rate=rate,
                         delay_seconds=delay_seconds)
        if rate > 0:
            with inject(spec, seed=chaos_seed):
                report = run_load(service, workload,
                                  concurrency=concurrency,
                                  requests_per_client=requests_per_client,
                                  seed=seed, expected=expected)
        else:
            report = run_load(service, workload, concurrency=concurrency,
                              requests_per_client=requests_per_client,
                              seed=seed, expected=expected)
        return ChaosCell(rate=rate, retry=retry, breaker=breaker,
                         site=site, action=action, report=report)
    finally:
        service.close()


def run_chaos_sweep(rates: Sequence[float] = (0.0, 0.01, 0.05, 0.10),
                    site: str = "serve.execute",
                    action: str = "raise",
                    requests_per_client: int = 25,
                    seed: int = 1,
                    chaos_seed: Optional[int] = None) -> List[ChaosCell]:
    """The E11 grid: ``rates`` × retry on/off × breaker on/off.

    Rate 0.0 runs once per resilience configuration as the control
    row (availability 1.0, zero retries expected)."""
    cells: List[ChaosCell] = []
    for rate in rates:
        for retry, breaker in ((True, True), (True, False),
                               (False, True), (False, False)):
            cells.append(run_chaos_cell(
                rate, retry=retry, breaker=breaker, site=site,
                action=action, requests_per_client=requests_per_client,
                seed=seed, chaos_seed=chaos_seed))
    return cells
