"""``repro top``: a refreshing ops console over the scrape endpoint.

Polls an :class:`~repro.serve.httpobs.ObservabilityServer` and renders
a terminal table of the serving layer's vitals — qps, p50/p95/p99,
shed count, breaker states — per document and per shard.  The console
deliberately consumes the **public telemetry formats** rather than any
in-process API: qps comes from counter deltas between two ``/metrics``
scrapes, quantiles from the cumulative histogram buckets, breaker and
liveness states from ``/healthz`` — so anything Prometheus could
compute, the console computes the same way, and a console run doubles
as an end-to-end exercise of the scrape path.

The pieces are separable for tests: :func:`parse_prometheus` (text →
samples), :func:`histogram_quantile` (buckets → quantile, the PromQL
``histogram_quantile`` estimator), :class:`ConsoleState` (two scrapes
→ rendered table, no I/O), and :func:`run_console` (the polling loop
behind the CLI).  See ``docs/OBSPLANE.md``.
"""

from __future__ import annotations

import json
import re
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["ConsoleState", "Sample", "histogram_quantile",
           "parse_prometheus", "run_console", "scrape"]

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$")
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:\\.|[^"\\])*)"')


@dataclass(frozen=True)
class Sample:
    """One exposition sample: raw metric name, labels, value."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float

    def label(self, key: str, default: str = "") -> str:
        for name, value in self.labels:
            if name == key:
                return value
        return default


def _unescape(value: str) -> str:
    return (value.replace(r"\n", "\n").replace(r"\"", '"')
            .replace("\\\\", "\\"))


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus(text: str) -> List[Sample]:
    """Parse exposition text into samples (comments skipped)."""
    samples: List[Sample] = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if not match:
            continue
        labels = tuple(
            (key, _unescape(raw))
            for key, raw in _LABEL.findall(match.group("labels") or ""))
        samples.append(Sample(name=match.group("name"), labels=labels,
                              value=_parse_value(match.group("value"))))
    return samples


def histogram_quantile(q: float,
                       buckets: Iterable[Tuple[float, float]]) -> float:
    """The PromQL ``histogram_quantile`` estimator over cumulative
    ``(le, count)`` buckets: find the bucket the rank falls in and
    interpolate linearly inside it (the +Inf bucket clamps to the last
    finite bound)."""
    ordered = sorted(buckets, key=lambda pair: pair[0])
    if not ordered:
        return 0.0
    total = ordered[-1][1]
    if total <= 0:
        return 0.0
    rank = q * total
    previous_bound, previous_count = 0.0, 0.0
    for bound, count in ordered:
        if count >= rank:
            if bound == float("inf"):
                return previous_bound
            span = count - previous_count
            if span <= 0:
                return bound
            fraction = (rank - previous_count) / span
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_count = bound, count
    return previous_bound


# -- scrape ------------------------------------------------------------------


def scrape(url: str, timeout: float = 5.0) -> Tuple[str, Dict[str, Any]]:
    """One poll: ``/metrics`` text plus the parsed ``/healthz`` JSON
    (``/healthz`` answers 503 with a JSON body when unhealthy — that is
    data, not an error)."""
    base = url.rstrip("/")
    with urllib.request.urlopen(base + "/metrics",
                                timeout=timeout) as response:
        metrics = response.read().decode("utf-8")
    try:
        with urllib.request.urlopen(base + "/healthz",
                                    timeout=timeout) as response:
            health = json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as err:
        health = json.loads(err.read().decode("utf-8"))
    return metrics, health


# -- the console model -------------------------------------------------------


_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


@dataclass
class _Window:
    """Counter values at the previous scrape, for delta rates."""

    at: float = 0.0
    counters: Dict[_Key, float] = field(default_factory=dict)


class ConsoleState:
    """Turns consecutive scrapes into a rendered table (no I/O).

    Rates (qps, shed/s) are deltas between the last two scrapes;
    quantiles are delta-histograms over the same window when the window
    saw traffic, falling back to the cumulative distribution otherwise
    (first scrape, idle window).
    """

    def __init__(self) -> None:
        self._previous = _Window()
        self._scrapes = 0

    # -- update --------------------------------------------------------------

    def update(self, metrics_text: str, health: Dict[str, Any],
               now: Optional[float] = None) -> str:
        """Fold one scrape in and return the rendered table."""
        now = time.monotonic() if now is None else now
        samples = parse_prometheus(metrics_text)
        counters = {(sample.name, sample.labels): sample.value
                    for sample in samples}
        elapsed = now - self._previous.at \
            if self._previous.counters else 0.0
        self._scrapes += 1
        text = self._render(samples, counters, health, elapsed)
        self._previous = _Window(at=now, counters=counters)
        return text

    def _delta(self, counters: Dict[_Key, float], name: str,
               labels: Tuple[Tuple[str, str], ...] = ()) -> float:
        key = (name, labels)
        value = counters.get(key, 0.0)
        if not self._previous.counters:
            return 0.0
        return max(value - self._previous.counters.get(key, 0.0), 0.0)

    def _rate(self, counters: Dict[_Key, float], name: str,
              elapsed: float,
              labels: Tuple[Tuple[str, str], ...] = ()) -> float:
        if elapsed <= 0:
            return 0.0
        return self._delta(counters, name, labels) / elapsed

    def _quantiles(self, samples: List[Sample],
                   counters: Dict[_Key, float], family: str,
                   group: Tuple[Tuple[str, str], ...]
                   ) -> Tuple[float, float, float, float]:
        """(p50, p95, p99, window count) for one histogram series,
        preferring the delta distribution over the scrape window."""
        cumulative: List[Tuple[float, float]] = []
        delta: List[Tuple[float, float]] = []
        for sample in samples:
            if sample.name != family + "_bucket":
                continue
            rest = tuple((key, value) for key, value in sample.labels
                         if key != "le")
            if rest != group:
                continue
            bound = _parse_value(sample.label("le"))
            cumulative.append((bound, sample.value))
            delta.append((bound, self._delta(counters, sample.name,
                                             sample.labels)))
        window = max((count for _bound, count in delta), default=0.0)
        buckets = delta if window > 0 else cumulative
        return (histogram_quantile(0.50, buckets),
                histogram_quantile(0.95, buckets),
                histogram_quantile(0.99, buckets),
                window)

    # -- render --------------------------------------------------------------

    def _render(self, samples: List[Sample],
                counters: Dict[_Key, float], health: Dict[str, Any],
                elapsed: float) -> str:
        lines: List[str] = []
        status = health.get("status", "?")
        qps = self._rate(counters, "repro_requests_completed_total",
                         elapsed)
        shed = self._rate(counters, "repro_requests_shed_total", elapsed)
        p50, p95, p99, _ = self._quantiles(
            samples, counters, "repro_request_latency_seconds", ())
        lines.append(
            f"repro top · scrape #{self._scrapes} · status={status} · "
            f"queue={health.get('queue_depth', 0)} "
            f"in_flight={health.get('in_flight', 0)}")
        lines.append(
            f"service    qps={qps:7.1f}  p50={_ms(p50)}  p95={_ms(p95)}  "
            f"p99={_ms(p99)}  shed/s={shed:.1f}")
        shard_rows = self._shard_rows(samples, counters, elapsed)
        if shard_rows:
            lines.append(f"{'document':<12} {'shard':>6} {'qps':>8} "
                         f"{'p50':>9} {'p95':>9} {'p99':>9} {'n':>8}")
            lines.extend(shard_rows)
        lines.extend(self._document_rows(health))
        lines.extend(self._worker_rows(health))
        return "\n".join(lines)

    def _shard_rows(self, samples: List[Sample],
                    counters: Dict[_Key, float],
                    elapsed: float) -> List[str]:
        family = "repro_cluster_shard_latency_seconds"
        groups: List[Tuple[Tuple[Tuple[str, str], ...], float]] = []
        for sample in samples:
            if sample.name != family + "_count" or sample.labels in \
                    [group for group, _count in groups]:
                continue
            groups.append((sample.labels, sample.value))
        rows = []
        for group, count in sorted(groups):
            document = dict(group).get("document", "?")
            shard = dict(group).get("shard", "?")
            qps = self._rate(counters, family + "_count", elapsed, group)
            p50, p95, p99, _ = self._quantiles(samples, counters,
                                               family, group)
            rows.append(
                f"{document:<12} {shard:>6} {qps:>8.1f} "
                f"{_ms(p50):>9} {_ms(p95):>9} {_ms(p99):>9} "
                f"{int(count):>8}")
        return rows

    def _document_rows(self, health: Dict[str, Any]) -> List[str]:
        documents = health.get("documents")
        if not isinstance(documents, dict):
            return []
        rows = []
        for doc in documents.get("documents", []):
            breaker = doc.get("breaker_state") or "off"
            rows.append(
                f"doc {doc.get('document', '?'):<10} "
                f"status={doc.get('status', '?'):<8} "
                f"breaker={breaker:<9} "
                f"ok={doc.get('successes', 0)} "
                f"fail={doc.get('failures', 0)}")
        return rows

    def _worker_rows(self, health: Dict[str, Any]) -> List[str]:
        workers = health.get("workers")
        if not isinstance(workers, list):
            return []
        rows = []
        for worker in workers:
            rows.append(
                f"worker {worker.get('index', '?'):>3} "
                f"{'alive' if worker.get('alive') else 'DEAD ':<5} "
                f"breaker={worker.get('breaker_state', '?'):<9} "
                f"queue={worker.get('queue_depth', 0):<4} "
                f"done={worker.get('completed', 0):<7} "
                f"busy={worker.get('busy_seconds', 0.0):.2f}s")
        return rows


def _ms(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:6.2f}s"
    return f"{seconds * 1e3:6.2f}ms"


def run_console(url: str, interval: float = 2.0,
                iterations: Optional[int] = None, out=None,
                clear: bool = True) -> int:
    """The ``repro top`` loop: scrape, render, sleep, repeat.

    ``iterations=None`` runs until interrupted; a finite count makes
    the command scriptable (and CI-testable).  Returns 0, or 1 when the
    first scrape fails (endpoint not reachable)."""
    import sys
    out = sys.stdout if out is None else out
    state = ConsoleState()
    count = 0
    while iterations is None or count < iterations:
        try:
            metrics, health = scrape(url)
        except (urllib.error.URLError, OSError, ValueError) as err:
            if count == 0:
                print(f"repro top: cannot scrape {url}: {err}", file=out)
                return 1
            print(f"repro top: scrape failed ({err}); retrying",
                  file=out)
            time.sleep(interval)
            continue
        table = state.update(metrics, health)
        if clear and count:
            print("\x1b[2J\x1b[H", end="", file=out)
        print(table, file=out, flush=True)
        count += 1
        if iterations is None or count < iterations:
            time.sleep(interval)
    return 0
