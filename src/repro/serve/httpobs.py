"""The live observability endpoint: scrape the serve layer over HTTP.

A tiny stdlib-only (:mod:`http.server`) HTTP front-end that mounts on a
running :class:`~repro.serve.QueryService` or
:class:`~repro.serve.ClusterService` and exposes the telemetry plane:

``/metrics``
    Prometheus text exposition over the merged registries — service
    counters and latency histograms, tracer aggregates, and (cluster
    mode) the per-worker and per-shard series.  This is the scrape
    target ``repro top`` polls.
``/healthz``
    JSON liveness/health: overall status, per-document breaker states
    (:meth:`QueryService.health`), per-worker liveness and queue depth
    (cluster mode), and queue/in-flight gauges.  Answers ``200`` when
    healthy, ``503`` otherwise, so it slots straight into a probe.
``/flight``
    The :class:`~repro.trace.FlightSnapshot` as JSON — the K slowest
    and most recent retained request traces.
``/traces/<id>``
    One retained trace by id; ``?format=chrome`` renders it as Chrome
    trace-event JSON (for a stitched cluster trace this shows worker
    spans nested under the coordinator root).

The server is deliberately read-only — every handler snapshots through
the same public accessors tests use (``stats()``, ``health()``,
``cluster_stats()``, ``flight_recorder()``), so a scrape can never
mutate service state.  It duck-types the service: cluster-only
sections appear exactly when the service grows the corresponding
accessor.  See ``docs/OBSPLANE.md``.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..trace import chrome_trace, prometheus_text

__all__ = ["ObservabilityServer", "CONTENT_TYPE_PROMETHEUS"]

#: the content type Prometheus expects from a text-format scrape.
CONTENT_TYPE_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"


class ObservabilityServer:
    """Serves ``/metrics``, ``/healthz``, ``/flight`` and
    ``/traces/<id>`` for one service instance.

    ``port=0`` (the default) binds an ephemeral port; read the bound
    address back from :attr:`url`.  The server runs ``serve_forever``
    on a daemon thread and each request on its own thread
    (:class:`~http.server.ThreadingHTTPServer`), so a slow scraper
    never blocks the service — handlers only take snapshots.
    """

    def __init__(self, service: Any, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            # Observability must not spam the serving process's stderr.
            def log_message(self, format: str, *args: Any) -> None:
                pass

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                try:
                    status, content_type, body = outer._route(self.path)
                except Exception as err:  # pragma: no cover - defensive
                    status, content_type, body = 500, "application/json", \
                        json.dumps({"error": str(err)}).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ObservabilityServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-obsplane", daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- routing -------------------------------------------------------------

    def _route(self, path: str) -> Tuple[int, str, bytes]:
        parsed = urlparse(path)
        route = parsed.path.rstrip("/") or "/"
        if route == "/metrics":
            return self._metrics()
        if route == "/healthz":
            return self._healthz()
        if route == "/flight":
            return self._flight()
        if route.startswith("/traces/"):
            query = parse_qs(parsed.query)
            trace_format = query.get("format", ["json"])[0]
            return self._trace(route[len("/traces/"):], trace_format)
        if route == "/":
            return _json_response(200, {
                "endpoints": ["/metrics", "/healthz", "/flight",
                              "/traces/<id>"]})
        return _json_response(404, {"error": f"no route {route!r}"})

    # -- handlers ------------------------------------------------------------

    def _metrics(self) -> Tuple[int, str, bytes]:
        cluster = None
        cluster_stats = getattr(self.service, "cluster_stats", None)
        if callable(cluster_stats):
            cluster = cluster_stats()
        text = prometheus_text(metrics=self.service.metrics,
                               tracer=getattr(self.service, "tracer", None),
                               cluster=cluster)
        return 200, CONTENT_TYPE_PROMETHEUS, text.encode("utf-8")

    def _healthz(self) -> Tuple[int, str, bytes]:
        stats = self.service.stats()
        payload: Dict[str, Any] = {
            # The service's own vocabulary: healthy | degraded |
            # unhealthy (repro.serve.resilience).
            "status": "healthy",
            "queue_depth": stats.queue_depth,
            "in_flight": stats.in_flight,
            "counters": stats.to_dict(),
        }
        health = getattr(self.service, "health", None)
        if callable(health):
            snapshot = health()
            payload["documents"] = snapshot.to_dict()
            payload["status"] = snapshot.status
        cluster_stats = getattr(self.service, "cluster_stats", None)
        if callable(cluster_stats):
            cluster = cluster_stats()
            payload["workers"] = [asdict(worker)
                                  for worker in cluster.workers]
            payload["respawns"] = cluster.respawns
            if not all(worker.alive for worker in cluster.workers) \
                    and payload["status"] == "healthy":
                payload["status"] = "degraded"
        status = 200 if payload["status"] == "healthy" else 503
        return _json_response(status, payload)

    def _flight(self) -> Tuple[int, str, bytes]:
        snapshot = self.service.flight_recorder()
        if snapshot is None:
            return _json_response(
                404, {"error": "service runs without a flight recorder"})
        return _json_response(200, snapshot.to_dict())

    def _trace(self, trace_id: str,
               trace_format: str) -> Tuple[int, str, bytes]:
        snapshot = self.service.flight_recorder()
        if snapshot is None:
            return _json_response(
                404, {"error": "service runs without a flight recorder"})
        for trace in snapshot.traces():
            if trace.trace_id == trace_id:
                if trace_format == "chrome":
                    return _json_response(200, chrome_trace(trace))
                return _json_response(200, trace.to_dict())
        return _json_response(
            404, {"error": f"trace {trace_id!r} is not retained"})


def _json_response(status: int,
                   payload: Dict[str, Any]) -> Tuple[int, str, bytes]:
    body = json.dumps(payload, sort_keys=True, default=str)
    return status, "application/json", body.encode("utf-8")
