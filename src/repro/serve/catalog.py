"""A catalog of named documents, each served by one shared engine.

:class:`DocumentCatalog` is the serving layer's document registry: it
maps a name (``"site"``, ``"member-20k"``) to one
:class:`~repro.xmltree.IndexedDocument` and the single
:class:`~repro.engine.Engine` all workers share for it — so the plan
cache and the structural summary are built once per document, not once
per request.

Registration accepts a ready document, raw XML text, a file path or a
zero-argument factory (for synthetic workloads); construction is lazy
and double-check locked, so the first request for a document pays the
parse/index/summary cost exactly once, even when many workers ask for
it simultaneously.

**Load-failure handling** (see ``docs/ROBUSTNESS.md``): a loader that
fails deterministically (corrupt file, bad XML) does *not* leave a
half-registered entry behind — the slot is freed so re-registration
after fixing the file works.  Storage failures additionally move the
name into a **quarantined set**: subsequent lookups raise a typed
:class:`~repro.guard.DocumentQuarantined` naming the original check,
and :meth:`add_file` with ``rebuild=True`` falls back to re-parsing
the sibling ``.xml`` source (healing the saved index best-effort)
instead of quarantining at all.  Transient faults (injected chaos)
leave the entry registered, so the next lookup simply retries the
load.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..engine import Engine
from ..guard import DocumentQuarantined, InjectedFault, InputError, \
    chaos_point
from ..xmltree import IndexedDocument
from ..xmltree.columnar import StorageError

__all__ = ["DocumentCatalog", "QuarantineRecord"]


@dataclass(frozen=True)
class QuarantineRecord:
    """Why a document is quarantined (kept until re-registration)."""

    document: str
    path: Optional[str]
    code: str
    reason: str

    def to_dict(self) -> Dict[str, Optional[str]]:
        return {"document": self.document, "path": self.path,
                "code": self.code, "reason": self.reason}


class _Entry:
    """One named document: a lazily-built engine plus its build lock."""

    def __init__(self, loader: Callable[[], Engine],
                 path: Optional[str] = None) -> None:
        self.loader = loader
        self.path = path
        self.engine: Optional[Engine] = None
        self.lock = threading.Lock()

    def get(self) -> Engine:
        if self.engine is None:
            with self.lock:
                if self.engine is None:
                    chaos_point("catalog.open")
                    engine = self.loader()
                    # Warm the summary under the entry lock so the first
                    # wave of workers shares one build instead of racing
                    # to it (the document property is itself locked, but
                    # warming here keeps the cost out of request latency).
                    if engine.use_summary:
                        engine.document.summary
                    self.engine = engine
        return self.engine


class DocumentCatalog:
    """Named documents with one shared :class:`Engine` each.

    ``engine_defaults`` (e.g. ``default_strategy=``, ``budgets=``,
    ``plan_cache_size=``) apply to every engine the catalog builds;
    per-document overrides can be passed at registration time.
    """

    def __init__(self, **engine_defaults) -> None:
        self._defaults = engine_defaults
        self._entries: Dict[str, _Entry] = {}
        self._quarantined: Dict[str, QuarantineRecord] = {}
        self._rebuilt: Dict[str, str] = {}
        self._lock = threading.Lock()

    # -- registration -------------------------------------------------------

    def add_document(self, name: str, document: IndexedDocument,
                     **engine_options) -> None:
        """Register an already-indexed document."""
        self._register(name,
                       lambda: Engine(document,
                                      **self._options(engine_options)))

    def add_engine(self, name: str, engine: Engine) -> None:
        """Register a fully-configured engine as-is."""
        entry = _Entry(lambda: engine)
        self._register_entry(name, entry)

    def add_xml(self, name: str, text: str, **engine_options) -> None:
        """Register raw XML text; parsed and indexed on first use."""
        self._register(name,
                       lambda: Engine.from_xml(
                           text, **self._options(engine_options)))

    def add_file(self, name: str, path: str, store: str = "auto",
                 rebuild: bool = False, **engine_options) -> None:
        """Register a file; loaded on first use.  With the default
        ``store="auto"`` a saved columnar index (``repro index``) is
        mmap-opened in O(1) — no re-parse, no re-index — and anything
        else is parsed as XML.

        With ``rebuild=True`` a storage failure on the saved index
        (corrupt, truncated, bad checksum) falls back to re-parsing
        the sibling ``.xml`` source and — best effort — re-saves the
        index over the corrupt file, instead of quarantining the
        document."""
        options = self._options(engine_options)

        def loader() -> Engine:
            try:
                return Engine.from_file(path, store=store, **options)
            except StorageError:
                if not rebuild:
                    raise
                source = self._xml_source_for(path)
                if source is None:
                    raise
                engine = Engine.from_file(source, store="object",
                                          **options)
                try:
                    engine.document.save(path)  # heal the corrupt index
                except Exception:
                    pass
                with self._lock:
                    self._rebuilt[name] = source
                return engine

        self._register_entry(name, _Entry(loader, path=path))

    def add_columnar_file(self, name: str, path: str, verify: bool = True,
                          **engine_options) -> None:
        """Register a saved columnar index file (see
        :meth:`~repro.xmltree.ColumnarDocument.save`); mmap-opened on
        first use without re-parsing."""
        self._register_entry(
            name,
            _Entry(lambda: Engine.from_columnar_file(
                path, verify=verify, **self._options(engine_options)),
                path=path))

    def add_factory(self, name: str,
                    factory: Callable[[], IndexedDocument],
                    **engine_options) -> None:
        """Register a document factory (e.g. a synthetic generator);
        called once, on first use."""
        self._register(name,
                       lambda: Engine(factory(),
                                      **self._options(engine_options)))

    @staticmethod
    def _xml_source_for(path: str) -> Optional[str]:
        """The XML sibling a saved index can be rebuilt from."""
        if path.endswith(".rpxc"):
            candidate = path[:-len(".rpxc")] + ".xml"
            if os.path.exists(candidate):
                return candidate
        return None

    def _options(self, overrides: Dict) -> Dict:
        options = dict(self._defaults)
        options.update(overrides)
        return options

    def _register(self, name: str, loader: Callable[[], Engine]) -> None:
        self._register_entry(name, _Entry(loader))

    def _register_entry(self, name: str, entry: _Entry) -> None:
        if not name or not isinstance(name, str):
            raise InputError(
                f"document name must be a non-empty string, got {name!r}")
        with self._lock:
            if name in self._entries:
                raise InputError(f"document {name!r} is already registered",
                                 document=name)
            # Re-registration is how an operator clears quarantine.
            self._quarantined.pop(name, None)
            self._rebuilt.pop(name, None)
            self._entries[name] = entry

    # -- lookup -------------------------------------------------------------

    def engine(self, name: str) -> Engine:
        """The shared engine for ``name`` (building it on first use).

        Raises :class:`~repro.guard.InputError` for unknown names and
        :class:`~repro.guard.DocumentQuarantined` for names whose load
        failed with a storage error (until re-registered)."""
        with self._lock:
            entry = self._entries.get(name)
            record = self._quarantined.get(name)
        if entry is None:
            if record is not None:
                raise DocumentQuarantined(
                    f"document {name!r} is quarantined after a storage "
                    f"failure ({record.code}): {record.reason}; fix the "
                    f"file and re-register it",
                    document=name, path=record.path, check=record.code)
            raise InputError(
                f"unknown document {name!r}; registered: "
                f"{', '.join(sorted(self._entries)) or '(none)'}",
                document=name)
        try:
            return entry.get()
        except OSError as err:
            # The loader touched a file the OS refused: surface typed.
            storage = StorageError(
                f"document {name!r}: cannot load: {err}",
                check="open", path=entry.path)
            storage.__cause__ = err
            self._note_load_failure(name, entry, storage)
            raise storage from err
        except Exception as err:
            self._note_load_failure(name, entry, err)
            raise

    def engine_if_built(self, name: str) -> Optional[Engine]:
        """The engine for ``name`` only if it is already built —
        never triggers a load (the degraded path must not re-enter a
        possibly-poisoned loader)."""
        with self._lock:
            entry = self._entries.get(name)
        return entry.engine if entry is not None else None

    def _note_load_failure(self, name: str, entry: _Entry,
                           err: Exception) -> None:
        """Keep the catalog consistent after a failed load: transient
        faults keep the entry (next lookup retries); deterministic
        failures free the slot so re-registration works; storage
        failures additionally quarantine the name."""
        if isinstance(err, InjectedFault):
            return
        with self._lock:
            if self._entries.get(name) is entry:
                del self._entries[name]
            if isinstance(err, (StorageError, DocumentQuarantined)):
                self._quarantined[name] = QuarantineRecord(
                    document=name, path=entry.path,
                    code=getattr(err, "code", type(err).__name__),
                    reason=getattr(err, "message", str(err)))

    def quarantined(self) -> Dict[str, QuarantineRecord]:
        """A snapshot of the quarantined documents."""
        with self._lock:
            return dict(self._quarantined)

    def quarantined_names(self) -> List[str]:
        with self._lock:
            return sorted(self._quarantined)

    def rebuilt(self) -> Dict[str, str]:
        """Documents rebuilt from their XML source after a storage
        failure (``add_file(rebuild=True)``): name → source path."""
        with self._lock:
            return dict(self._rebuilt)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def remove(self, name: str) -> None:
        """Drop a document (in-flight requests keep their engine alive)."""
        with self._lock:
            self._entries.pop(name, None)
            self._quarantined.pop(name, None)
            self._rebuilt.pop(name, None)
