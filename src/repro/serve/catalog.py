"""A catalog of named documents, each served by one shared engine.

:class:`DocumentCatalog` is the serving layer's document registry: it
maps a name (``"site"``, ``"member-20k"``) to one
:class:`~repro.xmltree.IndexedDocument` and the single
:class:`~repro.engine.Engine` all workers share for it — so the plan
cache and the structural summary are built once per document, not once
per request.

Registration accepts a ready document, raw XML text, a file path or a
zero-argument factory (for synthetic workloads); construction is lazy
and double-check locked, so the first request for a document pays the
parse/index/summary cost exactly once, even when many workers ask for
it simultaneously.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from ..engine import Engine
from ..guard import InputError
from ..xmltree import IndexedDocument

__all__ = ["DocumentCatalog"]


class _Entry:
    """One named document: a lazily-built engine plus its build lock."""

    def __init__(self, loader: Callable[[], Engine]) -> None:
        self.loader = loader
        self.engine: Optional[Engine] = None
        self.lock = threading.Lock()

    def get(self) -> Engine:
        if self.engine is None:
            with self.lock:
                if self.engine is None:
                    engine = self.loader()
                    # Warm the summary under the entry lock so the first
                    # wave of workers shares one build instead of racing
                    # to it (the document property is itself locked, but
                    # warming here keeps the cost out of request latency).
                    if engine.use_summary:
                        engine.document.summary
                    self.engine = engine
        return self.engine


class DocumentCatalog:
    """Named documents with one shared :class:`Engine` each.

    ``engine_defaults`` (e.g. ``default_strategy=``, ``budgets=``,
    ``plan_cache_size=``) apply to every engine the catalog builds;
    per-document overrides can be passed at registration time.
    """

    def __init__(self, **engine_defaults) -> None:
        self._defaults = engine_defaults
        self._entries: Dict[str, _Entry] = {}
        self._lock = threading.Lock()

    # -- registration -------------------------------------------------------

    def add_document(self, name: str, document: IndexedDocument,
                     **engine_options) -> None:
        """Register an already-indexed document."""
        self._register(name,
                       lambda: Engine(document,
                                      **self._options(engine_options)))

    def add_engine(self, name: str, engine: Engine) -> None:
        """Register a fully-configured engine as-is."""
        entry = _Entry(lambda: engine)
        self._register_entry(name, entry)

    def add_xml(self, name: str, text: str, **engine_options) -> None:
        """Register raw XML text; parsed and indexed on first use."""
        self._register(name,
                       lambda: Engine.from_xml(
                           text, **self._options(engine_options)))

    def add_file(self, name: str, path: str, store: str = "auto",
                 **engine_options) -> None:
        """Register a file; loaded on first use.  With the default
        ``store="auto"`` a saved columnar index (``repro index``) is
        mmap-opened in O(1) — no re-parse, no re-index — and anything
        else is parsed as XML."""
        self._register(name,
                       lambda: Engine.from_file(
                           path, store=store,
                           **self._options(engine_options)))

    def add_columnar_file(self, name: str, path: str, verify: bool = True,
                          **engine_options) -> None:
        """Register a saved columnar index file (see
        :meth:`~repro.xmltree.ColumnarDocument.save`); mmap-opened on
        first use without re-parsing."""
        self._register(name,
                       lambda: Engine.from_columnar_file(
                           path, verify=verify,
                           **self._options(engine_options)))

    def add_factory(self, name: str,
                    factory: Callable[[], IndexedDocument],
                    **engine_options) -> None:
        """Register a document factory (e.g. a synthetic generator);
        called once, on first use."""
        self._register(name,
                       lambda: Engine(factory(),
                                      **self._options(engine_options)))

    def _options(self, overrides: Dict) -> Dict:
        options = dict(self._defaults)
        options.update(overrides)
        return options

    def _register(self, name: str, loader: Callable[[], Engine]) -> None:
        self._register_entry(name, _Entry(loader))

    def _register_entry(self, name: str, entry: _Entry) -> None:
        if not name or not isinstance(name, str):
            raise InputError(
                f"document name must be a non-empty string, got {name!r}")
        with self._lock:
            if name in self._entries:
                raise InputError(f"document {name!r} is already registered",
                                 document=name)
            self._entries[name] = entry

    # -- lookup -------------------------------------------------------------

    def engine(self, name: str) -> Engine:
        """The shared engine for ``name`` (building it on first use)."""
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise InputError(
                f"unknown document {name!r}; registered: "
                f"{', '.join(sorted(self._entries)) or '(none)'}",
                document=name)
        return entry.get()

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def remove(self, name: str) -> None:
        """Drop a document (in-flight requests keep their engine alive)."""
        with self._lock:
            self._entries.pop(name, None)
