"""Nested-loop structural join (NLJoin).

The navigational strategy: evaluate the pattern by walking the tree with
the axis primitives, one context node at a time.  Its cost is
proportional to the part of the tree actually *visited*, which is why it
wins on highly selective queries like the paper's ``(/t1[1])^k``
experiment (Section 5.3) — it touches only each context's children —
and loses on unselective rooted paths, where it traverses the whole
document while the stream-based algorithms scan only the relevant tag
streams.

NLJoin is the *reference semantics*: it supports every axis, predicate
branches and the positional extension, and the other algorithms are
differentially tested against it.
"""

from __future__ import annotations

from typing import List

from ..guard.chaos import chaos_point
from ..pattern import PatternPath, PatternStep
from ..xmltree.axes import step as axis_step
from ..xmltree.document import IndexedDocument
from ..xmltree.node import Node
from .base import Binding, TreePatternAlgorithm, distinct_doc_order


class NLJoin(TreePatternAlgorithm):
    """Navigational nested-loop evaluation."""

    name = "nljoin"

    def match_single(self, document: IndexedDocument,
                     contexts: List[Node], path: PatternPath) -> List[Node]:
        current = list(contexts)
        for pattern_step in path.steps:
            produced: list[Node] = []
            for context in current:
                produced.extend(self._step_candidates(context, pattern_step))
            current = distinct_doc_order(produced)
        return chaos_point("nljoin.match", current)

    def enumerate_bindings(self, document: IndexedDocument, context: Node,
                           path: PatternPath) -> List[Binding]:
        bindings: list[Binding] = []
        self._enumerate(context, path.steps, 0, {}, bindings)
        return chaos_point("nljoin.enumerate", bindings)

    # -- helpers ------------------------------------------------------------

    def _step_candidates(self, context: Node,
                         pattern_step: PatternStep) -> List[Node]:
        """One step from one context: axis, then branches, then position."""
        candidates = axis_step(context, pattern_step.axis, pattern_step.test)
        if self.metrics is not None:
            self.metrics.nodes_visited[self.name] += len(candidates)
        if self.governor is not None:
            # +1 so empty steps in deep recursions still make progress
            # against the step budget.
            self.governor.tick(len(candidates) + 1)
        survivors = [candidate for candidate in candidates
                     if self._satisfies(candidate, pattern_step)]
        if pattern_step.position is None:
            return survivors
        index = pattern_step.position - 1
        if 0 <= index < len(survivors):
            return [survivors[index]]
        return []

    def _satisfies(self, node: Node, pattern_step: PatternStep) -> bool:
        """All predicate branches of the step match from ``node``."""
        return all(self._branch_exists(node, branch.steps, 0)
                   for branch in pattern_step.predicates)

    def _branch_exists(self, context: Node, steps, index: int) -> bool:
        if index == len(steps):
            return True
        branch_step = steps[index]
        for candidate in self._step_candidates(context, branch_step):
            if self._branch_exists(candidate, steps, index + 1):
                return True
        return False

    def _enumerate(self, context: Node, steps, index: int,
                   binding: Binding, out: list[Binding]) -> None:
        if index == len(steps):
            out.append(dict(binding))
            return
        pattern_step = steps[index]
        for candidate in self._step_candidates(context, pattern_step):
            if pattern_step.output_field is not None:
                binding[pattern_step.output_field] = candidate
            self._enumerate(candidate, steps, index + 1, binding, out)
            if pattern_step.output_field is not None:
                del binding[pattern_step.output_field]
