"""Interface shared by the physical tree-pattern algorithms.

Every algorithm answers two requests about a
:class:`~repro.pattern.TreePattern`'s path:

* :meth:`match_single` — the XPath result of the main path (with its
  existential predicate branches) from a *sequence* of context nodes:
  document order, duplicate-free.  This is the semantics the optimizer
  relies on for the single-output patterns it generates (Section 4.1:
  "the semantics coincide with the XPath semantics in the case there is
  only an output field on the extraction point").
* :meth:`enumerate_bindings` — all bindings of the pattern's annotated
  nodes from a single context node, in root-to-leaf lexical order
  (the multi-output semantics illustrated in Section 4.1's example).

:meth:`evaluate` is the template method the ``TupleTreePattern``
operator calls; it dispatches between the two semantics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from ..guard.governor import ResourceGovernor
from ..obs import ExecMetrics
from ..pattern import PatternPath, TreePattern
from ..xmltree.document import IndexedDocument, ddo
from ..xmltree.node import Node
from ..xmltree.summary import PathSummary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..trace import Trace

Binding = Dict[str, Node]


class TreePatternAlgorithm:
    """Base class of NLJoin, TwigJoin and SCJoin."""

    name = "abstract"

    #: every algorithm materializes the per-tuple binding list before
    #: returning from :meth:`evaluate` (the join's build side), so the
    #: compiled backend (:mod:`repro.compiled`) treats each pattern
    #: evaluation as a pipeline breaker: upstream tuples push one at a
    #: time, the bindings materialize here, and downstream code resumes
    #: per binding.
    is_pipeline_breaker = True

    #: counters this algorithm's work is recorded into; ``None`` (the
    #: default) disables all counting so plain runs pay one ``is None``
    #: check per scan.
    metrics: Optional[ExecMetrics] = None

    #: resource budgets this algorithm's work is charged against;
    #: ``None`` (the default) disables all checking — like ``metrics``,
    #: ungoverned runs pay one ``is None`` check per scan.
    governor: Optional[ResourceGovernor] = None

    #: structural summary of the document being queried; when attached,
    #: :meth:`evaluate` consults it to skip pattern evaluations that
    #: provably cannot match (see :mod:`repro.xmltree.summary`).
    summary: Optional[PathSummary] = None

    #: span trace this algorithm's pattern evaluations are recorded
    #: into; ``None`` (the default) disables tracing — same one-check
    #: discipline as ``metrics``/``governor``.
    trace: "Optional[Trace]" = None

    def attach_metrics(self, metrics: Optional[ExecMetrics]) -> None:
        """Route this algorithm's counters into ``metrics``.

        Subclasses that delegate (fallbacks, choosers) override this to
        attach the same object to their inner algorithms.
        """
        self.metrics = metrics

    def attach_governor(self, governor: Optional[ResourceGovernor]) -> None:
        """Charge this algorithm's work against ``governor``'s budgets.

        Subclasses that delegate (fallbacks, choosers) override this to
        attach the same object to their inner algorithms.
        """
        self.governor = governor

    def attach_summary(self, summary: Optional[PathSummary]) -> None:
        """Use ``summary`` as the pattern prefilter for :meth:`evaluate`
        (``None`` disables pruning).

        Subclasses that delegate (choosers) override this to attach the
        same object to their inner algorithms.
        """
        self.summary = summary

    def attach_trace(self, trace: "Optional[Trace]") -> None:
        """Record this algorithm's pattern evaluations as spans of
        ``trace`` (one ``pattern:<name>`` span per :meth:`evaluate`
        call, prune decisions as events).

        Subclasses that delegate (fallbacks, choosers) override this to
        attach the same object to their inner algorithms.
        """
        self.trace = trace

    def match_single(self, document: IndexedDocument,
                     contexts: List[Node], path: PatternPath) -> List[Node]:
        raise NotImplementedError

    def enumerate_bindings(self, document: IndexedDocument, context: Node,
                           path: PatternPath) -> List[Binding]:
        raise NotImplementedError

    def evaluate(self, document: IndexedDocument, contexts: List[Node],
                 pattern: TreePattern) -> List[Binding]:
        """Evaluate a pattern for one input tuple's context nodes."""
        trace = self.trace
        if trace is None:
            return self._evaluate(document, contexts, pattern)
        span = trace.begin_span(f"pattern:{self.name}",
                                contexts=len(contexts))
        try:
            result = self._evaluate(document, contexts, pattern)
        except BaseException:
            trace.end_span(span, error=True)
            raise
        trace.end_span(span, rows=len(result))
        return result

    def _evaluate(self, document: IndexedDocument, contexts: List[Node],
                  pattern: TreePattern) -> List[Binding]:
        if self.metrics is not None:
            self.metrics.pattern_evals += 1
        if self.governor is not None:
            # A pattern evaluation is coarse enough to afford a clock
            # read on top of the step charge.
            self.governor.tick()
            self.governor.check_clock()
        summary = self.summary
        if (summary is not None and summary.document is document
                and contexts):
            # The structural prefilter: when no summary path can embed
            # the pattern from these contexts, the result is provably
            # empty and no algorithm needs to run.
            if not summary.can_match(pattern.path, contexts):
                if self.metrics is not None:
                    self.metrics.prune_hits += 1
                if self.trace is not None:
                    self.trace.event("prune_hit",
                                     pattern=pattern.path.to_string())
                return []
            if self.metrics is not None:
                self.metrics.prune_misses += 1
        if pattern.is_single_output_at_extraction_point():
            out_field = pattern.extraction_point.output_field
            assert out_field is not None
            nodes = self.match_single(document, contexts, pattern.path)
            return [{out_field: node} for node in nodes]
        bindings: list[Binding] = []
        for context in contexts:
            bindings.extend(
                self.enumerate_bindings(document, context, pattern.path))
        return bindings

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


def distinct_doc_order(nodes: List[Node]) -> List[Node]:
    """Shared ddo helper for implementations."""
    return ddo(nodes)
