"""Staircase join (SCJoin) — Grust & van Keulen's tree-aware join.

The staircase join evaluates one location step for a whole *sequence* of
context nodes at once on the pre/post plane:

* **pruning** — context nodes whose regions are covered by other
  context nodes are removed (for the descendant axis, a context nested
  inside another contributes nothing new);
* **partition scan** — the remaining "staircase" of disjoint regions is
  swept left to right; each partition is answered with one binary search
  on the tag stream plus a scan of the region slice, so results come out
  in document order *without a sort* and duplicate-free *without a
  dedup*.

Since the columnar refactor the whole evaluation runs in *integer
space*: contexts are converted to ``pre`` numbers once, every step is a
merge of ``pre`` streams against the document's
:class:`~repro.xmltree.columnar.ColumnarDocument` columns (``end``,
``parent``, ``kind``), and node objects are materialized only at the
result boundary — exactly the staircase join of Grust et al., which is
defined over the integer pre/post plane, not over heap objects.

Patterns are evaluated spine-step-by-spine-step (each step one
staircase join); predicate branches are existential semi-joins that
filter the step's output.  This set-at-a-time, multi-pass style is
precisely why the paper finds SCJoin "can degrade for complex tree
patterns while TwigJoin is always well-behaved" (Section 5): every
branch adds passes over the candidate sets.

Axes outside the downward fragment fall back to NLJoin.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Sequence

from ..guard.chaos import chaos_point
from ..pattern import PatternPath, PatternStep
from ..xmltree.axes import Axis
from ..xmltree.columnar import KIND_ELEMENT, ColumnarDocument
from ..xmltree.document import IndexedDocument
from ..xmltree.node import Node
from ..xmltree.nodetest import (ElementTest, NameTest, NodeTest, TextTest,
                                WildcardTest)
from .base import Binding, TreePatternAlgorithm
from .nljoin import NLJoin

_SUPPORTED_AXES = (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF,
                   Axis.ATTRIBUTE, Axis.SELF)


class StaircaseJoin(TreePatternAlgorithm):
    """Set-at-a-time staircase join evaluation in integer pre-space."""

    name = "scjoin"

    def __init__(self) -> None:
        self._fallback = NLJoin()

    def attach_metrics(self, metrics) -> None:
        super().attach_metrics(metrics)
        self._fallback.attach_metrics(metrics)

    def attach_governor(self, governor) -> None:
        super().attach_governor(governor)
        self._fallback.attach_governor(governor)

    def attach_trace(self, trace) -> None:
        super().attach_trace(trace)
        self._fallback.attach_trace(trace)

    # -- public API -----------------------------------------------------------

    def match_single(self, document: IndexedDocument,
                     contexts: List[Node], path: PatternPath) -> List[Node]:
        if not _supported(path):
            return self._fallback.match_single(document, contexts, path)
        columns = document.columns
        # Into integer space: sorted, duplicate-free context pres.
        current: List[int] = sorted({node.pre for node in contexts})
        for step in path.steps:
            if step.position is not None:
                current = self._positional_step(columns, current, step)
                continue
            current = self._staircase_step(columns, current, step)
            for branch in step.predicates:
                current = [pre for pre in current
                           if self._branch_exists(columns, pre, branch)]
        # Out of integer space: nodes exist only at the result boundary.
        return chaos_point("scjoin.match",
                           [document.node_at(pre) for pre in current])

    def enumerate_bindings(self, document: IndexedDocument, context: Node,
                           path: PatternPath) -> List[Binding]:
        # Binding enumeration is inherently tuple-at-a-time; the
        # staircase join is a set-at-a-time algorithm, so multi-output
        # patterns use the navigational fallback (the optimizer only
        # emits single-output patterns — see DESIGN.md).
        return self._fallback.enumerate_bindings(document, context, path)

    # -- the join ----------------------------------------------------------------

    def _staircase_step(self, columns: ColumnarDocument,
                        contexts: List[int],
                        step: PatternStep) -> List[int]:
        """One staircase join: context pres (doc order, dup-free) →
        result pres (doc order, dup-free)."""
        if not contexts:
            return []
        axis = step.axis
        if self.governor is not None:
            self.governor.tick(len(contexts) + 1)
        if axis is Axis.SELF:
            kind = axis.principal_kind
            if self.metrics is not None:
                self.metrics.nodes_visited[self.name] += len(contexts)
            test = step.test
            return [pre for pre in contexts
                    if columns.test_matches(pre, test, kind)]
        if axis is Axis.ATTRIBUTE:
            result: List[int] = []
            kind_column = columns.kind
            test = step.test
            for context in contexts:
                if kind_column[context] == KIND_ELEMENT:
                    attributes = columns.attributes_of(context)
                    if self.metrics is not None:
                        self.metrics.nodes_visited[self.name] += \
                            len(attributes)
                    result.extend(
                        pre for pre in attributes
                        if columns.test_matches(pre, test, "attribute"))
            return result
        if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            return self._descendant_join(columns, contexts, step,
                                         axis is Axis.DESCENDANT_OR_SELF)
        if axis is Axis.CHILD:
            return self._child_join(columns, contexts, step)
        raise AssertionError(f"unsupported axis {axis}")

    def _descendant_join(self, columns: ColumnarDocument,
                         contexts: List[int], step: PatternStep,
                         include_self: bool) -> List[int]:
        pres = _stream(columns, step.test)
        end_column = columns.end
        pruned = _prune_covered(contexts, end_column)
        result: List[int] = []
        # The pruned staircase has pairwise-disjoint regions in document
        # order: concatenating the partition scans yields sorted,
        # duplicate-free output with no post-processing.
        for context in pruned:
            low_key = context if include_self else context + 1
            low = bisect_left(pres, low_key)
            high = bisect_right(pres, end_column[context])
            result.extend(pres[low:high])
        if self.metrics is not None:
            self.metrics.stream_scanned[self.name] += len(result)
            self.metrics.nodes_visited[self.name] += len(result)
        if self.governor is not None:
            self.governor.tick(len(result))
        return result

    def _child_join(self, columns: ColumnarDocument,
                    contexts: List[int], step: PatternStep) -> List[int]:
        pres = _stream(columns, step.test)
        end_column = columns.end
        parent_column = columns.parent
        # Children of distinct contexts are disjoint, but nested contexts
        # interleave regions; detect the (common) non-nested case to skip
        # the merge.
        merged: List[int] = []
        nested = False
        previous_end = -1
        for context in contexts:
            if context <= previous_end:
                nested = True
            end = end_column[context]
            previous_end = max(previous_end, end)
            low = bisect_left(pres, context + 1)
            high = bisect_right(pres, end)
            if self.metrics is not None:
                self.metrics.stream_scanned[self.name] += high - low
                self.metrics.nodes_visited[self.name] += high - low
            if self.governor is not None:
                self.governor.tick(high - low + 1)
            merged.extend(pre for pre in pres[low:high]
                          if parent_column[pre] == context)
        if nested:
            merged = sorted(set(merged))
        return merged

    def _positional_step(self, columns: ColumnarDocument,
                         contexts: List[int],
                         step: PatternStep) -> List[int]:
        """A positional step (``step[P]...[n]``) is inherently
        per-context: the staircase's bulk partition scan cannot apply,
        so each context is answered with its own region scan (positions
        count per context node, after branch filtering)."""
        end_column = columns.end
        merged: List[int] = []
        nested = False
        previous_end = -1
        for context in contexts:
            if context <= previous_end:
                nested = True
            previous_end = max(previous_end, end_column[context])
            survivors = self._staircase_step(columns, [context], step)
            for branch in step.predicates:
                survivors = [pre for pre in survivors
                             if self._branch_exists(columns, pre, branch)]
            index = step.position - 1
            if 0 <= index < len(survivors):
                merged.append(survivors[index])
        if nested:
            merged = sorted(set(merged))
        return merged

    def _branch_exists(self, columns: ColumnarDocument, context: int,
                       branch: PatternPath) -> bool:
        """Existential semi-join of a predicate branch from one node."""
        current = [context]
        for step in branch.steps:
            if step.position is not None:
                current = self._positional_step(columns, current, step)
            else:
                current = self._staircase_step(columns, current, step)
                for nested in step.predicates:
                    current = [pre for pre in current
                               if self._branch_exists(columns, pre,
                                                      nested)]
            if not current:
                return False
        return bool(current)


def _supported(path: PatternPath) -> bool:
    for step in path.steps:
        if step.axis not in _SUPPORTED_AXES:
            return False
        if isinstance(step.test, TextTest) and step.axis not in (
                Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            return False
        if not all(_supported(branch) for branch in step.predicates):
            return False
    return True


def _stream(columns: ColumnarDocument, test: NodeTest) -> Sequence[int]:
    """The document-wide sorted ``pre`` stream matching a node test."""
    if isinstance(test, NameTest):
        return columns.element_stream(test.name)
    if isinstance(test, ElementTest) and test.name is not None:
        return columns.element_stream(test.name)
    if isinstance(test, (WildcardTest, ElementTest)):
        return columns.element_pres
    if isinstance(test, TextTest):
        return columns.text_pres
    # node(): attributes are only reachable via the attribute axis.
    return columns.non_attribute_pres


def _prune_covered(contexts: List[int], end_column) -> List[int]:
    """Drop contexts contained in an earlier context (staircase pruning)."""
    pruned: List[int] = []
    boundary = -1
    for context in contexts:
        if context > boundary:
            pruned.append(context)
            boundary = end_column[context]
    return pruned
