"""Staircase join (SCJoin) — Grust & van Keulen's tree-aware join.

The staircase join evaluates one location step for a whole *sequence* of
context nodes at once on the pre/post plane:

* **pruning** — context nodes whose regions are covered by other
  context nodes are removed (for the descendant axis, a context nested
  inside another contributes nothing new);
* **partition scan** — the remaining "staircase" of disjoint regions is
  swept left to right; each partition is answered with one binary search
  on the tag stream plus a scan of the region slice, so results come out
  in document order *without a sort* and duplicate-free *without a
  dedup*.

Patterns are evaluated spine-step-by-spine-step (each step one
staircase join); predicate branches are existential semi-joins that
filter the step's output.  This set-at-a-time, multi-pass style is
precisely why the paper finds SCJoin "can degrade for complex tree
patterns while TwigJoin is always well-behaved" (Section 5): every
branch adds passes over the candidate sets.

Axes outside the downward fragment fall back to NLJoin.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List

from ..guard.chaos import chaos_point
from ..pattern import PatternPath, PatternStep
from ..xmltree.axes import Axis
from ..xmltree.document import IndexedDocument
from ..xmltree.node import AttributeNode, ElementNode, Node
from ..xmltree.nodetest import (ElementTest, NameTest, NodeTest, TextTest,
                                WildcardTest)
from .base import Binding, TreePatternAlgorithm
from .nljoin import NLJoin

_SUPPORTED_AXES = (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF,
                   Axis.ATTRIBUTE, Axis.SELF)


class StaircaseJoin(TreePatternAlgorithm):
    """Set-at-a-time staircase join evaluation."""

    name = "scjoin"

    def __init__(self) -> None:
        self._fallback = NLJoin()

    def attach_metrics(self, metrics) -> None:
        super().attach_metrics(metrics)
        self._fallback.attach_metrics(metrics)

    def attach_governor(self, governor) -> None:
        super().attach_governor(governor)
        self._fallback.attach_governor(governor)

    def attach_trace(self, trace) -> None:
        super().attach_trace(trace)
        self._fallback.attach_trace(trace)

    # -- public API -----------------------------------------------------------

    def match_single(self, document: IndexedDocument,
                     contexts: List[Node], path: PatternPath) -> List[Node]:
        if not _supported(path):
            return self._fallback.match_single(document, contexts, path)
        current = _prune_duplicates(contexts)
        for step in path.steps:
            if step.position is not None:
                current = self._positional_step(document, current, step)
                continue
            current = self._staircase_step(document, current, step)
            for branch in step.predicates:
                current = [node for node in current
                           if self._branch_exists(document, node, branch)]
        return chaos_point("scjoin.match", current)

    def enumerate_bindings(self, document: IndexedDocument, context: Node,
                           path: PatternPath) -> List[Binding]:
        # Binding enumeration is inherently tuple-at-a-time; the
        # staircase join is a set-at-a-time algorithm, so multi-output
        # patterns use the navigational fallback (the optimizer only
        # emits single-output patterns — see DESIGN.md).
        return self._fallback.enumerate_bindings(document, context, path)

    # -- the join ----------------------------------------------------------------

    def _staircase_step(self, document: IndexedDocument,
                        contexts: List[Node], step: PatternStep) -> List[Node]:
        """One staircase join: contexts (doc order, dup-free) → results
        (doc order, dup-free)."""
        if not contexts:
            return []
        axis = step.axis
        if self.governor is not None:
            self.governor.tick(len(contexts) + 1)
        if axis is Axis.SELF:
            kind = axis.principal_kind
            if self.metrics is not None:
                self.metrics.nodes_visited[self.name] += len(contexts)
            return [node for node in contexts if step.test.matches(node, kind)]
        if axis is Axis.ATTRIBUTE:
            result: list[Node] = []
            for context in contexts:
                if isinstance(context, ElementNode):
                    if self.metrics is not None:
                        self.metrics.nodes_visited[self.name] += \
                            len(context.attributes)
                    result.extend(
                        attribute for attribute in context.attributes
                        if step.test.matches(attribute, "attribute"))
            return result
        if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            return self._descendant_join(document, contexts, step,
                                         axis is Axis.DESCENDANT_OR_SELF)
        if axis is Axis.CHILD:
            return self._child_join(document, contexts, step)
        raise AssertionError(f"unsupported axis {axis}")

    def _descendant_join(self, document: IndexedDocument,
                         contexts: List[Node], step: PatternStep,
                         include_self: bool) -> List[Node]:
        stream, pres = _stream(document, step.test)
        pruned = _prune_covered(contexts)
        result: list[Node] = []
        # The pruned staircase has pairwise-disjoint regions in document
        # order: concatenating the partition scans yields sorted,
        # duplicate-free output with no post-processing.
        for context in pruned:
            low_key = context.pre if include_self else context.pre + 1
            low = bisect_left(pres, low_key)
            high = bisect_right(pres, context.end)
            result.extend(stream[low:high])
        if self.metrics is not None:
            self.metrics.stream_scanned[self.name] += len(result)
            self.metrics.nodes_visited[self.name] += len(result)
        if self.governor is not None:
            self.governor.tick(len(result))
        return result

    def _child_join(self, document: IndexedDocument,
                    contexts: List[Node], step: PatternStep) -> List[Node]:
        stream, pres = _stream(document, step.test)
        # Children of distinct contexts are disjoint, but nested contexts
        # interleave regions; detect the (common) non-nested case to skip
        # the merge.
        chunks: list[list[Node]] = []
        nested = False
        previous_end = -1
        for context in contexts:
            if context.pre <= previous_end:
                nested = True
            previous_end = max(previous_end, context.end)
            low = bisect_left(pres, context.pre + 1)
            high = bisect_right(pres, context.end)
            if self.metrics is not None:
                self.metrics.stream_scanned[self.name] += high - low
                self.metrics.nodes_visited[self.name] += high - low
            if self.governor is not None:
                self.governor.tick(high - low + 1)
            chunks.append([node for node in stream[low:high]
                           if node.parent is context])
        if not nested:
            return [node for chunk in chunks for node in chunk]
        merged = [node for chunk in chunks for node in chunk]
        merged.sort(key=lambda node: node.pre)
        return merged

    def _positional_step(self, document: IndexedDocument,
                         contexts: List[Node],
                         step: PatternStep) -> List[Node]:
        """A positional step (``step[P]...[n]``) is inherently
        per-context: the staircase's bulk partition scan cannot apply,
        so each context is answered with its own region scan (positions
        count per context node, after branch filtering)."""
        chunks: list[list[Node]] = []
        nested = False
        previous_end = -1
        for context in contexts:
            if context.pre <= previous_end:
                nested = True
            previous_end = max(previous_end, context.end)
            survivors = self._staircase_step(document, [context], step)
            for branch in step.predicates:
                survivors = [node for node in survivors
                             if self._branch_exists(document, node, branch)]
            index = step.position - 1
            if 0 <= index < len(survivors):
                chunks.append([survivors[index]])
        merged = [node for chunk in chunks for node in chunk]
        if nested:
            merged.sort(key=lambda node: node.pre)
            merged = _prune_duplicates(merged)
        return merged

    def _branch_exists(self, document: IndexedDocument, context: Node,
                       branch: PatternPath) -> bool:
        """Existential semi-join of a predicate branch from one node."""
        current = [context]
        for step in branch.steps:
            if step.position is not None:
                current = self._positional_step(document, current, step)
            else:
                current = self._staircase_step(document, current, step)
                for nested in step.predicates:
                    current = [node for node in current
                               if self._branch_exists(document, node, nested)]
            if not current:
                return False
        return bool(current)


def _supported(path: PatternPath) -> bool:
    for step in path.steps:
        if step.axis not in _SUPPORTED_AXES:
            return False
        if isinstance(step.test, TextTest) and step.axis not in (
                Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            return False
        if not all(_supported(branch) for branch in step.predicates):
            return False
    return True


def _stream(document: IndexedDocument, test: NodeTest):
    """The document-wide stream (nodes, pres) matching a node test."""
    if isinstance(test, NameTest):
        stream = document.stream(test.name)
        return stream, document.tag_pres.get(test.name, [])
    if isinstance(test, (WildcardTest, ElementTest)):
        nodes = [node for node in document.nodes_by_pre
                 if isinstance(node, ElementNode) and test.matches(node)]
    elif isinstance(test, TextTest):
        nodes = list(document.text_stream)
    else:  # node()
        nodes = [node for node in document.nodes_by_pre
                 if not isinstance(node, AttributeNode)]
    return nodes, [node.pre for node in nodes]


def _prune_duplicates(contexts: List[Node]) -> List[Node]:
    ordered = sorted(contexts, key=lambda node: node.pre)
    result: list[Node] = []
    previous = None
    for node in ordered:
        if node is not previous:
            result.append(node)
        previous = node
    return result


def _prune_covered(contexts: List[Node]) -> List[Node]:
    """Drop contexts contained in an earlier context (staircase pruning)."""
    pruned: list[Node] = []
    boundary = -1
    for context in contexts:
        if context.pre > boundary:
            pruned.append(context)
            boundary = context.end
    return pruned
