"""Physical tree-pattern algorithms: NLJoin, TwigJoin, SCJoin (paper §5)."""

from .base import Binding, TreePatternAlgorithm
from .cost import CostEstimate, CostModel
from .nljoin import NLJoin
from .stacktree import StackTreeJoin
from .staircase import StaircaseJoin
from .strategy import (CostBasedChooser, HeuristicChooser, Strategy,
                       estimated_stream_size, make_algorithm,
                       pattern_complexity)
from .streaming import StreamingXPath
from .twigjoin import TwigJoin

__all__ = [
    "Binding", "TreePatternAlgorithm", "NLJoin", "StaircaseJoin",
    "CostBasedChooser", "CostEstimate", "CostModel",
    "HeuristicChooser", "Strategy", "estimated_stream_size",
    "make_algorithm", "pattern_complexity", "StackTreeJoin",
    "StreamingXPath", "TwigJoin",
]
