"""Stack-Tree binary structural joins (Al-Khalifa et al., ICDE 2002).

The classic baseline the twig-join literature compares against: a tree
pattern is decomposed into *binary* ancestor–descendant (or
parent–child) joins, each evaluated by merging two pre-sorted element
lists with a stack of currently-open ancestors — one full sweep of both
lists per join, no index skipping.

Pattern evaluation is bottom-up and list-at-a-time:

* predicate branches reduce to semi-joins that filter a candidate list
  to the elements having at least one qualifying descendant/child;
* spine steps are descendant-major semi-joins producing the next
  context list (sorted, duplicate-free by construction).

Unlike this repository's region-skipping SCJoin, Stack-Tree sweeps the
*document-wide* tag streams on every step — which is exactly the cost
profile the paper reports for its stream-based algorithms in
Section 5.3 ("both TwigJoins and SCJoins will scan the index once for
each step").  It is included both as a faithful baseline and to let the
benchmarks exhibit that original profile.

Positional steps and non-downward axes fall back to NLJoin.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List

from ..guard.chaos import chaos_point
from ..pattern import PatternPath, PatternStep
from ..xmltree.axes import Axis
from ..xmltree.document import IndexedDocument
from ..xmltree.node import AttributeNode, ElementNode, Node
from ..xmltree.nodetest import (ElementTest, NameTest, NodeTest, TextTest,
                                WildcardTest)
from .base import Binding, TreePatternAlgorithm
from .nljoin import NLJoin

_SUPPORTED_AXES = (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF,
                   Axis.ATTRIBUTE)


class StackTreeJoin(TreePatternAlgorithm):
    """Binary structural joins over full tag streams."""

    name = "stacktree"

    def __init__(self) -> None:
        self._fallback = NLJoin()

    def attach_metrics(self, metrics) -> None:
        super().attach_metrics(metrics)
        self._fallback.attach_metrics(metrics)

    def attach_governor(self, governor) -> None:
        super().attach_governor(governor)
        self._fallback.attach_governor(governor)

    def attach_trace(self, trace) -> None:
        super().attach_trace(trace)
        self._fallback.attach_trace(trace)

    # -- public API -----------------------------------------------------------

    def match_single(self, document: IndexedDocument,
                     contexts: List[Node], path: PatternPath) -> List[Node]:
        if not _supported(path):
            return self._fallback.match_single(document, contexts, path)
        current = _dedup_sorted(contexts)
        for step in path.steps:
            candidates = self._qualified_candidates(document, step)
            current = stack_tree_descendants(current, candidates, step.axis,
                                             metrics=self.metrics,
                                             governor=self.governor)
        return chaos_point("stacktree.match", current)

    def enumerate_bindings(self, document: IndexedDocument, context: Node,
                           path: PatternPath) -> List[Binding]:
        # Binary joins manipulate whole lists; binding enumeration is
        # delegated to the navigational reference implementation.
        return self._fallback.enumerate_bindings(document, context, path)

    # -- list-at-a-time evaluation ---------------------------------------------

    def _qualified_candidates(self, document: IndexedDocument,
                              step: PatternStep) -> List[Node]:
        """All document elements matching the step's test whose predicate
        branches are satisfied (computed bottom-up, list-at-a-time)."""
        candidates = _stream(document, step)
        if self.metrics is not None:
            self.metrics.stream_scanned[self.name] += len(candidates)
        if self.governor is not None:
            self.governor.tick(len(candidates) + 1)
        for branch in step.predicates:
            candidates = self._filter_by_branch(document, candidates, branch)
        return candidates

    def _filter_by_branch(self, document: IndexedDocument,
                          anchors: List[Node],
                          branch: PatternPath) -> List[Node]:
        """Semi-join: keep anchors with at least one branch match."""
        steps = branch.steps
        # Build the qualifying sets bottom-up: the last step's candidates
        # first, then each earlier step filtered by "has a qualifying
        # successor".
        qualifying = self._qualified_candidates(document, steps[-1])
        for index in range(len(steps) - 2, -1, -1):
            earlier_candidates = self._qualified_candidates(document,
                                                            steps[index])
            qualifying = stack_tree_ancestors(earlier_candidates, qualifying,
                                              steps[index + 1].axis)
        return stack_tree_ancestors(anchors, qualifying, steps[0].axis)


def _supported(path: PatternPath) -> bool:
    for step in path.steps:
        if step.axis not in _SUPPORTED_AXES:
            return False
        if step.position is not None:
            return False
        if isinstance(step.test, TextTest):
            return False
        if not all(_supported(branch) for branch in step.predicates):
            return False
    return True


def _stream(document: IndexedDocument, step: PatternStep) -> List[Node]:
    test = step.test
    if step.axis is Axis.ATTRIBUTE:
        if isinstance(test, NameTest):
            return list(document.attribute_streams.get(test.name, []))
        attributes = [attribute
                      for element in document.all_elements()
                      for attribute in element.attributes]
        attributes.sort(key=lambda node: node.pre)
        return attributes
    if isinstance(test, NameTest):
        return list(document.stream(test.name))
    if isinstance(test, (WildcardTest, ElementTest)):
        return [node for node in document.nodes_by_pre
                if isinstance(node, ElementNode) and test.matches(node)]
    return [node for node in document.nodes_by_pre
            if not isinstance(node, AttributeNode)]


def _dedup_sorted(nodes: List[Node]) -> List[Node]:
    ordered = sorted(nodes, key=lambda node: node.pre)
    result: list[Node] = []
    previous = None
    for node in ordered:
        if node is not previous:
            result.append(node)
        previous = node
    return result


def stack_tree_descendants(ancestors: List[Node], descendants: List[Node],
                           axis: Axis, metrics=None,
                           governor=None) -> List[Node]:
    """Stack-Tree-Desc, descendant-major semi-join.

    Both inputs sorted by ``pre``; returns the distinct descendants that
    stand in ``axis`` relation to some ancestor, in document order —
    one merge sweep with a stack of open ancestors.
    """
    if metrics is not None:
        metrics.nodes_visited[StackTreeJoin.name] += len(descendants)
    if governor is not None:
        governor.tick(len(descendants) + 1)
    include_self = axis is Axis.DESCENDANT_OR_SELF
    result: list[Node] = []
    stack: list[Node] = []
    open_ids: set = set()
    a_index = 0
    pushes = 0
    for descendant in descendants:
        # Open every ancestor that starts at or before this descendant.
        while (a_index < len(ancestors)
               and (ancestors[a_index].pre < descendant.pre
                    or (include_self
                        and ancestors[a_index].pre == descendant.pre))):
            ancestor = ancestors[a_index]
            while stack and stack[-1].end < ancestor.pre:
                open_ids.discard(id(stack.pop()))
            stack.append(ancestor)
            pushes += 1
            open_ids.add(id(ancestor))
            a_index += 1
        # Close ancestors that ended before this descendant.
        while stack and stack[-1].end < descendant.pre:
            open_ids.discard(id(stack.pop()))
        if not stack:
            continue
        if include_self and id(descendant) in open_ids:
            result.append(descendant)
            continue
        if axis in (Axis.CHILD, Axis.ATTRIBUTE):
            if id(descendant.parent) in open_ids:
                result.append(descendant)
        elif stack[-1].pre < descendant.pre:
            result.append(descendant)
    if metrics is not None:
        metrics.stack_pushes[StackTreeJoin.name] += pushes
    return result


def stack_tree_ancestors(ancestors: List[Node], descendants: List[Node],
                         axis: Axis) -> List[Node]:
    """Stack-Tree, ancestor-major semi-join.

    Returns the distinct ancestors with at least one descendant in
    ``axis`` relation, in document order.  One sweep of the descendant
    list with binary searches over the ancestor candidates.
    """
    if not ancestors or not descendants:
        return []
    include_self = axis is Axis.DESCENDANT_OR_SELF
    descendant_pres = [node.pre for node in descendants]
    matched: list[Node] = []
    if axis in (Axis.CHILD, Axis.ATTRIBUTE):
        # Parent identity check: group descendants by parent once.
        parent_ids = {id(node.parent) for node in descendants}
        return [ancestor for ancestor in ancestors
                if id(ancestor) in parent_ids]
    for ancestor in ancestors:
        low_key = ancestor.pre if include_self else ancestor.pre + 1
        low = bisect_left(descendant_pres, low_key)
        high = bisect_right(descendant_pres, ancestor.end)
        if high > low:
            matched.append(ancestor)
    return matched
