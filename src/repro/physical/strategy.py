"""Choosing a tree pattern algorithm (paper Sections 2 and 5).

The paper's last compilation phase picks the physical algorithm for each
``TupleTreePattern``.  Its experiments yield heuristics rather than a
single winner:

* simple rooted path patterns → SCJoin or TwigJoin (never NLJoin);
* complex/branching patterns → TwigJoin ("always well-behaved");
* patterns embedded in maps and evaluated per-context on small regions
  (e.g. selective positional chains like ``(/t1[1])^k``) → NLJoin,
  whose cost tracks the visited region instead of the index streams.

:class:`HeuristicChooser` encodes those findings; the paper's own
conclusion — "clearly, an accurate cost model is needed" — is reflected
in the simple stream-statistics cost model it consults.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from ..guard.chaos import chaos_point
from ..obs import ExecMetrics
from ..pattern import PatternPath, TreePattern
from ..xmltree.document import IndexedDocument
from ..xmltree.nodetest import NameTest
from .base import TreePatternAlgorithm
from .cost import CostModel
from .nljoin import NLJoin
from .stacktree import StackTreeJoin
from .staircase import StaircaseJoin
from .streaming import StreamingXPath
from .twigjoin import TwigJoin


class Strategy(str, Enum):
    """Physical strategies for ``TupleTreePattern`` operators."""

    NESTED_LOOP = "nljoin"
    TWIG_JOIN = "twigjoin"
    STAIRCASE = "scjoin"
    STACK_TREE = "stacktree"
    STREAMING = "streaming"
    AUTO = "auto"
    COST = "cost"

    def __str__(self) -> str:
        return self.value


_INSTANCES = {
    Strategy.NESTED_LOOP: NLJoin,
    Strategy.TWIG_JOIN: TwigJoin,
    Strategy.STAIRCASE: StaircaseJoin,
    Strategy.STACK_TREE: StackTreeJoin,
    Strategy.STREAMING: StreamingXPath,
}


def make_algorithm(strategy: Strategy | str,
                   document: Optional[IndexedDocument] = None
                   ) -> TreePatternAlgorithm:
    """Instantiate the algorithm for a strategy (AUTO/COST need a
    document)."""
    strategy = Strategy(strategy)
    if strategy is Strategy.AUTO:
        return HeuristicChooser(document)
    if strategy is Strategy.COST:
        return CostBasedChooser(document)
    return _INSTANCES[strategy]()


def pattern_complexity(path: PatternPath) -> int:
    """Steps + branches, a rough size measure for the heuristics."""
    total = 0
    for step in path.steps:
        total += 1
        for branch in step.predicates:
            total += pattern_complexity(branch)
    return total


def estimated_stream_size(document: IndexedDocument,
                          path: PatternPath) -> int:
    """Total size of the streams a holistic scan would read."""
    total = 0
    for step in path.steps:
        if isinstance(step.test, NameTest):
            total += len(document.stream(step.test.name))
        else:
            total += document.size
        for branch in step.predicates:
            total += estimated_stream_size(document, branch)
    return total


class HeuristicChooser(TreePatternAlgorithm):
    """Per-evaluation dispatch between NL, Twig and Staircase.

    The decision uses the heuristics derived in Section 5:

    * when the context is a small subtree relative to the streams the
      index-based algorithms would scan, navigation wins → NLJoin;
    * branching patterns favour the holistic TwigJoin;
    * plain spines favour SCJoin.
    """

    name = "auto"

    #: visit/scan cost ratio below which navigation is preferred.
    NAVIGATION_THRESHOLD = 0.25

    def __init__(self, document: Optional[IndexedDocument] = None) -> None:
        self.document = document
        self.nljoin = NLJoin()
        self.twigjoin = TwigJoin()
        self.scjoin = StaircaseJoin()
        # Decision recording lives in ExecMetrics (bounded ring + exact
        # tally) so long-running engines never leak; the engine swaps in
        # its own metrics object via attach_metrics.
        self.attach_metrics(ExecMetrics())
        if document is not None:
            self.attach_summary(document.summary)

    def attach_metrics(self, metrics) -> None:
        if metrics is None:   # choosers always record decisions
            metrics = ExecMetrics()
        super().attach_metrics(metrics)
        self.nljoin.attach_metrics(metrics)
        self.twigjoin.attach_metrics(metrics)
        self.scjoin.attach_metrics(metrics)

    def attach_governor(self, governor) -> None:
        super().attach_governor(governor)
        self.nljoin.attach_governor(governor)
        self.twigjoin.attach_governor(governor)
        self.scjoin.attach_governor(governor)

    def attach_summary(self, summary) -> None:
        super().attach_summary(summary)
        self.nljoin.attach_summary(summary)
        self.twigjoin.attach_summary(summary)
        self.scjoin.attach_summary(summary)

    def attach_trace(self, trace) -> None:
        super().attach_trace(trace)
        self.nljoin.attach_trace(trace)
        self.twigjoin.attach_trace(trace)
        self.scjoin.attach_trace(trace)

    @property
    def decisions(self) -> list:
        """Recently chosen algorithm names (bounded; the exact tally is
        ``self.metrics.decision_counts``)."""
        return [record.algorithm for record in self.metrics.decision_ring]

    def choose(self, document: IndexedDocument, contexts,
               path: PatternPath) -> TreePatternAlgorithm:
        region = sum(max(context.end - context.pre, 1)
                     for context in contexts)
        streams = max(estimated_stream_size(document, path), 1)
        if region < streams * self.NAVIGATION_THRESHOLD:
            chosen: TreePatternAlgorithm = self.nljoin
        elif any(step.predicates for step in path.steps):
            chosen = self.twigjoin
        else:
            chosen = self.scjoin
        self.metrics.record_decision(self.name, chosen.name,
                                     region=region, streams=streams)
        if self.trace is not None:
            self.trace.event("decision", chooser=self.name,
                             algorithm=chosen.name)
        if self.governor is not None:
            self.governor.tick()
        chaos_point("auto.choose", chosen.name)
        return chosen

    def match_single(self, document, contexts, path):
        return self.choose(document, contexts, path).match_single(
            document, contexts, path)

    def enumerate_bindings(self, document, context, path):
        return self.choose(document, [context], path).enumerate_bindings(
            document, context, path)


class CostBasedChooser(TreePatternAlgorithm):
    """Per-evaluation dispatch driven by the cost model of
    :mod:`repro.physical.cost` — the "accurate cost model" the paper's
    conclusion calls for, covering all four algorithms (including the
    streaming matcher)."""

    name = "cost"

    def __init__(self, document: Optional[IndexedDocument] = None) -> None:
        self.document = document
        self._model: Optional["CostModel"] = None
        self.algorithms: dict[str, TreePatternAlgorithm] = {
            "nljoin": NLJoin(),
            "twigjoin": TwigJoin(),
            "scjoin": StaircaseJoin(),
            "streaming": StreamingXPath(),
        }
        self.attach_metrics(ExecMetrics())
        if document is not None:
            self.attach_summary(document.summary)

    def attach_metrics(self, metrics) -> None:
        if metrics is None:   # choosers always record decisions
            metrics = ExecMetrics()
        super().attach_metrics(metrics)
        for algorithm in self.algorithms.values():
            algorithm.attach_metrics(metrics)

    def attach_governor(self, governor) -> None:
        super().attach_governor(governor)
        for algorithm in self.algorithms.values():
            algorithm.attach_governor(governor)

    def attach_summary(self, summary) -> None:
        super().attach_summary(summary)
        # The cost model is summary-aware too: detaching the summary
        # (the --no-summary escape hatch) also reverts its estimates to
        # the flat tag-count statistics.
        self._model = None
        for algorithm in self.algorithms.values():
            algorithm.attach_summary(summary)

    def attach_trace(self, trace) -> None:
        super().attach_trace(trace)
        for algorithm in self.algorithms.values():
            algorithm.attach_trace(trace)

    @property
    def decisions(self) -> list:
        """Recently chosen algorithm names (bounded; the exact tally is
        ``self.metrics.decision_counts``)."""
        return [record.algorithm for record in self.metrics.decision_ring]

    def model_for(self, document: IndexedDocument) -> "CostModel":
        use_summary = (self.summary is not None
                       and self.summary.document is document)
        if (self._model is None or self._model.document is not document
                or (self._model.summary is not None) != use_summary):
            # Statistics gathering is linear in the document; cache the
            # model on the document (one slot per statistics source) so
            # repeated queries and fresh chooser instances reuse it.
            slot = "_cost_model" if use_summary else "_cost_model_plain"
            cached = getattr(document, slot, None)
            if cached is None:
                cached = CostModel(
                    document,
                    summary=self.summary if use_summary else None)
                setattr(document, slot, cached)
            self._model = cached
        return self._model

    def choose(self, document: IndexedDocument, contexts,
               path: PatternPath) -> TreePatternAlgorithm:
        estimate = self.model_for(document).estimate(list(contexts), path)
        name = estimate.best()
        self.metrics.record_decision(
            self.name, name,
            **{f"cost_{algo}": cost for algo, cost in estimate.costs.items()})
        if self.trace is not None:
            self.trace.event("decision", chooser=self.name,
                             algorithm=name)
        if self.governor is not None:
            self.governor.tick()
        chaos_point("cost.choose", name)
        return self.algorithms[name]

    def match_single(self, document, contexts, path):
        return self.choose(document, contexts, path).match_single(
            document, contexts, path)

    def enumerate_bindings(self, document, context, path):
        return self.choose(document, [context], path).enumerate_bindings(
            document, context, path)
