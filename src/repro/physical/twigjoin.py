"""Holistic twig join (TwigJoin).

Evaluates a whole tree pattern in one coordinated pass over per-tag
*streams* (the document's elements of each tag, sorted by ``pre``),
in the style of Bruno, Koudas & Srivastava's TwigStack:

* **stack phase** — all query nodes' streams are swept together in
  document order while a stack per query node tracks the currently open
  (ancestor) elements; a stream element survives as a *candidate* only
  if an element of the parent query node is open at that moment
  (ancestor–descendant relaxation of the edge);
* **expansion phase** — candidates are merge-joined top-down into full
  twig matches, re-checking each edge's exact axis (this is where the
  relaxed child/attribute edges are enforced — the standard "suboptimal
  but correct" treatment of parent-child edges).

Each ``TupleTreePattern`` evaluation scans the streams restricted (by
binary search) to the context node's region, which gives TwigJoin the
per-step index-scan cost profile of the paper's Section 5.3 experiment.

Axes outside the twig fragment (self, reverse axes) fall back to the
navigational NLJoin for correctness.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import List, Optional

from ..guard.chaos import chaos_point
from ..pattern import PatternPath, TreePattern
from ..xmltree.axes import Axis
from ..xmltree.document import IndexedDocument
from ..xmltree.node import AttributeNode, ElementNode, Node
from ..xmltree.nodetest import (ElementTest, NameTest, NodeTest, TextTest,
                                WildcardTest)
from .base import Binding, TreePatternAlgorithm, distinct_doc_order
from .nljoin import NLJoin

_SUPPORTED_AXES = (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF,
                   Axis.ATTRIBUTE)


@dataclass
class _QueryNode:
    """One node of the twig query tree."""

    axis: Axis
    test: NodeTest
    output_field: Optional[str]
    on_spine: bool
    index: int
    position: Optional[int] = None
    #: True when this node continues its parent's *path* (as opposed to
    #: being a predicate branch): positions apply before continuations
    #: but after predicate branches.
    is_continuation: bool = False
    parent: Optional["_QueryNode"] = None
    children: List["_QueryNode"] = field(default_factory=list)
    # Per-evaluation state.
    stream: List[Node] = field(default_factory=list)
    stack: List[Node] = field(default_factory=list)
    candidates: List[Node] = field(default_factory=list)
    candidate_pres: List[int] = field(default_factory=list)


def _build_query_tree(path: PatternPath, on_spine: bool,
                      nodes: List[_QueryNode]) -> _QueryNode:
    first: Optional[_QueryNode] = None
    previous: Optional[_QueryNode] = None
    for step in path.steps:
        node = _QueryNode(axis=step.axis, test=step.test,
                          output_field=step.output_field,
                          on_spine=on_spine, index=len(nodes),
                          position=step.position)
        nodes.append(node)
        if previous is not None:
            node.is_continuation = True
            previous.children.append(node)
            node.parent = previous
        for branch in step.predicates:
            # Predicate branches are purely existential: output
            # annotations inside them are outside the supported fragment
            # (the optimizer strips them — see TreePattern.add_predicates)
            # and are ignored, matching the NLJoin reference semantics.
            branch_root = _build_query_tree(branch.strip_outputs(),
                                            on_spine=False, nodes=nodes)
            branch_root.parent = node
            node.children.append(branch_root)
        if first is None:
            first = node
        previous = node
    assert first is not None
    return first


class TwigJoin(TreePatternAlgorithm):
    """Holistic twig join over per-tag streams."""

    name = "twigjoin"

    def __init__(self) -> None:
        self._fallback = NLJoin()

    def attach_metrics(self, metrics) -> None:
        super().attach_metrics(metrics)
        self._fallback.attach_metrics(metrics)

    def attach_governor(self, governor) -> None:
        super().attach_governor(governor)
        self._fallback.attach_governor(governor)

    def attach_trace(self, trace) -> None:
        super().attach_trace(trace)
        self._fallback.attach_trace(trace)

    # -- public API -----------------------------------------------------------

    def match_single(self, document: IndexedDocument,
                     contexts: List[Node], path: PatternPath) -> List[Node]:
        if not _supported(path):
            return self._fallback.match_single(document, contexts, path)
        results: list[Node] = []
        for context in contexts:
            spine_index, matches = self._solve(document, context, path)
            results.extend(match[spine_index] for match in matches)
        return chaos_point("twigjoin.match", distinct_doc_order(results))

    def enumerate_bindings(self, document: IndexedDocument, context: Node,
                           path: PatternPath) -> List[Binding]:
        if not _supported(path):
            return self._fallback.enumerate_bindings(document, context, path)
        nodes: list[_QueryNode] = []
        root = _build_query_tree(path, on_spine=True, nodes=nodes)
        matches = _twig_matches(document, context, root, nodes,
                                metrics=self.metrics, governor=self.governor)
        bindings: list[Binding] = []
        for match in matches:
            binding: Binding = {}
            for query_node in nodes:
                if query_node.output_field is not None:
                    binding[query_node.output_field] = match[query_node.index]
            bindings.append(binding)
        return chaos_point("twigjoin.enumerate", bindings)

    def _solve(self, document: IndexedDocument, context: Node,
               path: PatternPath):
        nodes: list[_QueryNode] = []
        root = _build_query_tree(path, on_spine=True, nodes=nodes)
        spine_leaf = root
        while True:
            next_spine = [c for c in spine_leaf.children if c.on_spine]
            if not next_spine:
                break
            spine_leaf = next_spine[0]
        return spine_leaf.index, _twig_matches(document, context, root,
                                               nodes, metrics=self.metrics,
                                               governor=self.governor)


def _supported(path: PatternPath) -> bool:
    for step in path.steps:
        if step.axis not in _SUPPORTED_AXES:
            return False
        if isinstance(step.test, TextTest):
            return False
        if not all(_supported(branch) for branch in step.predicates):
            return False
    return True


def _stream_for(document: IndexedDocument, context: Node,
                node: _QueryNode) -> List[Node]:
    """The region-restricted stream for one query node."""
    include_self = node.axis is Axis.DESCENDANT_OR_SELF
    test = node.test
    if node.axis is Axis.ATTRIBUTE:
        if isinstance(test, NameTest):
            stream: List[Node] = list(
                document.attribute_streams.get(test.name, []))
        else:
            stream = [attribute
                      for element in document.all_elements()
                      for attribute in element.attributes]
            stream.sort(key=lambda item: item.pre)
        return _region_slice(stream, context, include_self=False)
    if isinstance(test, NameTest):
        return _region_slice(list(document.stream(test.name)), context,
                             include_self)
    if isinstance(test, (WildcardTest, ElementTest)):
        elements = [n for n in document.nodes_by_pre
                    if isinstance(n, ElementNode) and test.matches(n)]
        return _region_slice(elements, context, include_self)
    # node(): every node in the region — except attributes, which are
    # only reachable via the attribute axis, never as children or
    # descendants.
    low = context.pre if include_self else context.pre + 1
    return [n for n in document.nodes_by_pre[low:context.end + 1]
            if not isinstance(n, AttributeNode)]


def _region_slice(stream: List[Node], context: Node,
                  include_self: bool) -> List[Node]:
    pres = [node.pre for node in stream]
    low_key = context.pre if include_self else context.pre + 1
    low = bisect_left(pres, low_key)
    high = bisect_right(pres, context.end)
    return stream[low:high]


def _twig_matches(document: IndexedDocument, context: Node,
                  root: _QueryNode, nodes: List[_QueryNode],
                  metrics=None, governor=None) -> list:
    for query_node in nodes:
        query_node.stream = _stream_for(document, context, query_node)
        query_node.stack = []
        query_node.candidates = []
        query_node.candidate_pres = []
    total_stream = sum(len(query_node.stream) for query_node in nodes)
    if metrics is not None:
        metrics.stream_scanned[TwigJoin.name] += total_stream
    if governor is not None:
        # Pre-charge the sweep about to happen so the budget trips
        # before the work, not after.
        governor.tick(total_stream + 1)
    _stack_phase(context, nodes, metrics=metrics)
    if any(not query_node.candidates for query_node in nodes):
        return []
    return _expand(context, root, nodes, governor=governor)


def _stack_phase(context: Node, nodes: List[_QueryNode],
                 metrics=None) -> None:
    """Sweep all streams in document order, keeping per-query-node stacks
    of open elements; an element is a candidate when an element of its
    parent query node (or the context, for roots) is open."""
    events: list[tuple[int, int, Node]] = []
    for query_node in nodes:
        events.extend((element.pre, query_node.index, element)
                      for element in query_node.stream)
    events.sort(key=lambda event: event[0])
    pushes = 0
    candidates_kept = 0
    open_root = context
    for pre, index, element in events:
        query_node = nodes[index]
        parent = query_node.parent
        if parent is None:
            ancestor_open = open_root.contains_or_self(element) \
                if query_node.axis is Axis.DESCENDANT_OR_SELF \
                else open_root.contains(element)
        else:
            while parent.stack and parent.stack[-1].end < pre:
                parent.stack.pop()
            ancestor_open = bool(parent.stack)
        if not ancestor_open:
            continue
        while query_node.stack and query_node.stack[-1].end < pre:
            query_node.stack.pop()
        query_node.stack.append(element)
        pushes += 1
        query_node.candidates.append(element)
        candidates_kept += 1
        query_node.candidate_pres.append(element.pre)
    if metrics is not None:
        metrics.stack_pushes[TwigJoin.name] += pushes
        metrics.nodes_visited[TwigJoin.name] += candidates_kept


def _candidates_under(query_node: _QueryNode, anchor: Node) -> list:
    include_self = query_node.axis is Axis.DESCENDANT_OR_SELF
    low_key = anchor.pre if include_self else anchor.pre + 1
    low = bisect_left(query_node.candidate_pres, low_key)
    high = bisect_right(query_node.candidate_pres, anchor.end)
    return [candidate for candidate in query_node.candidates[low:high]
            if _edge_holds(anchor, candidate, query_node.axis)]


def _surviving_candidates(query_node: _QueryNode, anchor: Node) -> list:
    """Edge- and predicate-filtered candidates in document order, with
    the positional extension applied (positions count per anchor, after
    the predicate branches, before any path continuation)."""
    predicates = [child for child in query_node.children
                  if not child.is_continuation]
    survivors = [candidate
                 for candidate in _candidates_under(query_node, anchor)
                 if all(_branch_exists(child, candidate)
                        for child in predicates)]
    if query_node.position is not None:
        index = query_node.position - 1
        survivors = ([survivors[index]]
                     if 0 <= index < len(survivors) else [])
    return survivors


def _branch_exists(query_node: _QueryNode, anchor: Node) -> bool:
    """Existential check of one (sub-)branch from an anchor element."""
    continuations = [child for child in query_node.children
                     if child.is_continuation]
    for candidate in _surviving_candidates(query_node, anchor):
        if all(_branch_exists(child, candidate)
               for child in continuations):
            return True
    return False


def _expand(context: Node, root: _QueryNode,
            nodes: List[_QueryNode], governor=None) -> list:
    """Merge candidates into full matches, enforcing exact axes.

    Spine nodes are enumerated; branch nodes without output annotations
    are checked existentially (a semi-join), which keeps extraction-only
    evaluation linear in the number of spine matches.  Branch nodes that
    carry output fields are enumerated too, producing bindings in
    root-to-leaf lexical order.
    """
    matches: list[list[Node]] = []
    assignment: dict[int, Node] = {}

    def enumerate_node(todo: list[_QueryNode]) -> None:
        if not todo:
            matches.append([assignment.get(n.index) for n in nodes])
            return
        query_node = todo[0]
        anchor = (assignment[query_node.parent.index]
                  if query_node.parent is not None else context)
        spine_children = [child for child in query_node.children
                          if child.is_continuation]
        for candidate in _surviving_candidates(query_node, anchor):
            if governor is not None:
                # The expansion is the one phase that can blow up
                # combinatorially; charge per candidate considered.
                governor.tick()
            assignment[query_node.index] = candidate
            enumerate_node(spine_children + todo[1:])
            del assignment[query_node.index]

    enumerate_node([root])
    return matches


def _edge_holds(ancestor: Node, candidate: Node, axis: Axis) -> bool:
    if axis is Axis.CHILD:
        return candidate.parent is ancestor
    if axis is Axis.ATTRIBUTE:
        return (isinstance(candidate, AttributeNode)
                and candidate.parent is ancestor)
    if axis is Axis.DESCENDANT:
        return ancestor.contains(candidate)
    if axis is Axis.DESCENDANT_OR_SELF:
        return ancestor.contains_or_self(candidate)
    return False
