"""Holistic twig join (TwigJoin).

Evaluates a whole tree pattern in one coordinated pass over per-tag
*streams* (the document's elements of each tag, sorted by ``pre``),
in the style of Bruno, Koudas & Srivastava's TwigStack:

* **stack phase** — all query nodes' streams are swept together in
  document order while a stack per query node tracks the currently open
  (ancestor) elements; a stream element survives as a *candidate* only
  if an element of the parent query node is open at that moment
  (ancestor–descendant relaxation of the edge);
* **expansion phase** — candidates are merge-joined top-down into full
  twig matches, re-checking each edge's exact axis (this is where the
  relaxed child/attribute edges are enforced — the standard "suboptimal
  but correct" treatment of parent-child edges).

Since the columnar refactor the sweep runs entirely in *integer space*:
streams, stacks and candidates are ``pre`` numbers, the open/closed
bookkeeping reads the document's ``end`` column, edges are checked
against the ``parent``/``kind`` columns, and node objects are
materialized only at the result boundary (the returned matches or
bindings).

Each ``TupleTreePattern`` evaluation scans the streams restricted (by
binary search) to the context node's region, which gives TwigJoin the
per-step index-scan cost profile of the paper's Section 5.3 experiment.

Axes outside the twig fragment (self, reverse axes) fall back to the
navigational NLJoin for correctness.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..guard.chaos import chaos_point
from ..pattern import PatternPath
from ..xmltree.axes import Axis
from ..xmltree.columnar import KIND_ATTRIBUTE, ColumnarDocument
from ..xmltree.document import IndexedDocument
from ..xmltree.node import Node
from ..xmltree.nodetest import (ElementTest, NameTest, NodeTest, TextTest,
                                WildcardTest)
from .base import Binding, TreePatternAlgorithm
from .nljoin import NLJoin

_SUPPORTED_AXES = (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF,
                   Axis.ATTRIBUTE)


@dataclass
class _QueryNode:
    """One node of the twig query tree."""

    axis: Axis
    test: NodeTest
    output_field: Optional[str]
    on_spine: bool
    index: int
    position: Optional[int] = None
    #: True when this node continues its parent's *path* (as opposed to
    #: being a predicate branch): positions apply before continuations
    #: but after predicate branches.
    is_continuation: bool = False
    parent: Optional["_QueryNode"] = None
    children: List["_QueryNode"] = field(default_factory=list)
    # Per-evaluation state, all in integer pre-space.
    stream: Sequence[int] = ()
    stack: List[int] = field(default_factory=list)
    candidates: List[int] = field(default_factory=list)


def _build_query_tree(path: PatternPath, on_spine: bool,
                      nodes: List[_QueryNode]) -> _QueryNode:
    first: Optional[_QueryNode] = None
    previous: Optional[_QueryNode] = None
    for step in path.steps:
        node = _QueryNode(axis=step.axis, test=step.test,
                          output_field=step.output_field,
                          on_spine=on_spine, index=len(nodes),
                          position=step.position)
        nodes.append(node)
        if previous is not None:
            node.is_continuation = True
            previous.children.append(node)
            node.parent = previous
        for branch in step.predicates:
            # Predicate branches are purely existential: output
            # annotations inside them are outside the supported fragment
            # (the optimizer strips them — see TreePattern.add_predicates)
            # and are ignored, matching the NLJoin reference semantics.
            branch_root = _build_query_tree(branch.strip_outputs(),
                                            on_spine=False, nodes=nodes)
            branch_root.parent = node
            node.children.append(branch_root)
        if first is None:
            first = node
        previous = node
    assert first is not None
    return first


class TwigJoin(TreePatternAlgorithm):
    """Holistic twig join over per-tag integer streams."""

    name = "twigjoin"

    def __init__(self) -> None:
        self._fallback = NLJoin()

    def attach_metrics(self, metrics) -> None:
        super().attach_metrics(metrics)
        self._fallback.attach_metrics(metrics)

    def attach_governor(self, governor) -> None:
        super().attach_governor(governor)
        self._fallback.attach_governor(governor)

    def attach_trace(self, trace) -> None:
        super().attach_trace(trace)
        self._fallback.attach_trace(trace)

    # -- public API -----------------------------------------------------------

    def match_single(self, document: IndexedDocument,
                     contexts: List[Node], path: PatternPath) -> List[Node]:
        if not _supported(path):
            return self._fallback.match_single(document, contexts, path)
        columns = document.columns
        results: List[int] = []
        for context in contexts:
            spine_index, matches = self._solve(columns, context, path)
            results.extend(match[spine_index] for match in matches)
        # distinct-doc-order in integer space, nodes only at the result
        # boundary.
        return chaos_point("twigjoin.match",
                           [document.node_at(pre)
                            for pre in sorted(set(results))])

    def enumerate_bindings(self, document: IndexedDocument, context: Node,
                           path: PatternPath) -> List[Binding]:
        if not _supported(path):
            return self._fallback.enumerate_bindings(document, context, path)
        columns = document.columns
        nodes: List[_QueryNode] = []
        root = _build_query_tree(path, on_spine=True, nodes=nodes)
        matches = _twig_matches(columns, context.pre, context.end, root,
                                nodes, metrics=self.metrics,
                                governor=self.governor)
        bindings: List[Binding] = []
        for match in matches:
            binding: Binding = {}
            for query_node in nodes:
                if query_node.output_field is not None:
                    binding[query_node.output_field] = \
                        document.node_at(match[query_node.index])
            bindings.append(binding)
        return chaos_point("twigjoin.enumerate", bindings)

    def _solve(self, columns: ColumnarDocument, context: Node,
               path: PatternPath):
        nodes: List[_QueryNode] = []
        root = _build_query_tree(path, on_spine=True, nodes=nodes)
        spine_leaf = root
        while True:
            next_spine = [c for c in spine_leaf.children if c.on_spine]
            if not next_spine:
                break
            spine_leaf = next_spine[0]
        return spine_leaf.index, _twig_matches(columns, context.pre,
                                               context.end, root, nodes,
                                               metrics=self.metrics,
                                               governor=self.governor)


def _supported(path: PatternPath) -> bool:
    for step in path.steps:
        if step.axis not in _SUPPORTED_AXES:
            return False
        if isinstance(step.test, TextTest):
            return False
        if not all(_supported(branch) for branch in step.predicates):
            return False
    return True


def _stream_for(columns: ColumnarDocument, context_pre: int,
                context_end: int, node: _QueryNode) -> Sequence[int]:
    """The region-restricted ``pre`` stream for one query node."""
    include_self = node.axis is Axis.DESCENDANT_OR_SELF
    test = node.test
    if node.axis is Axis.ATTRIBUTE:
        if isinstance(test, NameTest):
            pres = columns.attribute_stream(test.name)
        else:
            pres = columns.all_attribute_pres
        return _region_slice(pres, context_pre, context_end,
                             include_self=False)
    if isinstance(test, NameTest):
        return _region_slice(columns.element_stream(test.name),
                             context_pre, context_end, include_self)
    if isinstance(test, (WildcardTest, ElementTest)):
        sliced = _region_slice(columns.element_pres, context_pre,
                               context_end, include_self)
        if isinstance(test, ElementTest) and test.name is not None:
            name_id = columns.name_id
            names = columns.names
            return [pre for pre in sliced
                    if names[name_id[pre]] == test.name]
        return sliced
    # node(): every node in the region — except attributes, which are
    # only reachable via the attribute axis, never as children or
    # descendants.
    return _region_slice(columns.non_attribute_pres, context_pre,
                         context_end, include_self)


def _region_slice(pres: Sequence[int], context_pre: int, context_end: int,
                  include_self: bool) -> Sequence[int]:
    low_key = context_pre if include_self else context_pre + 1
    low = bisect_left(pres, low_key)
    high = bisect_right(pres, context_end)
    return pres[low:high]


def _twig_matches(columns: ColumnarDocument, context_pre: int,
                  context_end: int, root: _QueryNode,
                  nodes: List[_QueryNode], metrics=None,
                  governor=None) -> list:
    for query_node in nodes:
        query_node.stream = _stream_for(columns, context_pre, context_end,
                                        query_node)
        query_node.stack = []
        query_node.candidates = []
    total_stream = sum(len(query_node.stream) for query_node in nodes)
    if metrics is not None:
        metrics.stream_scanned[TwigJoin.name] += total_stream
    if governor is not None:
        # Pre-charge the sweep about to happen so the budget trips
        # before the work, not after.
        governor.tick(total_stream + 1)
    _stack_phase(columns, context_pre, context_end, nodes, metrics=metrics)
    if any(not query_node.candidates for query_node in nodes):
        return []
    return _expand(columns, context_pre, root, nodes, governor=governor)


def _stack_phase(columns: ColumnarDocument, context_pre: int,
                 context_end: int, nodes: List[_QueryNode],
                 metrics=None) -> None:
    """Sweep all streams in document order, keeping per-query-node stacks
    of open elements; an element is a candidate when an element of its
    parent query node (or the context, for roots) is open."""
    end_column = columns.end
    events: List[tuple] = []
    for query_node in nodes:
        index = query_node.index
        events.extend((pre, index) for pre in query_node.stream)
    events.sort(key=lambda event: event[0])
    pushes = 0
    candidates_kept = 0
    for pre, index in events:
        query_node = nodes[index]
        parent = query_node.parent
        if parent is None:
            if query_node.axis is Axis.DESCENDANT_OR_SELF:
                ancestor_open = context_pre <= pre <= context_end
            else:
                ancestor_open = context_pre < pre <= context_end
        else:
            stack = parent.stack
            while stack and end_column[stack[-1]] < pre:
                stack.pop()
            ancestor_open = bool(stack)
        if not ancestor_open:
            continue
        stack = query_node.stack
        while stack and end_column[stack[-1]] < pre:
            stack.pop()
        stack.append(pre)
        pushes += 1
        query_node.candidates.append(pre)
        candidates_kept += 1
    if metrics is not None:
        metrics.stack_pushes[TwigJoin.name] += pushes
        metrics.nodes_visited[TwigJoin.name] += candidates_kept


def _candidates_under(columns: ColumnarDocument, query_node: _QueryNode,
                      anchor: int) -> List[int]:
    include_self = query_node.axis is Axis.DESCENDANT_OR_SELF
    low_key = anchor if include_self else anchor + 1
    candidates = query_node.candidates
    low = bisect_left(candidates, low_key)
    high = bisect_right(candidates, columns.end[anchor])
    return [candidate for candidate in candidates[low:high]
            if _edge_holds(columns, anchor, candidate, query_node.axis)]


def _surviving_candidates(columns: ColumnarDocument,
                          query_node: _QueryNode,
                          anchor: int) -> List[int]:
    """Edge- and predicate-filtered candidates in document order, with
    the positional extension applied (positions count per anchor, after
    the predicate branches, before any path continuation)."""
    predicates = [child for child in query_node.children
                  if not child.is_continuation]
    survivors = [candidate
                 for candidate in _candidates_under(columns, query_node,
                                                    anchor)
                 if all(_branch_exists(columns, child, candidate)
                        for child in predicates)]
    if query_node.position is not None:
        index = query_node.position - 1
        survivors = ([survivors[index]]
                     if 0 <= index < len(survivors) else [])
    return survivors


def _branch_exists(columns: ColumnarDocument, query_node: _QueryNode,
                   anchor: int) -> bool:
    """Existential check of one (sub-)branch from an anchor element."""
    continuations = [child for child in query_node.children
                     if child.is_continuation]
    for candidate in _surviving_candidates(columns, query_node, anchor):
        if all(_branch_exists(columns, child, candidate)
               for child in continuations):
            return True
    return False


def _expand(columns: ColumnarDocument, context_pre: int, root: _QueryNode,
            nodes: List[_QueryNode], governor=None) -> list:
    """Merge candidates into full matches, enforcing exact axes.

    Spine nodes are enumerated; branch nodes without output annotations
    are checked existentially (a semi-join), which keeps extraction-only
    evaluation linear in the number of spine matches.  Branch nodes that
    carry output fields are enumerated too, producing bindings in
    root-to-leaf lexical order.
    """
    matches: List[List[Optional[int]]] = []
    assignment: dict = {}

    def enumerate_node(todo: List[_QueryNode]) -> None:
        if not todo:
            matches.append([assignment.get(n.index) for n in nodes])
            return
        query_node = todo[0]
        anchor = (assignment[query_node.parent.index]
                  if query_node.parent is not None else context_pre)
        spine_children = [child for child in query_node.children
                          if child.is_continuation]
        for candidate in _surviving_candidates(columns, query_node,
                                               anchor):
            if governor is not None:
                # The expansion is the one phase that can blow up
                # combinatorially; charge per candidate considered.
                governor.tick()
            assignment[query_node.index] = candidate
            enumerate_node(spine_children + todo[1:])
            del assignment[query_node.index]

    enumerate_node([root])
    return matches


def _edge_holds(columns: ColumnarDocument, ancestor: int, candidate: int,
                axis: Axis) -> bool:
    if axis is Axis.CHILD:
        return columns.parent[candidate] == ancestor
    if axis is Axis.ATTRIBUTE:
        return (columns.kind[candidate] == KIND_ATTRIBUTE
                and columns.parent[candidate] == ancestor)
    if axis is Axis.DESCENDANT:
        return ancestor < candidate <= columns.end[ancestor]
    if axis is Axis.DESCENDANT_OR_SELF:
        return ancestor <= candidate <= columns.end[ancestor]
    return False
