"""Streaming XPath evaluation (the paper's Section 7 future work).

Evaluates a downward tree pattern in a *single pass* over the document
event stream (element enter/leave events, attributes as immediate
enter+leave pairs), using memory proportional to document depth plus
buffered candidate outputs — the discipline of streaming XPath engines
(XSQ, TurboXPath, SPEX).

Per query node, a stack of open *candidacies* tracks elements that
could play that role given their open ancestors.  Predicate branches
resolve bottom-up: when a candidate element's subtree closes with all
its child sub-patterns satisfied, it marks the requirement satisfied on
every valid open anchor.  Spine matches buffer their extraction-point
nodes and release them upward as each spine ancestor confirms; outputs
become final when a spine-root candidacy anchored at the context node
completes.  An element whose predicates fail simply drops its buffer.

Only the downward fragment is supported (the same as TwigJoin);
anything else falls back to NLJoin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..guard.chaos import chaos_point
from ..pattern import PatternPath
from ..xmltree.axes import Axis
from ..xmltree.document import IndexedDocument
from ..xmltree.node import AttributeNode, ElementNode, Node
from ..xmltree.nodetest import TextTest
from .base import Binding, TreePatternAlgorithm, distinct_doc_order
from .nljoin import NLJoin
from .twigjoin import _QueryNode, _build_query_tree

_SUPPORTED_AXES = (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF,
                   Axis.ATTRIBUTE, Axis.SELF)

ENTER, LEAVE = 0, 1


@dataclass
class _Candidacy:
    """An open element playing the role of one query node."""

    element: Node
    query: _QueryNode
    satisfied: Set[int] = field(default_factory=set)
    pending: List[Node] = field(default_factory=list)

    def completed(self) -> bool:
        return all(child.index in self.satisfied
                   for child in self.query.children)


class StreamingXPath(TreePatternAlgorithm):
    """One-pass, event-driven pattern matching."""

    name = "streaming"

    def __init__(self) -> None:
        self._fallback = NLJoin()

    def attach_metrics(self, metrics) -> None:
        super().attach_metrics(metrics)
        self._fallback.attach_metrics(metrics)

    def attach_governor(self, governor) -> None:
        super().attach_governor(governor)
        self._fallback.attach_governor(governor)

    def attach_trace(self, trace) -> None:
        super().attach_trace(trace)
        self._fallback.attach_trace(trace)

    def match_single(self, document: IndexedDocument,
                     contexts: List[Node], path: PatternPath) -> List[Node]:
        if not _supported(path):
            return self._fallback.match_single(document, contexts, path)
        results: list[Node] = []
        for context in contexts:
            results.extend(self._stream_one(context, path))
        return chaos_point("streaming.match", distinct_doc_order(results))

    def enumerate_bindings(self, document: IndexedDocument, context: Node,
                           path: PatternPath) -> List[Binding]:
        # Binding enumeration needs random access to completed matches;
        # this streaming matcher only implements the single-output
        # (XPath) semantics, like the staircase join.
        return self._fallback.enumerate_bindings(document, context, path)

    # -- the automaton ---------------------------------------------------------

    def _stream_one(self, context: Node, path: PatternPath) -> List[Node]:
        nodes: list[_QueryNode] = []
        root_query = _build_query_tree(path, on_spine=True, nodes=nodes)
        spine_leaf = root_query
        while True:
            spine_children = [c for c in spine_leaf.children if c.on_spine]
            if not spine_children:
                break
            spine_leaf = spine_children[0]

        # Per query node: the stack of open candidacies (innermost last).
        open_stacks: Dict[int, List[_Candidacy]] = {
            query.index: [] for query in nodes}
        results: list[Node] = []
        events_seen = 0
        candidacy_pushes = 0

        def valid_anchors(query: _QueryNode, element: Node
                          ) -> List[Optional[_Candidacy]]:
            """Open anchor candidacies for a query node's edge."""
            axis = query.axis
            if query.parent is None:
                # Anchored at the context node itself.
                if axis is Axis.DESCENDANT_OR_SELF:
                    ok = context.contains_or_self(element)
                elif axis is Axis.SELF:
                    ok = element is context
                elif axis in (Axis.CHILD, Axis.ATTRIBUTE):
                    ok = element.parent is context
                else:
                    ok = context.contains(element)
                return [None] if ok else []
            anchors: list[Optional[_Candidacy]] = []
            for candidacy in open_stacks[query.parent.index]:
                anchor = candidacy.element
                if axis in (Axis.CHILD, Axis.ATTRIBUTE):
                    if element.parent is anchor:
                        anchors.append(candidacy)
                elif axis is Axis.SELF:
                    if element is anchor:
                        anchors.append(candidacy)
                elif axis is Axis.DESCENDANT_OR_SELF:
                    if anchor.contains_or_self(element):
                        anchors.append(candidacy)
                else:  # descendant
                    if anchor.contains(element):
                        anchors.append(candidacy)
            return anchors

        def on_enter(element: Node) -> None:
            # Pre-order over query nodes so same-element parent
            # candidacies exist before self-axis children look for them.
            for query in nodes:
                kind = query.axis.principal_kind
                if not query.test.matches(element, kind):
                    continue
                if isinstance(element, AttributeNode) != (
                        query.axis is Axis.ATTRIBUTE):
                    continue
                if valid_anchors(query, element):
                    open_stacks[query.index].append(
                        _Candidacy(element, query))
                    nonlocal candidacy_pushes
                    candidacy_pushes += 1

        def on_leave(element: Node) -> None:
            # Reverse pre-order: deeper query roles resolve first so a
            # self-axis child can satisfy its same-element parent.
            for query in reversed(nodes):
                stack = open_stacks[query.index]
                if not stack or stack[-1].element is not element:
                    continue
                candidacy = stack.pop()
                if not candidacy.completed():
                    continue  # predicates failed: drop buffered output
                if query is spine_leaf:
                    candidacy.pending.append(element)
                anchors = valid_anchors(query, element)
                if query.parent is None:
                    if anchors:  # anchored at the context
                        results.extend(candidacy.pending)
                    continue
                for anchor in anchors:
                    assert anchor is not None
                    anchor.satisfied.add(query.index)
                    if query.on_spine:
                        anchor.pending.extend(candidacy.pending)

        governor = self.governor
        for kind, node in _events(context):
            if kind == ENTER:
                events_seen += 1
                if governor is not None:
                    governor.tick()
                on_enter(node)
            else:
                on_leave(node)
        if self.metrics is not None:
            self.metrics.nodes_visited[self.name] += events_seen
            self.metrics.stack_pushes[self.name] += candidacy_pushes
        return results


def _events(context: Node) -> Iterator[Tuple[int, Node]]:
    """Enter/leave events for the context subtree (context included,
    so descendant-or-self::/self:: roots can match the context)."""
    stack: list[Tuple[int, Node]] = [(ENTER, context)]
    while stack:
        kind, node = stack.pop()
        if kind == LEAVE:
            yield kind, node
            continue
        yield ENTER, node
        stack.append((LEAVE, node))
        for child in reversed(node.children):
            stack.append((ENTER, child))
        if isinstance(node, ElementNode):
            for attribute in reversed(node.attributes):
                stack.append((LEAVE, attribute))
                stack.append((ENTER, attribute))
    # Note: attribute leave is pushed before enter and popped after it
    # because the stack reverses order.


def _supported(path: PatternPath) -> bool:
    for step in path.steps:
        if step.axis not in _SUPPORTED_AXES:
            return False
        if isinstance(step.test, TextTest):
            return False
        if step.position is not None:
            # Positional steps need per-anchor ordered buffering, which
            # this matcher does not implement; fall back to navigation.
            return False
        if not all(_supported(branch) for branch in step.predicates):
            return False
    return True
