"""A cost model for tree-pattern algorithm selection.

The paper closes its evaluation with: *"A combination of parameters,
including the form of the query and the shape and size of the documents
must be taken into account to predict which XPath join algorithms
performs best. Clearly, an accurate cost model is needed."*  This module
provides that model for the reproduction's four algorithms.

Cost formulas (unit: abstract "node touches"; the constants are relative
weights fitted to this engine's measured per-node costs, see
EXPERIMENTS.md §E4/E2):

=============  ==============================================================
algorithm      estimated cost per evaluation
=============  ==============================================================
NLJoin         ``NL_VISIT · visited``, where ``visited`` is the region the
               navigation can touch: the full context subtrees for
               descendant spines, only ``fanout^steps`` for child-only
               spines (the Section 5.3 effect)
TwigJoin       ``TJ_SETUP + TJ_SCAN · streams`` — every query node's
               region-restricted stream is swept once, with a fixed
               per-evaluation machinery cost
SCJoin         ``SC_SCAN · streams · passes`` — one array scan per spine
               step plus one extra pass per predicate branch (the
               multi-pass degradation on complex patterns)
Streaming      ``ST_SCAN · region`` — one pass over every event in the
               context region
=============  ==============================================================

``streams`` is the stream volume inside the context regions.  With a
structural summary attached (the default through the engine; see
:mod:`repro.xmltree.summary`) it is estimated from summary-derived
per-query-node cardinalities — the number of nodes that can actually
match each query node given the steps above it — scaled by the region
fraction; without one it falls back to the document-wide tag statistics.
The relative weights were re-checked against the EXPERIMENTS.md §E4/E2
procedure after the summary switch-over: the summary estimates are
uniformly ≤ the tag-count estimates and preserve every regime boundary
(NLJoin on selective child chains, SCJoin/TwigJoin on rooted descendant
paths, the branch penalty on SCJoin), so the fitted constants carry
over unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from typing import Optional

from ..pattern import PatternPath
from ..xmltree.document import IndexedDocument
from ..xmltree.node import Node
from ..xmltree.axes import Axis
from ..xmltree.nodetest import NameTest
from ..xmltree.summary import PathSummary

#: relative per-unit weights (fitted on this engine; see module docstring).
NL_VISIT = 1.0
TJ_SCAN = 0.45
TJ_SETUP = 120.0
SC_SCAN = 0.18
SC_BRANCH_PASS = 0.35
ST_SCAN = 0.9

_CHILD_LIKE = (Axis.CHILD, Axis.ATTRIBUTE, Axis.SELF)


@dataclass(frozen=True)
class CostEstimate:
    """Estimated costs, one entry per algorithm name."""

    costs: Dict[str, float]

    def best(self) -> str:
        return min(self.costs, key=self.costs.get)

    def __getitem__(self, name: str) -> float:
        return self.costs[name]


class CostModel:
    """Estimates per-algorithm evaluation cost from document statistics."""

    _UNSET = object()

    def __init__(self, document: IndexedDocument,
                 summary: "Optional[PathSummary]" = _UNSET) -> None:
        self.document = document
        #: structural summary feeding per-query-node cardinalities; the
        #: default builds (or reuses) the document's own summary, pass
        #: ``None`` explicitly for flat tag-count statistics only.
        self.summary = document.summary if summary is CostModel._UNSET \
            else summary
        self.size = max(document.size, 1)
        elements = document.all_elements()
        child_counts = [len(element.children) for element in elements]
        self.average_fanout = (sum(child_counts) / len(child_counts)
                               if child_counts else 1.0)

    # -- statistics -----------------------------------------------------------

    def region_size(self, contexts: List[Node]) -> int:
        return sum(max(context.end - context.pre, 1)
                   for context in contexts)

    def stream_volume(self, path: PatternPath, region: int) -> float:
        """Stream elements the index algorithms touch inside the region.

        With a summary, per-query-node cardinalities (what can actually
        match each step under its prefix) stand in for the flat tag
        counts; both are scaled by the region fraction.
        """
        fraction = min(region / self.size, 1.0)
        if self.summary is not None:
            volume = self.summary.pattern_volume(path)
            if volume is not None:
                return volume * fraction
        return self._tag_count_volume(path, region)

    def _tag_count_volume(self, path: PatternPath, region: int) -> float:
        """The summary-free fallback: document-wide tag statistics."""
        fraction = min(region / self.size, 1.0)
        total = 0.0
        for step in path.steps:
            if isinstance(step.test, NameTest):
                total += len(self.document.stream(step.test.name)) * fraction
            else:
                total += self.size * fraction
            for branch in step.predicates:
                total += self._tag_count_volume(branch, region)
        return total

    def spine_steps(self, path: PatternPath) -> int:
        return len(path.steps)

    def branch_count(self, path: PatternPath) -> int:
        total = 0
        for step in path.steps:
            for branch in step.predicates:
                total += 1 + self.branch_count(branch)
        return total

    def navigation_visits(self, contexts: List[Node],
                          path: PatternPath) -> float:
        """Nodes navigation touches: child-only spines touch only the
        fanout frontier per step; any descendant step opens the whole
        region."""
        region = self.region_size(contexts)
        if all(step.axis in _CHILD_LIKE for step in path.steps):
            frontier = float(len(contexts))
            visited = 0.0
            for _ in path.steps:
                frontier *= max(self.average_fanout, 1.0)
                visited += frontier
            branch_factor = 1 + self.branch_count(path)
            return min(visited * branch_factor, float(region))
        return float(region) * (1 + self.branch_count(path))

    # -- the model --------------------------------------------------------------

    def estimate(self, contexts: List[Node],
                 path: PatternPath) -> CostEstimate:
        region = self.region_size(contexts)
        streams = self.stream_volume(path, region)
        branches = self.branch_count(path)
        return CostEstimate({
            "nljoin": NL_VISIT * self.navigation_visits(contexts, path),
            "twigjoin": TJ_SETUP + TJ_SCAN * streams,
            "scjoin": (SC_SCAN * streams
                       + SC_BRANCH_PASS * streams * branches),
            "streaming": ST_SCAN * region,
        })
