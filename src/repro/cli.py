"""Command-line interface.

::

    python -m repro query   "$input//person/name" --doc site.xml
    python -m repro explain "$input//person[emailaddress]/name"
    python -m repro compare "$input//person/name" --doc site.xml
    python -m repro visualize "$input//person[emailaddress]" --what pattern
    python -m repro generate xmark --size 100 --output site.xml
    python -m repro index site.xml -o site.rpxc --verify
    python -m repro query "$input//person/name" --doc site.rpxc
    python -m repro serve-bench --workers 4 --concurrency 8
    python -m repro serve-bench --cluster --http --http-port 9464
    python -m repro top --url http://127.0.0.1:9464

``query`` evaluates against a document (``--doc``, or a built-in sample
when omitted) and prints the result sequence.  ``explain`` shows every
compilation stage.  ``compare`` times every physical strategy on one
query.  ``generate`` writes a MemBeR-style or XMark-style document.
``index`` saves a document's columnar index, which ``--doc`` (with the
default ``--store auto``) later mmap-opens in O(1) without re-parsing.
``serve-bench`` load-tests the concurrent query service
(:mod:`repro.serve`) with a seeded mixed workload; ``--http`` mounts
the live observability endpoint on it, and ``top`` is the matching
refreshing ops console (see docs/OBSPLANE.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import __version__
from .algebra.optimizer import OptimizerOptions
from .data import deep_member_document, member_document, xmark_document
from .engine import BACKENDS, DEFAULT_FALLBACK_CHAIN, Engine
from .guard import Budgets, ReproError
from .physical import Strategy
from .xmltree import Node, serialize

SAMPLE_DOCUMENT = """<site><people>
<person id="p1"><name>John</name><emailaddress>j@x.example</emailaddress>
<profile><interest category="art"/></profile></person>
<person id="p2"><name>Mary</name>
<profile><interest category="music"/></profile></person>
</people></site>"""

_STRATEGY_CHOICES = [strategy.value for strategy in Strategy]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XQuery engine with algebraic tree-pattern detection "
                    "(reproduction of 'Put a Tree Pattern in Your "
                    "Algebra', ICDE 2007)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="evaluate a query")
    _add_document_options(query)
    query.add_argument("expression", help="the XQuery expression")
    query.add_argument("--strategy", choices=_STRATEGY_CHOICES,
                       default=Strategy.STAIRCASE.value,
                       help="tree-pattern algorithm (default: scjoin)")
    query.add_argument("--no-optimize", action="store_true",
                       help="skip rewriting and tree-pattern detection")
    query.add_argument("--positional", action="store_true",
                       help="enable the positional-pattern extension")
    query.add_argument("--format", choices=["text", "xml"], default="text",
                       help="result rendering (default: text values)")
    query.add_argument("--metrics", action="store_true",
                       help="print stage timings, execution counters and "
                            "plan-cache statistics after the results")
    query.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock budget for the query (shared "
                            "across fallback attempts)")
    query.add_argument("--max-steps", type=int, default=None, metavar="N",
                       help="evaluation step budget for the query")
    query.add_argument("--strict", action="store_true",
                       help="fail fast: no strategy fallback, original "
                            "algorithm errors propagate")
    query.add_argument("--fallback-chain", default=None, metavar="CHAIN",
                       help="comma-separated strategies to retry on "
                            "algorithm failure (default: "
                            f"{','.join(DEFAULT_FALLBACK_CHAIN)}; "
                            "'none' disables fallback)")

    explain = commands.add_parser(
        "explain", help="show every compilation stage for a query")
    _add_document_options(explain)
    explain.add_argument("expression")
    explain.add_argument("--positional", action="store_true",
                         help="enable the positional-pattern extension")
    explain.add_argument("--metrics", action="store_true",
                         help="include per-stage compile timings")
    explain.add_argument("--analyze", action="store_true",
                         help="EXPLAIN ANALYZE: execute the query once "
                              "under a trace and annotate the plan with "
                              "measured per-operator wall time and "
                              "cardinalities (see docs/TRACING.md)")
    explain.add_argument("--strategy", choices=_STRATEGY_CHOICES,
                         default=None,
                         help="strategy for the --analyze execution")
    explain.add_argument("--dot", default=None, metavar="FILE",
                         help="with --analyze: also write the annotated "
                              "plan graph as Graphviz DOT to FILE")

    compare = commands.add_parser(
        "compare", help="time every strategy on one query")
    _add_document_options(compare)
    compare.add_argument("expression")
    compare.add_argument("--repeats", type=int, default=3)
    compare.add_argument("--metrics", action="store_true",
                         help="show work counters (nodes visited, stream "
                              "elements scanned) next to the timings")

    visualize = commands.add_parser(
        "visualize", help="emit Graphviz DOT for a query's plan/patterns")
    _add_document_options(visualize)
    visualize.add_argument("expression")
    visualize.add_argument("--what", choices=["plan", "pattern"],
                           default="plan")
    visualize.add_argument("--positional", action="store_true",
                           help="enable the positional-pattern extension")

    serve_bench = commands.add_parser(
        "serve-bench",
        help="drive the concurrent query service with a seeded mixed "
             "load and report throughput/latency (see docs/SERVING.md)")
    serve_bench.add_argument("--workers", type=int, default=4,
                             help="service worker threads — or worker "
                                  "processes with --cluster (default: 4)")
    serve_bench.add_argument("--cluster", action="store_true",
                             help="serve from a multi-process sharded "
                                  "cluster (repro.serve.cluster) instead "
                                  "of the in-process thread pool; see "
                                  "docs/CLUSTER.md")
    serve_bench.add_argument("--shards", type=int, default=4,
                             help="with --cluster, shards per document "
                                  "(default: 4)")
    serve_bench.add_argument("--concurrency", type=int, default=8,
                             help="closed-loop client threads "
                                  "(default: 8)")
    serve_bench.add_argument("--requests", type=int, default=25,
                             metavar="N",
                             help="requests per client (default: 25)")
    serve_bench.add_argument("--queue-limit", type=int, default=128,
                             metavar="N",
                             help="admission queue capacity "
                                  "(default: 128)")
    serve_bench.add_argument("--seed", type=int, default=7,
                             help="workload schedule seed (default: 7)")
    serve_bench.add_argument("--timeout", type=float, default=None,
                             metavar="SECONDS",
                             help="per-request deadline (queue wait "
                                  "included)")
    serve_bench.add_argument("--check", action="store_true",
                             help="exit non-zero on any differential "
                                  "mismatch, error or shed request "
                                  "(for CI smoke runs)")
    serve_bench.add_argument("--trace", action="store_true",
                             help="attach a span tracer to the service "
                                  "(per-request traces + flight "
                                  "recorder; see docs/TRACING.md)")
    serve_bench.add_argument("--trace-sample", type=float, default=None,
                             metavar="RATIO",
                             help="trace only this fraction of requests "
                                  "(deterministic sampler; implies "
                                  "--trace)")
    serve_bench.add_argument("--trace-out", default=None, metavar="FILE",
                             help="write every finished request trace "
                                  "as Chrome trace JSON (implies "
                                  "--trace; open in chrome://tracing)")
    serve_bench.add_argument("--prom-out", default=None, metavar="FILE",
                             help="write service metrics + tracer "
                                  "aggregates in Prometheus text format")
    serve_bench.add_argument("--flight-out", default=None, metavar="FILE",
                             help="write the flight recorder's retained "
                                  "traces (K slowest + most recent) as "
                                  "Chrome trace JSON (implies --trace)")
    serve_bench.add_argument("--chaos-rate", type=float, default=0.0,
                             metavar="RATE",
                             help="inject faults at --chaos-site at this "
                                  "rate while the load runs (0 disables; "
                                  "see docs/ROBUSTNESS.md)")
    serve_bench.add_argument("--chaos-site", default="serve.execute",
                             metavar="SITE",
                             help="chaos site to fault (default: "
                                  "serve.execute)")
    serve_bench.add_argument("--chaos-action", default="raise",
                             choices=["raise", "delay"],
                             help="fault action (default: raise)")
    serve_bench.add_argument("--chaos-delay", type=float, default=0.005,
                             metavar="SECONDS",
                             help="delay per fired 'delay' action "
                                  "(default: 0.005)")
    serve_bench.add_argument("--retry", default=True,
                             action=argparse.BooleanOptionalAction,
                             help="retry failed attempts with backoff "
                                  "and strategy fallback (default: on)")
    serve_bench.add_argument("--breaker", default=True,
                             action=argparse.BooleanOptionalAction,
                             help="per-document circuit breaker "
                                  "(default: on)")
    serve_bench.add_argument("--min-availability", type=float,
                             default=0.99, metavar="FRACTION",
                             help="with --check and --chaos-rate > 0, "
                                  "fail below this success fraction "
                                  "(default: 0.99)")
    serve_bench.add_argument("--http", action="store_true",
                             help="serve the live observability "
                                  "endpoint (/metrics, /healthz, "
                                  "/flight, /traces/<id>) while the "
                                  "load runs; see docs/OBSPLANE.md")
    serve_bench.add_argument("--http-port", type=int, default=0,
                             metavar="PORT",
                             help="with --http, bind this port "
                                  "(default: 0 = ephemeral; the bound "
                                  "URL is printed before the load "
                                  "starts)")
    serve_bench.add_argument("--http-hold", type=float, default=0.0,
                             metavar="SECONDS",
                             help="with --http, keep the endpoint (and "
                                  "service) up this long after the "
                                  "load finishes so scrapers can poll "
                                  "the final state")

    top = commands.add_parser(
        "top",
        help="live ops console: poll an observability endpoint and "
             "render qps/p50/p95/p99/shed/breaker tables per document "
             "and per shard (see docs/OBSPLANE.md)")
    top.add_argument("--url", default="http://127.0.0.1:9464",
                     help="endpoint base URL (default: "
                          "http://127.0.0.1:9464)")
    top.add_argument("--interval", type=float, default=2.0,
                     metavar="SECONDS",
                     help="seconds between scrapes (default: 2.0)")
    top.add_argument("--iterations", type=int, default=None, metavar="N",
                     help="stop after N scrapes (default: run until "
                          "interrupted)")
    top.add_argument("--no-clear", action="store_true",
                     help="append refreshes instead of clearing the "
                          "screen (for logs and CI)")

    index = commands.add_parser(
        "index",
        help="parse an XML document and save its columnar index "
             "(mmap-opened in O(1) by --store columnar / the catalog; "
             "see docs/STORAGE.md)")
    index.add_argument("input", help="XML document file")
    index.add_argument("--output", "-o", default=None, metavar="FILE",
                       help="index file to write "
                            "(default: INPUT with a .rpxc suffix)")
    index.add_argument("--verify", action="store_true",
                       help="re-open the written file, check the "
                            "checksum and every structural invariant, "
                            "and compare all columns against the "
                            "in-memory build")
    index.add_argument("--stats", action="store_true",
                       help="print per-tag stream sizes next to the "
                            "summary line")

    shard = commands.add_parser(
        "shard",
        help="split a document into subtree-closed columnar shards "
             "plus a manifest, servable by the multi-process cluster "
             "(see docs/CLUSTER.md)")
    shard.add_argument("input",
                       help="XML document file or saved .rpxc index")
    shard.add_argument("--shards", type=int, default=4,
                       help="shard count to aim for (default: 4; heavy "
                            "skew may yield fewer)")
    shard.add_argument("--output-dir", "-o", default=None, metavar="DIR",
                       help="layout directory (default: the input's "
                            "directory)")
    shard.add_argument("--name", default=None,
                       help="document name inside the layout "
                            "(default: the input's stem)")

    generate = commands.add_parser(
        "generate", help="write a synthetic benchmark document")
    generate.add_argument("kind", choices=["member", "deep", "xmark"])
    generate.add_argument("--size", type=int, default=1000,
                          help="node count (member/deep) or person count "
                               "(xmark)")
    generate.add_argument("--depth", type=int, default=None)
    generate.add_argument("--tags", type=int, default=100,
                          help="tag count for member documents")
    generate.add_argument("--seed", type=int, default=20070415)
    generate.add_argument("--output", "-o", default="-",
                          help="output file ('-' for stdout)")
    return parser


def _add_document_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--doc", help="document file: XML text or a "
                                      "saved columnar index "
                                      "(default: a built-in sample)")
    parser.add_argument("--store", choices=["auto", "object", "columnar"],
                        default="auto",
                        help="document store: 'columnar' mmap-opens a "
                             "saved index file ('repro index'), 'object' "
                             "parses XML text, 'auto' sniffs the file "
                             "magic (default)")
    parser.add_argument("--no-summary", action="store_true",
                        help="disable the structural path summary "
                             "(pattern prefiltering and selectivity-"
                             "aware costing)")
    parser.add_argument("--backend", choices=list(BACKENDS),
                        default="interpreted",
                        help="execution backend: 'compiled' fuses each "
                             "plan into generated push-based Python "
                             "(falling back to the interpreter on "
                             "codegen failure); 'interpreted' (default) "
                             "walks the plan strictly")


def _load_engine(args) -> Engine:
    options = OptimizerOptions(
        enable_positional=getattr(args, "positional", False))
    kwargs: dict = {"optimizer_options": options}
    timeout = getattr(args, "timeout", None)
    max_steps = getattr(args, "max_steps", None)
    if timeout is not None or max_steps is not None:
        kwargs["budgets"] = Budgets(wall_seconds=timeout,
                                    max_steps=max_steps)
    if getattr(args, "strict", False):
        kwargs["strict"] = True
    if getattr(args, "no_summary", False):
        kwargs["use_summary"] = False
    kwargs["backend"] = getattr(args, "backend", "interpreted")
    chain = getattr(args, "fallback_chain", None)
    if chain is not None:
        kwargs["fallback_chain"] = None if chain.lower() == "none" else chain
    if args.doc:
        return Engine.from_file(args.doc,
                                store=getattr(args, "store", "auto"),
                                **kwargs)
    return Engine.from_xml(SAMPLE_DOCUMENT, **kwargs)


def _render_item(item, as_xml: bool) -> str:
    if isinstance(item, Node):
        return serialize(item) if as_xml else item.string_value()
    if isinstance(item, bool):
        return "true" if item else "false"
    return str(item)


def _command_query(args, out) -> int:
    engine = _load_engine(args)
    if args.metrics:
        traced = engine.run_traced(args.expression, strategy=args.strategy,
                                   optimize=not args.no_optimize)
        for item in traced.results:
            print(_render_item(item, args.format == "xml"), file=out)
        print(file=out)
        print(traced.report(), file=out)
        return 0
    result = engine.run(args.expression, strategy=args.strategy,
                        optimize=not args.no_optimize)
    for item in result:
        print(_render_item(item, args.format == "xml"), file=out)
    return 0


def _command_explain(args, out) -> int:
    engine = _load_engine(args)
    if args.analyze:
        analysis = engine.explain_analyze(args.expression,
                                          strategy=args.strategy)
        print(analysis.render(), file=out)
        if args.dot:
            with open(args.dot, "w", encoding="utf-8") as handle:
                handle.write(analysis.to_dot() + "\n")
            print(file=out)
            print(f"wrote annotated plan graph to {args.dot}", file=out)
        return 0
    compiled = engine.compile(args.expression)
    print(compiled.explain(metrics=args.metrics), file=out)
    print(file=out)
    print(f"tree patterns detected: {compiled.tree_pattern_count()}",
          file=out)
    for pattern in compiled.tree_patterns():
        print(f"  {pattern.to_string()}", file=out)
    return 0


def _command_compare(args, out) -> int:
    from .bench import measure_strategy
    engine = _load_engine(args)
    compiled = engine.compile(args.expression)
    reference: Optional[list] = None
    print(f"query: {args.expression}", file=out)
    print(f"tree patterns: {compiled.tree_pattern_count()}", file=out)
    for strategy in ("nljoin", "twigjoin", "scjoin", "stacktree",
                     "streaming", "auto", "cost"):
        measurement = measure_strategy(engine, compiled, strategy,
                                       repeats=max(args.repeats, 1))
        result = engine.execute(compiled, strategy=strategy)
        keys = [getattr(item, "pre", item) for item in result]
        if reference is None:
            reference = keys
        status = "ok" if keys == reference else "MISMATCH"
        line = (f"  {strategy:>9}: {measurement.seconds * 1000:9.3f} ms  "
                f"({measurement.result_count} items, {status})")
        metrics = measurement.metrics
        if args.metrics and metrics is not None:
            line += (f"  visited={sum(metrics.nodes_visited.values())}"
                     f" scanned={sum(metrics.stream_scanned.values())}"
                     f" pushes={sum(metrics.stack_pushes.values())}")
            if metrics.decision_counts:
                choices = ",".join(
                    f"{name}:{count}" for name, count
                    in sorted(metrics.decision_counts.items()))
                line += f" decisions={choices}"
        print(line, file=out)
    return 0


def _command_visualize(args, out) -> int:
    from .algebra import pattern_to_dot, plan_to_dot
    engine = _load_engine(args)
    compiled = engine.compile(args.expression)
    if args.what == "plan":
        print(plan_to_dot(compiled.optimized, name=args.expression),
              file=out)
        return 0
    patterns = compiled.tree_patterns()
    if not patterns:
        print("// no tree patterns detected", file=out)
        return 1
    for index, pattern in enumerate(patterns):
        print(pattern_to_dot(pattern, name=f"pattern{index}"), file=out)
    return 0


def _command_serve_bench(args, out) -> int:
    from .guard import ChaosSpec, inject
    from .serve import (BreakerPolicy, ClusterService, QueryService,
                        RetryPolicy, default_catalog, mixed_workload,
                        run_load, sequential_baseline)
    from .trace import (FlightRecorder, Tracer, write_chrome_trace,
                        write_prometheus)
    from .trace.recorder import DEFAULT_RECENT
    tracing_on = bool(args.trace or args.trace_sample is not None
                      or args.trace_out or args.flight_out)
    tracer = None
    flight = None
    if tracing_on:
        tracer = Tracer(sampler=args.trace_sample)
        recent = DEFAULT_RECENT
        if args.trace_out:
            # --trace-out wants every request trace, so size the ring
            # to the whole (bounded) bench workload.
            recent = max(recent, args.concurrency * args.requests)
        flight = FlightRecorder(recent=recent)
    if args.cluster:
        service = ClusterService.from_catalog(
            default_catalog(seed=args.seed),
            workers=args.workers,
            shard_count=args.shards,
            queue_limit=args.queue_limit,
            tracer=tracer, flight_recorder=flight,
            breaker_policy=BreakerPolicy() if args.breaker else None)
    else:
        service = QueryService(
            default_catalog(seed=args.seed),
            workers=args.workers,
            queue_limit=args.queue_limit,
            tracer=tracer, flight_recorder=flight,
            retry_policy=RetryPolicy() if args.retry else None,
            breaker_policy=BreakerPolicy() if args.breaker else None)
    observer = None
    if getattr(args, "http", False):
        from .serve import ObservabilityServer
        observer = ObservabilityServer(service,
                                       port=args.http_port).start()
        print(f"observability endpoint: {observer.url}", file=out,
              flush=True)
    try:
        workload = mixed_workload(args.seed)
        # Baseline before any chaos: successes under injection must
        # still match fault-free answers byte for byte.
        expected = sequential_baseline(service, workload)
        if args.chaos_rate > 0:
            spec = ChaosSpec(site=args.chaos_site,
                             action=args.chaos_action,
                             rate=args.chaos_rate,
                             delay_seconds=args.chaos_delay)
            with inject(spec):
                report = run_load(service, workload,
                                  concurrency=args.concurrency,
                                  requests_per_client=args.requests,
                                  seed=args.seed, timeout=args.timeout,
                                  expected=expected)
        else:
            report = run_load(service, workload,
                              concurrency=args.concurrency,
                              requests_per_client=args.requests,
                              seed=args.seed, timeout=args.timeout,
                              expected=expected)
        health = service.health() if not args.cluster else None
        cluster_stats = service.cluster_stats() if args.cluster else None
        if observer is not None and args.http_hold > 0:
            import time as _time
            _time.sleep(args.http_hold)
    finally:
        if observer is not None:
            observer.close()
        service.close()
    print(report.report(), file=out)
    if cluster_stats is not None:
        print(cluster_stats.report(), file=out)
    if args.chaos_rate > 0:
        print(f"chaos      : site={args.chaos_site} "
              f"action={args.chaos_action} rate={args.chaos_rate} "
              f"retry={'on' if args.retry else 'off'} "
              f"breaker={'on' if args.breaker else 'off'}", file=out)
        if health is not None:
            print(f"health     : {health.status}", file=out)
    snapshot = service.flight_recorder()
    if snapshot is not None:
        print(f"tracing    : {snapshot.recorded} request traces "
              f"({len(snapshot.recent)} retained, "
              f"{len(snapshot.slowest)} slowest)", file=out)
    if args.trace_out:
        traces = [entry.trace for entry in snapshot.recent]
        write_chrome_trace(args.trace_out, traces)
        print(f"wrote Chrome trace of {len(traces)} requests to "
              f"{args.trace_out}", file=out)
    if args.flight_out:
        traces = [entry.trace for entry in snapshot.slowest]
        write_chrome_trace(args.flight_out, traces)
        print(f"wrote flight recorder ({len(traces)} slowest requests) "
              f"to {args.flight_out}", file=out)
    if args.prom_out:
        write_prometheus(args.prom_out, metrics=service.metrics,
                         tracer=tracer, cluster=cluster_stats)
        print(f"wrote Prometheus metrics to {args.prom_out}", file=out)
    if args.check:
        if args.chaos_rate > 0:
            # Under chaos, errors are expected — what must hold is the
            # resilience contract: typed failures only, byte-identical
            # successes, availability above the floor.
            failed = (report.mismatches or report.bare_errors
                      or report.availability < args.min_availability)
            if failed:
                print(f"check FAILED: mismatches={report.mismatches} "
                      f"bare_errors={report.bare_errors} "
                      f"availability={report.availability:.4f} "
                      f"(floor {args.min_availability})", file=out)
                return 1
        elif report.mismatches or report.errors or report.shed:
            print(f"check FAILED: mismatches={report.mismatches} "
                  f"errors={report.errors} shed={report.shed}", file=out)
            return 1
    return 0


def _command_index(args, out) -> int:
    import time as _time
    from .xmltree import ColumnarDocument, IndexedDocument, parse_xml_file

    output = args.output
    if output is None:
        stem = args.input[:-4] if args.input.endswith(".xml") \
            else args.input
        output = stem + ".rpxc"
    started = _time.perf_counter()
    document = IndexedDocument(parse_xml_file(args.input))
    columns = document.columns
    size = document.save(output)
    elapsed = _time.perf_counter() - started
    print(f"indexed {args.input}: {columns.n} nodes, "
          f"{len(columns.tag_pres)} tags, "
          f"{len(columns.attribute_pres)} attribute names", file=out)
    print(f"wrote {output}: {size} bytes "
          f"in {elapsed * 1000:.1f} ms "
          f"(columns built in {columns.build_seconds * 1000:.1f} ms)",
          file=out)
    if args.stats:
        for tag in sorted(columns.tag_pres):
            print(f"  {tag:>20}: {len(columns.tag_pres[tag])} elements",
                  file=out)
    if args.verify:
        reopened = ColumnarDocument.open(output)
        reopened.validate()
        for name in ("post", "level", "end", "parent", "name_id",
                     "text_id"):
            if list(getattr(reopened, name)) != \
                    list(getattr(columns, name)):
                print(f"verify FAILED: column {name!r} differs",
                      file=out)
                return 1
        if list(reopened.kind) != list(columns.kind) or \
                list(reopened.names) != list(columns.names) or \
                list(reopened.texts) != list(columns.texts):
            print("verify FAILED: dictionaries differ", file=out)
            return 1
        reopened.close()
        print(f"verified {output}: checksum, invariants and all "
              f"columns match (opened in "
              f"{reopened.open_seconds * 1000:.2f} ms)", file=out)
    return 0


def _command_shard(args, out) -> int:
    import time as _time
    from .xmltree import (ColumnarDocument, IndexedDocument,
                          is_columnar_file, parse_xml_file)
    from .xmltree.shard import ShardManifest, write_shard_layout

    if is_columnar_file(args.input):
        columns = ColumnarDocument.open(args.input)
    else:
        columns = IndexedDocument(parse_xml_file(args.input)).columns
    name = args.name
    if name is None:
        name = os.path.splitext(os.path.basename(args.input))[0]
    directory = args.output_dir or os.path.dirname(
        os.path.abspath(args.input))
    started = _time.perf_counter()
    manifest_path = write_shard_layout(columns, directory, name,
                                       args.shards)
    elapsed = _time.perf_counter() - started
    manifest = ShardManifest.load(manifest_path)
    print(f"sharded {args.input}: {manifest.total_nodes} nodes -> "
          f"{manifest.shard_count} shards (spine {manifest.spine_len}) "
          f"in {elapsed * 1000:.1f} ms", file=out)
    for index, file_name in enumerate(manifest.shard_files):
        nodes = sum(run.length for run in manifest.runs_for(index))
        size = os.path.getsize(os.path.join(directory, file_name))
        print(f"  shard {index}: {nodes} nodes, {size} bytes "
              f"({file_name})", file=out)
    print(f"wrote manifest {manifest_path}", file=out)
    print(f"serve it: ClusterService(ClusterLayout.load"
          f"({directory!r}))", file=out)
    return 0


def _command_generate(args, out) -> int:
    if args.kind == "member":
        document = member_document(args.size, depth=args.depth or 4,
                                   tag_count=args.tags, seed=args.seed)
    elif args.kind == "deep":
        document = deep_member_document(args.size, depth=args.depth or 15)
    else:
        document = xmark_document(args.size, seed=args.seed)
    text = serialize(document.root)
    if args.output == "-":
        print(text, file=out)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {document.size} nodes to {args.output}", file=out)
    return 0


def _command_top(args, out) -> int:
    from .serve.console import run_console
    try:
        return run_console(args.url, interval=args.interval,
                           iterations=args.iterations, out=out,
                           clear=not args.no_clear)
    except KeyboardInterrupt:
        return 0


_COMMANDS = {
    "query": _command_query,
    "explain": _command_explain,
    "compare": _command_compare,
    "visualize": _command_visualize,
    "serve-bench": _command_serve_bench,
    "top": _command_top,
    "index": _command_index,
    "shard": _command_shard,
    "generate": _command_generate,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as err:
        # Structured engine errors render with their code, source span
        # and caret snippet; anything else is a genuine crash.
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
