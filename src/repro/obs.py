"""Execution observability: stage timings, operator counters, plan cache.

The paper's conclusion — *"clearly, an accurate cost model is needed"* —
presupposes visibility into what each physical algorithm actually does.
This module provides that visibility for the whole stack:

* :class:`PipelineMetrics` — wall-clock seconds per compilation stage
  (parse → normalize → rewrite → compile → optimize), recorded by
  :meth:`repro.engine.Engine.compile` and attached to every
  :class:`~repro.engine.CompiledQuery`;
* :class:`ExecMetrics` — runtime counters: algebra operator evaluations
  and tuples/items produced (incremented by :mod:`repro.algebra.eval`),
  per-algorithm nodes visited / stream elements scanned / stack pushes
  (incremented by the :mod:`repro.physical` algorithms), and the
  choosers' decisions — a bounded ring of recent
  :class:`DecisionRecord`\\ s plus an unbounded tally, so long-running
  engines never accumulate unbounded decision logs;
* :class:`PlanCache` — an LRU of compiled plans keyed by
  ``(query, optimize, options)`` with :class:`CacheStats` hit/miss/
  eviction accounting, so repeated ``Engine.run()`` calls skip
  recompilation;
* :class:`TracedRun` — the bundle ``Engine.run_traced`` returns:
  results plus all of the above.

Counting discipline: the hot loops increment in *batches* (``+= len(...)``
once per scan rather than once per node) and only when a metrics object
is attached, so plain ``run()`` calls pay a single ``is None`` check.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import (Any, Deque, Dict, Hashable, Iterator, List, Optional,
                    Tuple)

__all__ = [
    "CacheStats", "DecisionRecord", "ExecMetrics", "PipelineMetrics",
    "PlanCache", "TracedRun", "DECISION_RING_SIZE", "PIPELINE_STAGES",
]

#: how many individual chooser decisions the ring retains.  The tally in
#: :attr:`ExecMetrics.decision_counts` is exact and unbounded; the ring
#: only bounds the per-decision *detail* log (chooser inputs).
DECISION_RING_SIZE = 256

#: the compilation stages, in pipeline order (paper Figure 2, plus the
#: structural-summary and integer-column constructions the engine times
#: on first compile, plus Python code generation when the compiled
#: backend is selected).
PIPELINE_STAGES = ("parse", "normalize", "rewrite", "compile", "optimize",
                   "summary", "columnar", "codegen")


# -- compile-time metrics ------------------------------------------------------

@dataclass
class PipelineMetrics:
    """Wall-clock seconds per compilation stage."""

    stages: "OrderedDict[str, float]" = field(default_factory=OrderedDict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with``-block and record it under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.stages[name] = self.stages.get(name, 0.0) + elapsed

    @property
    def total_seconds(self) -> float:
        return sum(self.stages.values())

    def to_dict(self) -> Dict[str, float]:
        return dict(self.stages)

    def report(self) -> str:
        width = max((len(name) for name in self.stages), default=5)
        lines = [f"{name.ljust(width)}  {seconds * 1e3:9.3f} ms"
                 for name, seconds in self.stages.items()]
        lines.append(f"{'total'.ljust(width)}  "
                     f"{self.total_seconds * 1e3:9.3f} ms")
        return "\n".join(lines)


# -- run-time metrics ----------------------------------------------------------

@dataclass(frozen=True)
class DecisionRecord:
    """One chooser decision, with the inputs that drove it."""

    chooser: str                              # "auto" or "cost"
    algorithm: str                            # the algorithm chosen
    inputs: Tuple[Tuple[str, float], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {"chooser": self.chooser, "algorithm": self.algorithm,
                **dict(self.inputs)}


@dataclass
class ExecMetrics:
    """Counters for one (or more) query executions.

    All counters are monotonically non-decreasing and non-negative; the
    per-algorithm counters are keyed by the algorithm's ``name``
    (``nljoin``, ``twigjoin``, ``scjoin``, ``stacktree``, ``streaming``).
    """

    #: algebra operator evaluations, by plan operator class name.
    operator_evals: Counter = field(default_factory=Counter)
    #: items appended to item-plan results.
    items_produced: int = 0
    #: tuples appended to tuple-plan results.
    tuples_produced: int = 0
    #: ``TupleTreePattern`` pattern evaluations (one per input tuple).
    pattern_evals: int = 0
    #: pattern evaluations skipped because the structural summary proved
    #: they cannot match (see :mod:`repro.xmltree.summary`).
    prune_hits: int = 0
    #: prefilter checks that could not rule the pattern out.
    prune_misses: int = 0
    #: nodes an algorithm examined, by algorithm name.
    nodes_visited: Counter = field(default_factory=Counter)
    #: index-stream elements read, by algorithm name.
    stream_scanned: Counter = field(default_factory=Counter)
    #: structural-join stack pushes, by algorithm name.
    stack_pushes: Counter = field(default_factory=Counter)
    #: chooser decisions, by chosen algorithm name (exact, unbounded).
    decision_counts: Counter = field(default_factory=Counter)
    #: the most recent decisions with their inputs (bounded ring).
    decision_ring: Deque[DecisionRecord] = field(
        default_factory=lambda: deque(maxlen=DECISION_RING_SIZE))
    #: graceful-degradation decisions made by ``Engine.execute``
    #: (:class:`repro.guard.FallbackEvent` instances, in order).
    fallbacks: List[Any] = field(default_factory=list)

    # -- recording --------------------------------------------------------

    def record_decision(self, chooser: str, algorithm: str,
                        **inputs: float) -> None:
        self.decision_counts[algorithm] += 1
        self.decision_ring.append(
            DecisionRecord(chooser, algorithm,
                           tuple(sorted(inputs.items()))))

    def record_fallback(self, event: Any) -> None:
        self.fallbacks.append(event)

    # -- views ------------------------------------------------------------

    @property
    def decisions_total(self) -> int:
        """Exact number of chooser decisions ever recorded."""
        return sum(self.decision_counts.values())

    def counters(self) -> Dict[str, int]:
        """A flat ``name → count`` view of every counter (for assertions
        and serialization); all values are non-negative by construction."""
        flat: Dict[str, int] = {
            "items_produced": self.items_produced,
            "tuples_produced": self.tuples_produced,
            "pattern_evals": self.pattern_evals,
            "prune_hits": self.prune_hits,
            "prune_misses": self.prune_misses,
        }
        for prefix, counter in (("operator", self.operator_evals),
                                ("visited", self.nodes_visited),
                                ("scanned", self.stream_scanned),
                                ("pushes", self.stack_pushes),
                                ("decision", self.decision_counts)):
            for key, value in counter.items():
                flat[f"{prefix}.{key}"] = value
        return flat

    def to_dict(self) -> Dict[str, Any]:
        """Serialize every field.

        Field-exhaustive by construction — driven by
        ``dataclasses.fields`` like :meth:`merge`, so a counter added to
        the dataclass can never be silently absent from the dict.  The
        ``decision_ring`` field keeps its historical key ``"decisions"``.
        """
        payload: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, Counter):
                payload[spec.name] = dict(value)
            elif spec.name == "decision_ring":
                payload["decisions"] = [record.to_dict()
                                        for record in value]
            elif isinstance(value, list):
                payload[spec.name] = [entry.to_dict() for entry in value]
            else:
                payload[spec.name] = value
        return payload

    def merge(self, other: "ExecMetrics") -> "ExecMetrics":
        """Fold another metrics object into this one (for aggregating
        repeated runs); returns ``self``.

        Merging is derived from ``dataclasses.fields``, dispatching on
        each field's runtime type (Counter → update, int → add,
        ring/list → extend): a new counter field merges automatically,
        and an unmergeable field type fails loudly instead of being
        silently dropped.
        """
        for spec in fields(self):
            ours = getattr(self, spec.name)
            theirs = getattr(other, spec.name)
            if isinstance(ours, Counter):
                ours.update(theirs)
            elif isinstance(ours, (deque, list)):
                ours.extend(theirs)
            elif isinstance(ours, int):
                setattr(self, spec.name, ours + theirs)
            else:
                raise TypeError(
                    f"ExecMetrics.merge cannot combine field "
                    f"{spec.name!r} of type {type(ours).__name__}; "
                    f"teach merge about it")
        return self

    def report(self) -> str:
        lines = [
            f"operator evaluations : {sum(self.operator_evals.values())}"
            f"  ({_counter_text(self.operator_evals)})",
            f"items produced       : {self.items_produced}",
            f"tuples produced      : {self.tuples_produced}",
            f"pattern evaluations  : {self.pattern_evals}",
            f"summary prefilter    : pruned={self.prune_hits} "
            f"passed={self.prune_misses}",
            f"nodes visited        : {_counter_text(self.nodes_visited)}",
            f"stream elements      : {_counter_text(self.stream_scanned)}",
            f"stack pushes         : {_counter_text(self.stack_pushes)}",
        ]
        if self.decision_counts:
            lines.append(
                f"chooser decisions    : "
                f"{_counter_text(self.decision_counts)}")
        for event in self.fallbacks:
            lines.append(f"strategy fallback    : {event}")
        return "\n".join(lines)


def _counter_text(counter: Counter) -> str:
    if not counter:
        return "-"
    return ", ".join(f"{name}={count}"
                     for name, count in sorted(counter.items()))


# -- plan cache ----------------------------------------------------------------

@dataclass
class CacheStats:
    """Hit/miss/eviction accounting for a :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions)

    def to_dict(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "hit_rate": self.hit_rate}


class PlanCache:
    """A small LRU cache of compiled plans.

    Keys are whatever the engine derives from
    ``(query, optimize, options)``; values are
    :class:`~repro.engine.CompiledQuery` objects (immutable once built,
    so sharing them between calls is safe).

    Thread-safe: lookups, insertions and the LRU reordering happen
    under one internal lock, so engines shared across a worker pool
    (see :mod:`repro.serve`) cannot corrupt the ``OrderedDict`` or lose
    evictions to races.
    """

    def __init__(self, max_size: int = 64) -> None:
        if max_size < 0:
            raise ValueError("max_size must be >= 0")
        self.max_size = max_size
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        """Look up a plan, counting a hit or a miss."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        if self.max_size == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()


# -- traced runs ---------------------------------------------------------------

@dataclass
class TracedRun:
    """Everything ``Engine.run_traced`` observed about one query run."""

    results: List
    #: the strategy the caller asked for (or the engine default).
    strategy: str
    wall_seconds: float
    metrics: ExecMetrics
    pipeline: Optional[PipelineMetrics]
    cache: CacheStats
    cache_hit: bool
    #: the strategy that actually produced the results — differs from
    #: :attr:`strategy` when graceful fallback re-ran the query.
    effective_strategy: str = ""
    #: the span trace of this run, when ``run_traced`` was given a
    #: tracer (see :mod:`repro.trace`); ``None`` otherwise.
    trace: Any = None
    compiled: Any = None    # the CompiledQuery (kept last: verbose repr)

    def __post_init__(self) -> None:
        if not self.effective_strategy:
            self.effective_strategy = self.strategy

    @property
    def fallbacks(self) -> List[Any]:
        """Graceful-degradation decisions taken during this run (see
        :class:`repro.guard.FallbackEvent`)."""
        return self.metrics.fallbacks

    def report(self) -> str:
        strategy = self.strategy
        if self.effective_strategy != self.strategy:
            strategy += f" (effective: {self.effective_strategy})"
        lines = [f"strategy   : {strategy}",
                 f"wall time  : {self.wall_seconds * 1e3:.3f} ms",
                 f"results    : {len(self.results)} items",
                 f"plan cache : {'hit' if self.cache_hit else 'miss'}"
                 f"  (hits={self.cache.hits} misses={self.cache.misses}"
                 f" evictions={self.cache.evictions})"]
        if self.trace is not None:
            lines.append(f"trace      : {self.trace.trace_id} "
                         f"({len(self.trace.spans)} spans)")
        if self.pipeline is not None:
            lines.append("compile stages:")
            lines.extend("  " + line
                         for line in self.pipeline.report().splitlines())
        lines.append("execution counters:")
        lines.extend("  " + line
                     for line in self.metrics.report().splitlines())
        return "\n".join(lines)
