"""Public façade: compile and run queries through the paper's pipeline.

::

    from repro import Engine

    engine = Engine.from_xml("<site>...</site>")
    names = engine.run("$input//person[emailaddress]/name")

    compiled = engine.compile("$input//person[emailaddress]/name")
    print(compiled.explain())          # every compilation stage
    engine.execute(compiled, strategy="twigjoin")

The compilation stages mirror Figure 2 of the paper: parse →
normalization (XQuery Core) → core rewriting (TPNF') → algebraic
compilation → algebraic optimization (tree-pattern detection) →
physical algorithm choice at execution time.
"""

from __future__ import annotations

import time
from dataclasses import astuple, dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from .algebra import (EvalContext, ItemPlan, TupleTreePattern, compile_core,
                      count_operators, eval_item, optimize_plan,
                      plan_canonical, plan_to_string)
from .algebra.optimizer import OptimizerOptions
from .obs import ExecMetrics, PipelineMetrics, PlanCache, TracedRun
from .pattern import TreePattern
from .physical import Strategy, TreePatternAlgorithm, make_algorithm
from .rewrite import RewriteOptions, RewriteTrace, rewrite_to_tpnf
from .typing import infer_type
from .xmltree import IndexedDocument, Node, parse_xml
from .xqcore import CExpr, NormalizedQuery, Var, alpha_canonical, normalize_query, pretty
from .xquery import ast as surface_ast
from .xquery import parse_query
from .xquery.abbrev import resolve_abbreviations


@dataclass
class CompiledQuery:
    """A query with all of its intermediate compilation stages."""

    text: str
    surface: surface_ast.Expr
    normalized: NormalizedQuery
    tpnf: CExpr
    plan: ItemPlan
    optimized: ItemPlan
    #: per-pass snapshots of the core rewriting, when compiled with
    #: ``trace=True``.
    rewrite_trace: Optional[RewriteTrace] = None
    #: wall-clock seconds per compilation stage (see :mod:`repro.obs`).
    pipeline_metrics: Optional[PipelineMetrics] = None

    @property
    def core(self) -> CExpr:
        return self.normalized.core

    def tree_pattern_count(self) -> int:
        """How many ``TupleTreePattern`` operators the optimizer found."""
        return count_operators(self.optimized, TupleTreePattern)

    def tree_patterns(self) -> List[TreePattern]:
        from .algebra import walk_plan
        return [node.pattern for node in walk_plan(self.optimized)
                if isinstance(node, TupleTreePattern)]

    def canonical_plan(self) -> str:
        """Renaming-invariant plan text (used to compare plans of
        syntactic variants, as in the paper's Section 5.1)."""
        return plan_canonical(self.optimized)

    def explain(self, metrics: bool = False) -> str:
        """A report showing every compilation stage.

        With ``metrics=True`` (and when the query was compiled through
        an :class:`Engine`, which records them) the report ends with the
        per-stage wall-clock timings.
        """
        sections = [
            ("Query", self.text),
            ("Normalized core (Section 2)", pretty(self.core)),
            ("TPNF' after rewriting (Section 3)", pretty(self.tpnf)),
            ("Algebraic plan (Section 4)", plan_to_string(self.plan)),
            ("Optimized plan with tree patterns (Section 4.2)",
             plan_to_string(self.optimized)),
        ]
        if metrics and self.pipeline_metrics is not None:
            sections.append(("Stage timings", self.pipeline_metrics.report()))
        blocks = []
        for title, body in sections:
            bar = "=" * len(title)
            blocks.append(f"{title}\n{bar}\n{body}")
        return "\n\n".join(blocks)


class Engine:
    """An XQuery engine over one indexed document."""

    def __init__(self, document: IndexedDocument,
                 rewrite_options: Optional[RewriteOptions] = None,
                 optimizer_options: Optional[OptimizerOptions] = None,
                 default_strategy: Strategy | str = Strategy.STAIRCASE,
                 plan_cache_size: int = 64) -> None:
        self.document = document
        self.rewrite_options = rewrite_options or RewriteOptions()
        self.optimizer_options = optimizer_options or OptimizerOptions()
        self.default_strategy = Strategy(default_strategy)
        #: LRU of compiled plans; ``plan_cache_size=0`` disables caching.
        self.plan_cache = PlanCache(plan_cache_size)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_xml(cls, text: str, **kwargs) -> "Engine":
        return cls(IndexedDocument.from_string(text), **kwargs)

    @classmethod
    def from_file(cls, path: str, **kwargs) -> "Engine":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_xml(handle.read(), **kwargs)

    # -- compilation ------------------------------------------------------------

    def compile(self, query: str, optimize: bool = True,
                trace: bool = False, use_cache: bool = True) -> CompiledQuery:
        """Run the full compilation pipeline on a query string.

        Results are cached in :attr:`plan_cache` keyed by
        ``(query, optimize, options)``, so repeated compiles of the same
        query return the same :class:`CompiledQuery` object; pass
        ``use_cache=False`` to force recompilation.  Per-stage wall
        times are recorded on the result's ``pipeline_metrics``.

        With ``trace=True`` the result carries a
        :class:`~repro.rewrite.RewriteTrace` recording the core
        expression after each rewriting pass that changed it (traced
        compiles bypass the cache).
        """
        cacheable = use_cache and not trace
        key = self._cache_key(query, optimize)
        if cacheable:
            cached = self.plan_cache.get(key)
            if cached is not None:
                return cached
        metrics = PipelineMetrics()
        with metrics.stage("parse"):
            surface = resolve_abbreviations(parse_query(query))
        with metrics.stage("normalize"):
            normalized = normalize_query(surface)
        rewrite_trace = RewriteTrace() if trace else None
        with metrics.stage("rewrite"):
            if optimize:
                tpnf = rewrite_to_tpnf(normalized.core,
                                       options=self.rewrite_options,
                                       trace=rewrite_trace)
            else:
                tpnf = normalized.core
        with metrics.stage("compile"):
            plan = compile_core(tpnf)
        with metrics.stage("optimize"):
            if optimize:
                optimized = optimize_plan(plan,
                                          options=self.optimizer_options)
            else:
                optimized = plan
        compiled = CompiledQuery(text=query, surface=surface,
                                 normalized=normalized, tpnf=tpnf, plan=plan,
                                 optimized=optimized,
                                 rewrite_trace=rewrite_trace,
                                 pipeline_metrics=metrics)
        if cacheable:
            self.plan_cache.put(key, compiled)
        return compiled

    def _cache_key(self, query: str, optimize: bool) -> Tuple[Hashable, ...]:
        """Plan-cache key: the query text plus everything else that
        shapes the compiled plan (options are read at call time, so
        mutating them naturally keys new entries)."""
        return (query, optimize, astuple(self.rewrite_options),
                astuple(self.optimizer_options))

    # -- execution ---------------------------------------------------------------

    def execute(self, compiled: CompiledQuery,
                strategy: Optional[Strategy | str] = None,
                variables: Optional[Dict[str, Sequence]] = None,
                optimized: bool = True,
                metrics: Optional[ExecMetrics] = None) -> List:
        """Evaluate a compiled query and return the result sequence.

        Every free query variable (``$input``, ``$d``, …) that is not
        supplied in ``variables`` is bound to the document root, as is
        the initial context item for absolute paths.

        When ``metrics`` is given, operator/algorithm counters for this
        run are accumulated into it (see :class:`repro.obs.ExecMetrics`).
        """
        algorithm = self._algorithm(strategy)
        if metrics is not None:
            algorithm.attach_metrics(metrics)
        bindings: Dict[Var, List] = {}
        root = [self.document.root]
        for name, var in compiled.normalized.global_vars.items():
            if variables is not None and name in variables:
                bindings[var] = list(variables[name])
            else:
                bindings[var] = list(root)
        bindings[compiled.normalized.context_var] = list(root)
        context = EvalContext(document=self.document, strategy=algorithm,
                              globals=bindings, metrics=metrics)
        plan = compiled.optimized if optimized else compiled.plan
        return eval_item(plan, context)

    def run(self, query: str,
            strategy: Optional[Strategy | str] = None,
            variables: Optional[Dict[str, Sequence]] = None,
            optimize: bool = True) -> List:
        """Compile and evaluate in one call."""
        compiled = self.compile(query, optimize=optimize)
        return self.execute(compiled, strategy=strategy,
                            variables=variables, optimized=optimize)

    def run_traced(self, query: str,
                   strategy: Optional[Strategy | str] = None,
                   variables: Optional[Dict[str, Sequence]] = None,
                   optimize: bool = True) -> TracedRun:
        """Compile and evaluate with full observability.

        Returns a :class:`repro.obs.TracedRun` carrying the result
        sequence plus per-stage compile timings, execution counters
        (operator evaluations, per-algorithm nodes visited / streams
        scanned, chooser decisions) and plan-cache statistics.
        """
        stats = self.plan_cache.stats
        hits_before = stats.hits
        compiled = self.compile(query, optimize=optimize)
        cache_hit = stats.hits > hits_before
        metrics = ExecMetrics()
        start = time.perf_counter()
        results = self.execute(compiled, strategy=strategy,
                               variables=variables, optimized=optimize,
                               metrics=metrics)
        wall = time.perf_counter() - start
        chosen = Strategy(strategy) if strategy is not None \
            else self.default_strategy
        return TracedRun(results=results, strategy=str(chosen),
                         wall_seconds=wall, metrics=metrics,
                         pipeline=compiled.pipeline_metrics,
                         cache=stats.snapshot(), cache_hit=cache_hit,
                         compiled=compiled)

    def _algorithm(self,
                   strategy: Optional[Strategy | str]) -> TreePatternAlgorithm:
        chosen = Strategy(strategy) if strategy is not None \
            else self.default_strategy
        return make_algorithm(chosen, self.document)


def execute_query(xml_text: str, query: str, **kwargs) -> List:
    """One-shot convenience: parse, compile, run."""
    return Engine.from_xml(xml_text).run(query, **kwargs)


def xpath(document: "IndexedDocument | str", path: str,
          strategy: Strategy | str = Strategy.STAIRCASE,
          **kwargs) -> List:
    """Evaluate one path expression against a document.

    ``document`` may be an :class:`IndexedDocument` or an XML string;
    the path's free variables (and absolute steps) resolve to the
    document root.

    >>> from repro import xpath
    >>> [n.string_value() for n in xpath("<a><b>x</b></a>", "//b")]
    ['x']
    """
    if isinstance(document, str):
        engine = Engine.from_xml(document)
    else:
        engine = Engine(document)
    return engine.run(path, strategy=strategy, **kwargs)
