"""Public façade: compile and run queries through the paper's pipeline.

::

    from repro import Engine

    engine = Engine.from_xml("<site>...</site>")
    names = engine.run("$input//person[emailaddress]/name")

    compiled = engine.compile("$input//person[emailaddress]/name")
    print(compiled.explain())          # every compilation stage
    engine.execute(compiled, strategy="twigjoin")

The compilation stages mirror Figure 2 of the paper: parse →
normalization (XQuery Core) → core rewriting (TPNF') → algebraic
compilation → algebraic optimization (tree-pattern detection) →
physical algorithm choice at execution time.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import astuple, dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from .algebra import (EvalContext, ItemPlan, TupleTreePattern, compile_core,
                      count_operators, eval_item, optimize_plan,
                      plan_canonical, plan_to_string)
from .algebra.optimizer import OptimizerOptions
from .compiled import CodegenError, CompiledPlan, compile_plan
from .guard import (AlgorithmError, BudgetExceeded, Budgets, FallbackEvent,
                    InputError, ResourceGovernor)
from .obs import ExecMetrics, PipelineMetrics, PlanCache, TracedRun
from .pattern import TreePattern
from .physical import Strategy, make_algorithm
from .rewrite import RewriteOptions, RewriteTrace, rewrite_to_tpnf
from .trace import ExplainAnalysis, Trace, Tracer, maybe_span
from .typing import infer_type
from .xmltree import IndexedDocument, Node, is_columnar_file, parse_xml
from .xqcore import CExpr, NormalizedQuery, Var, alpha_canonical, normalize_query, pretty
from .xquery import ast as surface_ast
from .xquery import parse_query
from .xquery.abbrev import resolve_abbreviations

#: pseudo-strategy name for the pure item evaluator: the *unoptimized*
#: plan has no ``TupleTreePattern`` operators, so evaluating it bypasses
#: every physical tree-pattern algorithm — the fallback of last resort.
ITEM_EVALUATOR = "item"

#: strategies ``Engine.execute`` retries on algorithm failure or a
#: (non-wall) budget trip, in order; the item evaluator last.
DEFAULT_FALLBACK_CHAIN: Tuple[str, ...] = ("nljoin", ITEM_EVALUATOR)

#: soft cap on document source size (characters); ``Engine.from_xml``
#: refuses larger inputs unless ``max_document_size`` is raised/``None``.
DEFAULT_MAX_DOCUMENT_SIZE = 64 * 1024 * 1024

#: execution backends: the strict list-at-a-time interpreter
#: (:mod:`repro.algebra.eval`) and the produce/consume plan compiler
#: (:mod:`repro.compiled`).
BACKENDS = ("interpreted", "compiled")


@dataclass
class CompiledQuery:
    """A query with all of its intermediate compilation stages."""

    text: str
    surface: surface_ast.Expr
    normalized: NormalizedQuery
    tpnf: CExpr
    plan: ItemPlan
    optimized: ItemPlan
    #: per-pass snapshots of the core rewriting, when compiled with
    #: ``trace=True``.
    rewrite_trace: Optional[RewriteTrace] = None
    #: wall-clock seconds per compilation stage (see :mod:`repro.obs`).
    pipeline_metrics: Optional[PipelineMetrics] = None
    #: codegen artifacts for the compiled backend, keyed by plan role
    #: (``"optimized"`` / ``"plan"``): a
    #: :class:`~repro.compiled.CompiledPlan`, or the
    #: :class:`~repro.compiled.CodegenError` that refused it (a negative
    #: cache, so a failing plan is not re-attempted every execute).
    #: Living on the query object, the generated closures share the plan
    #: cache's lifetime and LRU policy for free.
    codegen: Dict[str, Any] = field(default_factory=dict)

    @property
    def core(self) -> CExpr:
        return self.normalized.core

    def tree_pattern_count(self) -> int:
        """How many ``TupleTreePattern`` operators the optimizer found."""
        return count_operators(self.optimized, TupleTreePattern)

    def tree_patterns(self) -> List[TreePattern]:
        from .algebra import walk_plan
        return [node.pattern for node in walk_plan(self.optimized)
                if isinstance(node, TupleTreePattern)]

    def canonical_plan(self) -> str:
        """Renaming-invariant plan text (used to compare plans of
        syntactic variants, as in the paper's Section 5.1)."""
        return plan_canonical(self.optimized)

    def explain(self, metrics: bool = False) -> str:
        """A report showing every compilation stage.

        With ``metrics=True`` (and when the query was compiled through
        an :class:`Engine`, which records them) the report ends with the
        per-stage wall-clock timings.
        """
        sections = [
            ("Query", self.text),
            ("Normalized core (Section 2)", pretty(self.core)),
            ("TPNF' after rewriting (Section 3)", pretty(self.tpnf)),
            ("Algebraic plan (Section 4)", plan_to_string(self.plan)),
            ("Optimized plan with tree patterns (Section 4.2)",
             plan_to_string(self.optimized)),
        ]
        if metrics and self.pipeline_metrics is not None:
            sections.append(("Stage timings", self.pipeline_metrics.report()))
        blocks = []
        for title, body in sections:
            bar = "=" * len(title)
            blocks.append(f"{title}\n{bar}\n{body}")
        return "\n\n".join(blocks)


class Engine:
    """An XQuery engine over one indexed document."""

    def __init__(self, document: IndexedDocument,
                 rewrite_options: Optional[RewriteOptions] = None,
                 optimizer_options: Optional[OptimizerOptions] = None,
                 default_strategy: Strategy | str = Strategy.STAIRCASE,
                 plan_cache_size: int = 64,
                 budgets: Optional[Budgets] = None,
                 fallback_chain: Optional[Sequence[str]]
                 = DEFAULT_FALLBACK_CHAIN,
                 strict: bool = False,
                 use_summary: bool = True,
                 backend: str = "interpreted") -> None:
        self.document = document
        self.rewrite_options = rewrite_options or RewriteOptions()
        self.optimizer_options = optimizer_options or OptimizerOptions()
        self.default_strategy = Strategy(default_strategy)
        #: LRU of compiled plans; ``plan_cache_size=0`` disables caching.
        self.plan_cache = PlanCache(plan_cache_size)
        #: default per-query resource limits (see :mod:`repro.guard`);
        #: ``None`` runs ungoverned.
        self.budgets = budgets
        #: strategies tried, in order, after the requested one fails;
        #: ``None``/empty disables graceful degradation.
        self.fallback_chain = self._normalize_chain(fallback_chain)
        #: with ``strict=True`` failures re-raise immediately — no
        #: fallback, original algorithm exceptions unwrapped.
        self.strict = strict
        #: build and use the document's structural summary: pattern
        #: prefiltering plus selectivity-aware costing.  ``False`` (the
        #: CLI's ``--no-summary``) runs on flat tag statistics only.
        self.use_summary = use_summary
        #: how plans execute: ``"interpreted"`` walks them with
        #: :func:`repro.algebra.eval.eval_item`; ``"compiled"``
        #: generates fused push-based Python per plan (see
        #: :mod:`repro.compiled` and ``docs/PIPELINE.md``), falling back
        #: to the interpreter — with a recorded
        #: :class:`~repro.guard.FallbackEvent` — on codegen failure.
        self.backend = self._normalize_backend(backend)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_xml(cls, text: str,
                 max_document_size: Optional[int]
                 = DEFAULT_MAX_DOCUMENT_SIZE, **kwargs) -> "Engine":
        if not isinstance(text, str):
            raise InputError(
                f"document must be an XML string, "
                f"got {type(text).__name__}")
        if max_document_size is not None and len(text) > max_document_size:
            raise InputError(
                f"document of {len(text)} characters exceeds the soft "
                f"limit of {max_document_size}; pass a larger "
                f"max_document_size (or None) to override",
                size=len(text), limit=max_document_size)
        return cls(IndexedDocument.from_string(text), **kwargs)

    @classmethod
    def from_file(cls, path: str, store: str = "auto", **kwargs) -> "Engine":
        """Build an engine from a file on disk.

        ``store`` selects the document representation: ``"auto"`` (the
        default) sniffs the file magic and opens saved columnar index
        files (see ``repro index`` / :meth:`from_columnar_file`) via
        mmap, parsing everything else as XML; ``"columnar"`` requires a
        columnar file; ``"object"`` requires XML text.
        """
        if store not in ("auto", "object", "columnar"):
            raise InputError(
                f"unknown store {store!r}; valid stores: auto, object, "
                f"columnar", store=store)
        columnar = is_columnar_file(path)
        if store == "columnar" or (store == "auto" and columnar):
            return cls.from_columnar_file(path, **kwargs)
        if store == "object" and columnar:
            raise InputError(
                f"{path} is a columnar index file, not XML; open it "
                f"with store='columnar' (or 'auto')", path=path)
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_xml(handle.read(), **kwargs)

    @classmethod
    def from_columnar_file(cls, path: str, verify: bool = True,
                           **kwargs) -> "Engine":
        """mmap-open a saved columnar index (``.rpxc``) — O(1), no
        re-parse, no re-index (see :mod:`repro.xmltree.columnar`)."""
        return cls(IndexedDocument.open(path, verify=verify), **kwargs)

    @classmethod
    def from_columnar(cls, columns, **kwargs) -> "Engine":
        """Build an engine directly over a
        :class:`~repro.xmltree.columnar.ColumnarDocument` — the
        shard-aware entry the cluster workers use: each worker wraps
        its mmap-opened shard columns without touching the filesystem
        layer again (see :mod:`repro.serve.cluster`)."""
        return cls(IndexedDocument(columns=columns), **kwargs)

    # -- compilation ------------------------------------------------------------

    def compile(self, query: str, optimize: bool = True,
                trace: bool = False, use_cache: bool = True,
                tracing: Optional[Trace] = None) -> CompiledQuery:
        """Run the full compilation pipeline on a query string.

        Results are cached in :attr:`plan_cache` keyed by
        ``(query, optimize, options)``, so repeated compiles of the same
        query return the same :class:`CompiledQuery` object; pass
        ``use_cache=False`` to force recompilation.  Per-stage wall
        times are recorded on the result's ``pipeline_metrics``.

        With ``trace=True`` the result carries a
        :class:`~repro.rewrite.RewriteTrace` recording the core
        expression after each rewriting pass that changed it (traced
        compiles bypass the cache).

        ``tracing`` optionally attaches the compile to a span
        :class:`~repro.trace.Trace`: one span per pipeline stage nested
        under a ``compile_pipeline`` span (a cache hit records only a
        ``plan_cache_hit`` event).
        """
        if not isinstance(query, str):
            raise InputError(
                f"query must be a string, got {type(query).__name__}")
        if not query.strip():
            raise InputError("empty query text")
        cacheable = use_cache and not trace
        key = self._cache_key(query, optimize)
        if cacheable:
            cached = self.plan_cache.get(key)
            if cached is not None:
                if tracing is not None:
                    tracing.event("plan_cache_hit")
                return cached
        metrics = PipelineMetrics()
        with maybe_span(tracing, "compile_pipeline"):
            with metrics.stage("parse"), maybe_span(tracing, "parse"):
                surface = resolve_abbreviations(parse_query(query))
            with metrics.stage("normalize"), \
                    maybe_span(tracing, "normalize"):
                normalized = normalize_query(surface)
            rewrite_trace = RewriteTrace() if trace else None
            with metrics.stage("rewrite"), maybe_span(tracing, "rewrite"):
                if optimize:
                    tpnf = rewrite_to_tpnf(normalized.core,
                                           options=self.rewrite_options,
                                           trace=rewrite_trace)
                else:
                    tpnf = normalized.core
            with metrics.stage("compile"), maybe_span(tracing, "compile"):
                plan = compile_core(tpnf)
            with metrics.stage("optimize"), \
                    maybe_span(tracing, "optimize"):
                if optimize:
                    optimized = optimize_plan(
                        plan, options=self.optimizer_options)
                else:
                    optimized = plan
            if self.use_summary:
                # Built once per document and cached; later compiles
                # record a (near-zero) cache-hit time for the stage.
                with metrics.stage("summary"), \
                        maybe_span(tracing, "summary"):
                    self.document.summary
            # Warm the integer columns the stream joins scan.  Derived
            # once per document (column-first documents carry them from
            # birth); later compiles record a near-zero cache-hit time.
            with metrics.stage("columnar"), \
                    maybe_span(tracing, "columnar"):
                self.document.columns
            codegen: Dict[str, Any] = {}
            if self.backend == "compiled":
                # Generate the optimized plan's Python eagerly so the
                # cost lands in compile (visible as a stage), not in the
                # first execute; the unoptimized plan — only needed by
                # the "item" fallback — is generated lazily.
                with metrics.stage("codegen"), \
                        maybe_span(tracing, "codegen"):
                    try:
                        codegen["optimized"] = compile_plan(optimized)
                    except CodegenError as err:
                        codegen["optimized"] = err
        compiled = CompiledQuery(text=query, surface=surface,
                                 normalized=normalized, tpnf=tpnf, plan=plan,
                                 optimized=optimized,
                                 rewrite_trace=rewrite_trace,
                                 pipeline_metrics=metrics,
                                 codegen=codegen)
        if cacheable:
            self.plan_cache.put(key, compiled)
        return compiled

    def _cache_key(self, query: str, optimize: bool) -> Tuple[Hashable, ...]:
        """Plan-cache key: the query text plus everything else that
        shapes the compiled plan (options are read at call time, so
        mutating them naturally keys new entries)."""
        return (query, optimize, astuple(self.rewrite_options),
                astuple(self.optimizer_options))

    # -- execution ---------------------------------------------------------------

    def execute(self, compiled: CompiledQuery,
                strategy: Optional[Strategy | str] = None,
                variables: Optional[Dict[str, Sequence]] = None,
                optimized: bool = True,
                metrics: Optional[ExecMetrics] = None,
                budgets: Optional[Budgets] = None,
                strict: Optional[bool] = None,
                fallback_chain: Optional[Sequence[str]] = None,
                tracing: Optional[Trace] = None,
                backend: Optional[str] = None) -> List:
        """Evaluate a compiled query and return the result sequence.

        Every free query variable (``$input``, ``$d``, …) that is not
        supplied in ``variables`` is bound to the document root, as is
        the initial context item for absolute paths.

        When ``metrics`` is given, operator/algorithm counters for this
        run are accumulated into it (see :class:`repro.obs.ExecMetrics`).

        When ``tracing`` is given, the run records spans into it: an
        ``execute`` span, one ``attempt`` span per strategy tried, and
        per-operator spans from the evaluator (see :mod:`repro.trace`);
        fallbacks and budget trips become span events.

        Guardrails (all defaulting to the engine's configuration): work
        is charged against ``budgets`` and trips raise
        :class:`~repro.guard.BudgetExceeded`; when a physical algorithm
        fails — or a non-wall budget trips — the run is retried on each
        strategy of ``fallback_chain`` in turn (the wall deadline is
        *shared* across attempts), each decision recorded in ``metrics``
        as a :class:`~repro.guard.FallbackEvent`.  With ``strict=True``
        nothing is retried and the algorithm's original exception
        propagates.

        ``backend`` overrides the engine's execution backend for this
        call (``"interpreted"``/``"compiled"``).  A codegen failure
        under the compiled backend steps back to the interpreter — the
        two are semantically identical, so this happens even under
        ``strict`` — and records a :class:`~repro.guard.FallbackEvent`
        with ``from_strategy="compiled"``.
        """
        strict = self.strict if strict is None else strict
        backend = self.backend if backend is None \
            else self._normalize_backend(backend)
        if budgets is None:
            budgets = self.budgets
        if budgets is not None and not budgets.enabled():
            budgets = None
        chain = self.fallback_chain if fallback_chain is None \
            else self._normalize_chain(fallback_chain)
        requested = self._strategy_name(
            strategy if strategy is not None else self.default_strategy)
        attempts = [requested]
        if not strict:
            attempts.extend(name for name in chain if name != requested)
        deadline = None
        if budgets is not None and budgets.wall_seconds is not None:
            deadline = time.perf_counter() + budgets.wall_seconds
        exec_span = tracing.begin_span("execute", strategy=requested) \
            if tracing is not None else None
        last = len(attempts) - 1
        for index, name in enumerate(attempts):
            governor = None
            if budgets is not None:
                # Fresh step/depth counters per attempt; one shared wall
                # deadline so fallback cannot multiply the timeout.
                governor = ResourceGovernor(budgets, deadline=deadline,
                                            trace=tracing)
                governor.check_clock()
            attempt_span = tracing.begin_span("attempt", strategy=name) \
                if tracing is not None else None
            try:
                results = self._execute_once(compiled, name, variables,
                                             optimized, metrics, governor,
                                             tracing, backend)
            except (AlgorithmError, BudgetExceeded) as err:
                # Close the failed attempt's span before (possibly)
                # opening the next one, so retries nest as siblings.
                code = getattr(err, "code", type(err).__name__)
                if attempt_span is not None:
                    tracing.end_span(attempt_span, error=code)
                if isinstance(err, AlgorithmError):
                    if strict:
                        cause = err.__cause__
                        if isinstance(cause, Exception):
                            raise cause
                        raise
                    if index == last:
                        raise
                else:
                    if strict or err.kind == "wall" or index == last:
                        raise
                self._record_fallback(metrics, name, attempts[index + 1],
                                      err)
                if tracing is not None:
                    tracing.event("fallback", from_strategy=name,
                                  to_strategy=attempts[index + 1],
                                  error_code=code)
            else:
                if attempt_span is not None:
                    tracing.end_span(attempt_span, rows=len(results))
                    tracing.end_span(exec_span, strategy=name,
                                     rows=len(results))
                return results
        raise AssertionError("unreachable: attempts is never empty")

    def _execute_once(self, compiled: CompiledQuery, strategy_name: str,
                      variables: Optional[Dict[str, Sequence]],
                      optimized: bool, metrics: Optional[ExecMetrics],
                      governor: Optional[ResourceGovernor],
                      tracing: Optional[Trace] = None,
                      backend: str = "interpreted") -> List:
        # With the summary disabled the choosers must not build one as a
        # construction default either, so they get no document then.
        chooser_document = self.document if self.use_summary else None
        if strategy_name == ITEM_EVALUATOR:
            # The unoptimized plan has no TupleTreePattern operators, so
            # the strategy is never consulted; evaluating it sidesteps
            # every physical algorithm.
            algorithm = make_algorithm(Strategy.NESTED_LOOP,
                                       chooser_document)
            plan = compiled.plan
        else:
            algorithm = make_algorithm(Strategy(strategy_name),
                                       chooser_document)
            plan = compiled.optimized if optimized else compiled.plan
        algorithm.attach_summary(
            self.document.summary if self.use_summary else None)
        if metrics is not None:
            algorithm.attach_metrics(metrics)
        if governor is not None:
            algorithm.attach_governor(governor)
        if tracing is not None:
            algorithm.attach_trace(tracing)
        bindings: Dict[Var, List] = {}
        root = [self.document.root]
        for name, var in compiled.normalized.global_vars.items():
            if variables is not None and name in variables:
                bindings[var] = list(variables[name])
            else:
                bindings[var] = list(root)
        bindings[compiled.normalized.context_var] = list(root)
        context = EvalContext(document=self.document, strategy=algorithm,
                              globals=bindings, metrics=metrics,
                              governor=governor, trace=tracing)
        if backend == "compiled":
            role = "optimized" if plan is compiled.optimized else "plan"
            program = self._codegen_for(compiled, role, plan, tracing)
            if isinstance(program, CompiledPlan):
                return program.run(context)
            # Codegen refused the plan: run interpreted — identical
            # semantics — and record the degradation.
            self._record_fallback(metrics, "compiled", strategy_name,
                                  program)
            if tracing is not None:
                tracing.event("fallback", from_strategy="compiled",
                              to_strategy=strategy_name,
                              error_code=program.code)
        return eval_item(plan, context)

    def _codegen_for(self, compiled: CompiledQuery, role: str,
                     plan: ItemPlan, tracing: Optional[Trace]):
        """The plan's codegen artifact, generating (and caching it on
        the query, success or refusal) on first use; the generation time
        is charged to the ``codegen`` pipeline stage."""
        entry = compiled.codegen.get(role)
        if entry is None:
            pipeline = compiled.pipeline_metrics
            stage = pipeline.stage("codegen") if pipeline is not None \
                else nullcontext()
            with stage, maybe_span(tracing, "codegen"):
                try:
                    entry = compile_plan(plan)
                except CodegenError as err:
                    entry = err
            compiled.codegen[role] = entry
        return entry

    @staticmethod
    def _record_fallback(metrics: Optional[ExecMetrics], from_name: str,
                         to_name: str, err: Exception) -> None:
        if metrics is None:
            return
        metrics.record_fallback(FallbackEvent(
            from_strategy=from_name, to_strategy=to_name,
            error_code=getattr(err, "code", type(err).__name__),
            error=getattr(err, "message", str(err))))

    def run(self, query: str,
            strategy: Optional[Strategy | str] = None,
            variables: Optional[Dict[str, Sequence]] = None,
            optimize: bool = True,
            backend: Optional[str] = None) -> List:
        """Compile and evaluate in one call."""
        compiled = self.compile(query, optimize=optimize)
        return self.execute(compiled, strategy=strategy,
                            variables=variables, optimized=optimize,
                            backend=backend)

    def run_traced(self, query: str,
                   strategy: Optional[Strategy | str] = None,
                   variables: Optional[Dict[str, Sequence]] = None,
                   optimize: bool = True,
                   tracer: Optional[Tracer] = None,
                   backend: Optional[str] = None) -> TracedRun:
        """Compile and evaluate with full observability.

        Returns a :class:`repro.obs.TracedRun` carrying the result
        sequence plus per-stage compile timings, execution counters
        (operator evaluations, per-algorithm nodes visited / streams
        scanned, chooser decisions) and plan-cache statistics.  When a
        :class:`~repro.trace.Tracer` is supplied (and admits the run),
        the result additionally carries a finished span
        :class:`~repro.trace.Trace` on its ``trace`` field.
        """
        stats = self.plan_cache.stats
        hits_before = stats.hits
        trace = tracer.begin("query", query=query) \
            if tracer is not None else None
        compiled = self.compile(query, optimize=optimize, tracing=trace)
        cache_hit = stats.hits > hits_before
        metrics = ExecMetrics()
        start = time.perf_counter()
        try:
            results = self.execute(compiled, strategy=strategy,
                                   variables=variables, optimized=optimize,
                                   metrics=metrics, tracing=trace,
                                   backend=backend)
        finally:
            if trace is not None:
                trace.finish()
        wall = time.perf_counter() - start
        chosen = self._strategy_name(
            strategy if strategy is not None else self.default_strategy)
        # The strategy that actually produced the results: the last
        # fallback target when graceful degradation kicked in, the
        # requested strategy otherwise.
        effective = metrics.fallbacks[-1].to_strategy \
            if metrics.fallbacks else chosen
        return TracedRun(results=results, strategy=chosen,
                         wall_seconds=wall, metrics=metrics,
                         pipeline=compiled.pipeline_metrics,
                         cache=stats.snapshot(), cache_hit=cache_hit,
                         effective_strategy=effective, trace=trace,
                         compiled=compiled)

    # -- explain ---------------------------------------------------------------

    def explain(self, query: str, analyze: bool = False,
                strategy: Optional[Strategy | str] = None,
                metrics: bool = False) -> str:
        """The compilation stages of a query — or, with
        ``analyze=True``, the EXPLAIN ANALYZE report: the optimized plan
        annotated with measured per-operator wall time and
        cardinalities from one traced execution."""
        if not analyze:
            return self.compile(query).explain(metrics=metrics)
        return self.explain_analyze(query, strategy=strategy).render()

    def explain_analyze(self, query: str,
                        strategy: Optional[Strategy | str] = None,
                        variables: Optional[Dict[str, Sequence]] = None,
                        tracer: Optional[Tracer] = None
                        ) -> ExplainAnalysis:
        """Compile and execute once under a full trace and return the
        :class:`~repro.trace.ExplainAnalysis` (render with
        ``.render()``, or ``.to_dot()`` for an annotated plan graph).

        Compilation bypasses the plan cache so stage spans are always
        measured.  The supplied ``tracer`` must admit the run (default:
        a fresh unsampled one).
        """
        tracer = tracer if tracer is not None else Tracer()
        trace = tracer.begin("explain", query=query)
        if trace is None:
            raise InputError(
                "explain_analyze needs a tracer that admits this run "
                "(enabled, not sampled out)")
        exec_metrics = ExecMetrics()
        compiled = self.compile(query, use_cache=False, tracing=trace)
        requested = self._strategy_name(
            strategy if strategy is not None else self.default_strategy)
        try:
            results = self.execute(compiled, strategy=requested,
                                   variables=variables,
                                   metrics=exec_metrics, tracing=trace)
        finally:
            trace.finish()
        effective = exec_metrics.fallbacks[-1].to_strategy \
            if exec_metrics.fallbacks else requested
        return ExplainAnalysis(query=query, compiled=compiled, trace=trace,
                               strategy=effective, results=results,
                               metrics=exec_metrics)

    def _strategy_name(self, strategy: Strategy | str) -> str:
        """Validate a strategy designator, returning its canonical name
        (``Strategy`` values plus the ``"item"`` pseudo-strategy)."""
        if isinstance(strategy, Strategy):
            return strategy.value
        if isinstance(strategy, str):
            if strategy == ITEM_EVALUATOR:
                return ITEM_EVALUATOR
            try:
                return Strategy(strategy).value
            except ValueError:
                valid = ", ".join(member.value for member in Strategy)
                raise InputError(
                    f"unknown strategy {strategy!r}; valid strategies: "
                    f"{valid} (or {ITEM_EVALUATOR!r})",
                    strategy=strategy) from None
        raise InputError(
            f"strategy must be a Strategy or a strategy name string, "
            f"got {type(strategy).__name__}", strategy=repr(strategy))

    @staticmethod
    def _normalize_backend(backend: str) -> str:
        """Validate an execution-backend designator."""
        if backend in BACKENDS:
            return backend
        raise InputError(
            f"unknown backend {backend!r}; valid backends: "
            f"{', '.join(BACKENDS)}", backend=repr(backend))

    def _normalize_chain(self,
                         chain: Optional[Sequence[str]]) -> Tuple[str, ...]:
        """Validate a fallback chain (also accepts a comma-separated
        string, e.g. from the command line)."""
        if chain is None:
            return ()
        if isinstance(chain, str):
            chain = [part.strip() for part in chain.split(",")
                     if part.strip()]
        return tuple(self._strategy_name(entry) for entry in chain)


def execute_query(xml_text: str, query: str, **kwargs) -> List:
    """One-shot convenience: parse, compile, run."""
    return Engine.from_xml(xml_text).run(query, **kwargs)


def xpath(document: "IndexedDocument | str", path: str,
          strategy: Strategy | str = Strategy.STAIRCASE,
          **kwargs) -> List:
    """Evaluate one path expression against a document.

    ``document`` may be an :class:`IndexedDocument` or an XML string;
    the path's free variables (and absolute steps) resolve to the
    document root.

    >>> from repro import xpath
    >>> [n.string_value() for n in xpath("<a><b>x</b></a>", "//b")]
    ['x']
    """
    if isinstance(document, str):
        engine = Engine.from_xml(document)
    else:
        engine = Engine(document)
    return engine.run(path, strategy=strategy, **kwargs)
