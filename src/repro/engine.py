"""Public façade: compile and run queries through the paper's pipeline.

::

    from repro import Engine

    engine = Engine.from_xml("<site>...</site>")
    names = engine.run("$input//person[emailaddress]/name")

    compiled = engine.compile("$input//person[emailaddress]/name")
    print(compiled.explain())          # every compilation stage
    engine.execute(compiled, strategy="twigjoin")

The compilation stages mirror Figure 2 of the paper: parse →
normalization (XQuery Core) → core rewriting (TPNF') → algebraic
compilation → algebraic optimization (tree-pattern detection) →
physical algorithm choice at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .algebra import (EvalContext, ItemPlan, TupleTreePattern, compile_core,
                      count_operators, eval_item, optimize_plan,
                      plan_canonical, plan_to_string)
from .algebra.optimizer import OptimizerOptions
from .pattern import TreePattern
from .physical import Strategy, TreePatternAlgorithm, make_algorithm
from .rewrite import RewriteOptions, RewriteTrace, rewrite_to_tpnf
from .typing import infer_type
from .xmltree import IndexedDocument, Node, parse_xml
from .xqcore import CExpr, NormalizedQuery, Var, alpha_canonical, normalize_query, pretty
from .xquery import ast as surface_ast
from .xquery import parse_query
from .xquery.abbrev import resolve_abbreviations


@dataclass
class CompiledQuery:
    """A query with all of its intermediate compilation stages."""

    text: str
    surface: surface_ast.Expr
    normalized: NormalizedQuery
    tpnf: CExpr
    plan: ItemPlan
    optimized: ItemPlan
    #: per-pass snapshots of the core rewriting, when compiled with
    #: ``trace=True``.
    rewrite_trace: Optional[RewriteTrace] = None

    @property
    def core(self) -> CExpr:
        return self.normalized.core

    def tree_pattern_count(self) -> int:
        """How many ``TupleTreePattern`` operators the optimizer found."""
        return count_operators(self.optimized, TupleTreePattern)

    def tree_patterns(self) -> List[TreePattern]:
        from .algebra import walk_plan
        return [node.pattern for node in walk_plan(self.optimized)
                if isinstance(node, TupleTreePattern)]

    def canonical_plan(self) -> str:
        """Renaming-invariant plan text (used to compare plans of
        syntactic variants, as in the paper's Section 5.1)."""
        return plan_canonical(self.optimized)

    def explain(self) -> str:
        """A report showing every compilation stage."""
        sections = [
            ("Query", self.text),
            ("Normalized core (Section 2)", pretty(self.core)),
            ("TPNF' after rewriting (Section 3)", pretty(self.tpnf)),
            ("Algebraic plan (Section 4)", plan_to_string(self.plan)),
            ("Optimized plan with tree patterns (Section 4.2)",
             plan_to_string(self.optimized)),
        ]
        blocks = []
        for title, body in sections:
            bar = "=" * len(title)
            blocks.append(f"{title}\n{bar}\n{body}")
        return "\n\n".join(blocks)


class Engine:
    """An XQuery engine over one indexed document."""

    def __init__(self, document: IndexedDocument,
                 rewrite_options: Optional[RewriteOptions] = None,
                 optimizer_options: Optional[OptimizerOptions] = None,
                 default_strategy: Strategy | str = Strategy.STAIRCASE) -> None:
        self.document = document
        self.rewrite_options = rewrite_options or RewriteOptions()
        self.optimizer_options = optimizer_options or OptimizerOptions()
        self.default_strategy = Strategy(default_strategy)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_xml(cls, text: str, **kwargs) -> "Engine":
        return cls(IndexedDocument.from_string(text), **kwargs)

    @classmethod
    def from_file(cls, path: str, **kwargs) -> "Engine":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_xml(handle.read(), **kwargs)

    # -- compilation ------------------------------------------------------------

    def compile(self, query: str, optimize: bool = True,
                trace: bool = False) -> CompiledQuery:
        """Run the full compilation pipeline on a query string.

        With ``trace=True`` the result carries a
        :class:`~repro.rewrite.RewriteTrace` recording the core
        expression after each rewriting pass that changed it.
        """
        surface = resolve_abbreviations(parse_query(query))
        normalized = normalize_query(surface)
        rewrite_trace = RewriteTrace() if trace else None
        if optimize:
            tpnf = rewrite_to_tpnf(normalized.core,
                                   options=self.rewrite_options,
                                   trace=rewrite_trace)
        else:
            tpnf = normalized.core
        plan = compile_core(tpnf)
        if optimize:
            optimized = optimize_plan(plan, options=self.optimizer_options)
        else:
            optimized = plan
        return CompiledQuery(text=query, surface=surface,
                             normalized=normalized, tpnf=tpnf, plan=plan,
                             optimized=optimized,
                             rewrite_trace=rewrite_trace)

    # -- execution ---------------------------------------------------------------

    def execute(self, compiled: CompiledQuery,
                strategy: Optional[Strategy | str] = None,
                variables: Optional[Dict[str, Sequence]] = None,
                optimized: bool = True) -> List:
        """Evaluate a compiled query and return the result sequence.

        Every free query variable (``$input``, ``$d``, …) that is not
        supplied in ``variables`` is bound to the document root, as is
        the initial context item for absolute paths.
        """
        algorithm = self._algorithm(strategy)
        bindings: Dict[Var, List] = {}
        root = [self.document.root]
        for name, var in compiled.normalized.global_vars.items():
            if variables is not None and name in variables:
                bindings[var] = list(variables[name])
            else:
                bindings[var] = list(root)
        bindings[compiled.normalized.context_var] = list(root)
        context = EvalContext(document=self.document, strategy=algorithm,
                              globals=bindings)
        plan = compiled.optimized if optimized else compiled.plan
        return eval_item(plan, context)

    def run(self, query: str,
            strategy: Optional[Strategy | str] = None,
            variables: Optional[Dict[str, Sequence]] = None,
            optimize: bool = True) -> List:
        """Compile and evaluate in one call."""
        compiled = self.compile(query, optimize=optimize)
        return self.execute(compiled, strategy=strategy,
                            variables=variables, optimized=optimize)

    def _algorithm(self,
                   strategy: Optional[Strategy | str]) -> TreePatternAlgorithm:
        chosen = Strategy(strategy) if strategy is not None \
            else self.default_strategy
        return make_algorithm(chosen, self.document)


def execute_query(xml_text: str, query: str, **kwargs) -> List:
    """One-shot convenience: parse, compile, run."""
    return Engine.from_xml(xml_text).run(query, **kwargs)


def xpath(document: "IndexedDocument | str", path: str,
          strategy: Strategy | str = Strategy.STAIRCASE,
          **kwargs) -> List:
    """Evaluate one path expression against a document.

    ``document`` may be an :class:`IndexedDocument` or an XML string;
    the path's free variables (and absolute steps) resolve to the
    document root.

    >>> from repro import xpath
    >>> [n.string_value() for n in xpath("<a><b>x</b></a>", "//b")]
    ['x']
    """
    if isinstance(document, str):
        engine = Engine.from_xml(document)
    else:
        engine = Engine(document)
    return engine.run(path, strategy=strategy, **kwargs)
