"""Plan printing in the paper's functional notation.

Example (the paper's P5)::

    MapToItem{IN#out}
    (TupleTreePattern
      [IN#dot/descendant::person[child::emailaddress]/child::name{out}]
      (MapFromItem{[dot : IN]}($d)))

:func:`plan_canonical` renames tuple fields and variables in a canonical
traversal order, giving a string that is identical for plans equal up to
renaming — this is what the Section 5.1 experiment compares across the
twenty syntactic variants.
"""

from __future__ import annotations

from typing import Dict

from ..pattern import PatternPath, PatternStep, TreePattern
from ..xqcore.cast import Var
from .ops import (Arith, Compare, Const, DDOPlan, FieldAccess, FnCall,
                  IfPlan, InputTuple, LetPlan, Logical, MapFromItem,
                  MapToItem, Plan, Select, SeqPlan, TreeJoin,
                  TupleTreePattern, TypeswitchPlan, VarPlan, walk_plan)


def plan_to_string(plan: Plan, indent: int = 0) -> str:
    """Render a plan with the original field/variable names."""
    return _Renderer(field_names=None, var_names=None).render(plan, indent)


def plan_canonical(plan: Plan) -> str:
    """A canonical rendering, invariant under field/variable renaming."""
    field_names: Dict[str, str] = {}
    var_names: Dict[Var, str] = {}
    for node in walk_plan(plan):
        if isinstance(node, FieldAccess):
            _intern(field_names, node.field)
        elif isinstance(node, MapFromItem):
            _intern(field_names, node.bind_field)
            if node.index_field is not None:
                _intern(field_names, node.index_field)
        elif isinstance(node, TupleTreePattern):
            _intern(field_names, node.pattern.input_field)
            for out in node.pattern.output_fields():
                _intern(field_names, out)
        elif isinstance(node, (VarPlan, LetPlan)):
            var = node.var
            if var not in var_names:
                var_names[var] = f"v{len(var_names)}"
        elif isinstance(node, TypeswitchPlan):
            for case in node.cases:
                if case.var not in var_names:
                    var_names[case.var] = f"v{len(var_names)}"
            if node.default_var not in var_names:
                var_names[node.default_var] = f"v{len(var_names)}"
    return _Renderer(field_names, var_names).render(plan, 0)


def _intern(table: Dict[str, str], name: str) -> None:
    if name not in table:
        table[name] = f"f{len(table)}"


class _Renderer:
    def __init__(self, field_names: Dict[str, str] | None,
                 var_names: Dict[Var, str] | None) -> None:
        self.field_names = field_names
        self.var_names = var_names

    def field(self, name: str) -> str:
        if self.field_names is None:
            return name
        return self.field_names.get(name, name)

    def var(self, var: Var) -> str:
        if self.var_names is None:
            return f"${var.name}"
        return "$" + self.var_names.get(var, var.name)

    def pattern(self, pattern: TreePattern) -> str:
        return (f"IN#{self.field(pattern.input_field)}/"
                + self.path(pattern.path))

    def path(self, path: PatternPath) -> str:
        return "/".join(self.step(step) for step in path.steps)

    def step(self, step: PatternStep) -> str:
        text = f"{step.axis.value}::{step.test.to_string()}"
        if step.output_field is not None:
            text += "{" + self.field(step.output_field) + "}"
        for predicate in step.predicates:
            text += "[" + self.path(predicate) + "]"
        if step.position is not None:
            text += f"[{step.position}]"
        return text

    def render(self, plan: Plan, depth: int) -> str:
        pad = "  " * depth
        if isinstance(plan, Const):
            if len(plan.values) == 1:
                return pad + _render_value(plan.values[0])
            return pad + "(" + ", ".join(_render_value(value)
                                         for value in plan.values) + ")"
        if isinstance(plan, VarPlan):
            return pad + self.var(plan.var)
        if isinstance(plan, FieldAccess):
            return pad + f"IN#{self.field(plan.field)}"
        if isinstance(plan, InputTuple):
            return pad + "IN"
        if isinstance(plan, TreeJoin):
            inner = self.render(plan.input, 0)
            return (f"{pad}TreeJoin[{plan.axis.value}::"
                    f"{plan.test.to_string()}]({inner})")
        if isinstance(plan, DDOPlan):
            inner = self.render(plan.input, depth + 1).lstrip()
            return f"{pad}fs:ddo({inner})"
        if isinstance(plan, MapToItem):
            dep = self.render(plan.dep, 0)
            inner = self.render(plan.input, depth + 1)
            return f"{pad}MapToItem{{{dep}}}\n{inner}"
        if isinstance(plan, MapFromItem):
            index = (f"; {self.field(plan.index_field)} : INDEX"
                     if plan.index_field is not None else "")
            inner = self.render(plan.input, 0)
            return (f"{pad}MapFromItem{{[{self.field(plan.bind_field)} : "
                    f"IN{index}]}}({inner})")
        if isinstance(plan, Select):
            predicate = self.render(plan.predicate, 0)
            inner = self.render(plan.input, depth + 1)
            return f"{pad}Select{{{predicate}}}\n{inner}"
        if isinstance(plan, TupleTreePattern):
            inner = self.render(plan.input, depth + 1)
            return (f"{pad}TupleTreePattern\n{pad}  "
                    f"[{self.pattern(plan.pattern)}]\n{inner}")
        if isinstance(plan, FnCall):
            args = ", ".join(self.render(arg, 0) for arg in plan.args)
            return f"{pad}{plan.name}({args})"
        if isinstance(plan, Compare):
            return (pad + self.render(plan.left, 0) + f" {plan.op} "
                    + self.render(plan.right, 0))
        if isinstance(plan, Logical):
            return (pad + "(" + self.render(plan.left, 0) + f" {plan.op} "
                    + self.render(plan.right, 0) + ")")
        if isinstance(plan, Arith):
            return (pad + "(" + self.render(plan.left, 0) + f" {plan.op} "
                    + self.render(plan.right, 0) + ")")
        if isinstance(plan, IfPlan):
            return (pad + "If{" + self.render(plan.condition, 0) + "}("
                    + self.render(plan.then_branch, 0) + "; "
                    + self.render(plan.else_branch, 0) + ")")
        if isinstance(plan, LetPlan):
            value = self.render(plan.value, 0)
            body = self.render(plan.body, depth + 1)
            return f"{pad}Let[{self.var(plan.var)} := {value}]\n{body}"
        if isinstance(plan, SeqPlan):
            items = "; ".join(self.render(item, 0) for item in plan.items)
            return f"{pad}Seq({items})"
        if isinstance(plan, TypeswitchPlan):
            parts = [f"{pad}Typeswitch{{{self.render(plan.input, 0)}}}("]
            for case in plan.cases:
                parts.append(f"{pad}  case {self.var(case.var)} as "
                             f"{case.seqtype}(): "
                             + self.render(case.body, 0))
            parts.append(f"{pad}  default {self.var(plan.default_var)}: "
                         + self.render(plan.default_body, 0))
            parts.append(f"{pad})")
            return "\n".join(parts)
        raise TypeError(f"cannot render {type(plan).__name__}")


def _render_value(value) -> str:
    if isinstance(value, str):
        return '"' + value.replace('"', '""') + '"'
    if isinstance(value, bool):
        return "fn:true()" if value else "fn:false()"
    return repr(value)
