"""Dynamic-semantics helpers: EBV, atomization, comparisons.

Items are either :class:`~repro.xmltree.node.Node` instances or Python
atomics (``str``, ``int``, ``float``, ``bool``); sequences are lists.
"""

from __future__ import annotations

from typing import List, Union

from ..guard.errors import ReproError
from ..xmltree.node import Node

Item = Union[Node, str, int, float, bool]
Sequence_ = List[Item]


class DynamicError(ReproError):
    """Raised on dynamic (runtime) errors, e.g. a bad EBV."""

    code = "REPRO-DYNAMIC"


def effective_boolean_value(seq: Sequence_) -> bool:
    """XPath 2.0 effective boolean value."""
    if not seq:
        return False
    first = seq[0]
    if isinstance(first, Node):
        return True
    if len(seq) > 1:
        raise DynamicError(
            "effective boolean value of a multi-item atomic sequence")
    if isinstance(first, bool):
        return first
    if isinstance(first, (int, float)):
        return first != 0 and first == first  # NaN is false
    if isinstance(first, str):
        return len(first) > 0
    raise DynamicError(f"no effective boolean value for {type(first).__name__}")


def atomize(seq: Sequence_) -> list:
    """Replace nodes by their typed (string) values."""
    return [item.typed_value() if isinstance(item, Node) else item
            for item in seq]


def _coerce_pair(left, right):
    """Untyped-data coercion for general comparisons.

    Follows XPath 1.0-style comparison of untyped values: if either side
    is numeric, compare numerically; booleans compare as booleans;
    otherwise compare as strings.
    """
    if isinstance(left, bool) or isinstance(right, bool):
        return bool(left), bool(right)
    if isinstance(left, (int, float)) or isinstance(right, (int, float)):
        try:
            return float(left), float(right)
        except (TypeError, ValueError):
            return None
    return str(left), str(right)


_OPERATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def general_compare(op: str, left_seq: Sequence_, right_seq: Sequence_) -> bool:
    """Existential general comparison over atomized operands."""
    compare = _OPERATORS[op]
    left_atoms = atomize(left_seq)
    right_atoms = atomize(right_seq)
    for left in left_atoms:
        for right in right_atoms:
            pair = _coerce_pair(left, right)
            if pair is None:
                continue
            if compare(*pair):
                return True
    return False


def numeric_value(seq: Sequence_, context: str) -> float | int | None:
    """Atomize to a single number; empty propagates as ``None``."""
    atoms = atomize(seq)
    if not atoms:
        return None
    if len(atoms) > 1:
        raise DynamicError(f"{context}: expected a singleton, got {len(atoms)}")
    value = atoms[0]
    if isinstance(value, bool):
        raise DynamicError(f"{context}: boolean is not a number")
    if isinstance(value, (int, float)):
        return value
    try:
        as_float = float(value)
    except (TypeError, ValueError) as error:
        raise DynamicError(f"{context}: cannot cast {value!r} to a number") from error
    if as_float.is_integer():
        return int(as_float)
    return as_float


def arithmetic(op: str, left_seq: Sequence_, right_seq: Sequence_) -> Sequence_:
    """Empty-propagating arithmetic on atomized singletons."""
    left = numeric_value(left_seq, f"left operand of {op}")
    right = numeric_value(right_seq, f"right operand of {op}")
    if left is None or right is None:
        return []
    if op == "+":
        return [left + right]
    if op == "-":
        return [left - right]
    if op == "*":
        return [left * right]
    if op == "div":
        if right == 0:
            raise DynamicError("division by zero")
        value = left / right
        return [int(value) if isinstance(value, float) and value.is_integer()
                else value]
    if op == "mod":
        if right == 0:
            raise DynamicError("modulo by zero")
        return [left % right]
    raise DynamicError(f"unknown arithmetic operator {op!r}")


def string_value(seq: Sequence_) -> str:
    """``fn:string`` of a sequence's first item (empty → '')."""
    if not seq:
        return ""
    item = seq[0]
    if isinstance(item, Node):
        return item.string_value()
    if isinstance(item, bool):
        return "true" if item else "false"
    return str(item)
