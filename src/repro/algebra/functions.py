"""The built-in function library (the ``fn:``/``op:`` calls the
normalizer emits)."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..xmltree.document import ddo
from ..xmltree.node import Node
from .runtime import (DynamicError, Sequence_, atomize,
                      effective_boolean_value, numeric_value, string_value)


def _fn_count(args: List[Sequence_]) -> Sequence_:
    return [len(args[0])]


def _fn_boolean(args: List[Sequence_]) -> Sequence_:
    return [effective_boolean_value(args[0])]


def _fn_not(args: List[Sequence_]) -> Sequence_:
    return [not effective_boolean_value(args[0])]


def _fn_exists(args: List[Sequence_]) -> Sequence_:
    return [bool(args[0])]


def _fn_empty(args: List[Sequence_]) -> Sequence_:
    return [not args[0]]


def _fn_true(args: List[Sequence_]) -> Sequence_:
    return [True]


def _fn_false(args: List[Sequence_]) -> Sequence_:
    return [False]


def _fn_root(args: List[Sequence_]) -> Sequence_:
    result = []
    for item in args[0]:
        if not isinstance(item, Node):
            raise DynamicError("fn:root applied to a non-node")
        result.append(item.root())
    return ddo(result)


def _fn_string(args: List[Sequence_]) -> Sequence_:
    return [string_value(args[0])]


def _fn_data(args: List[Sequence_]) -> Sequence_:
    return atomize(args[0])


def _fn_name(args: List[Sequence_]) -> Sequence_:
    if not args[0]:
        return [""]
    item = args[0][0]
    if not isinstance(item, Node):
        raise DynamicError("fn:name applied to a non-node")
    return [item.name or ""]


def _fn_concat(args: List[Sequence_]) -> Sequence_:
    return ["".join(string_value(arg) for arg in args)]


def _fn_contains(args: List[Sequence_]) -> Sequence_:
    return [string_value(args[1]) in string_value(args[0])]


def _fn_starts_with(args: List[Sequence_]) -> Sequence_:
    return [string_value(args[0]).startswith(string_value(args[1]))]


def _fn_string_length(args: List[Sequence_]) -> Sequence_:
    return [len(string_value(args[0]))]


def _fn_number(args: List[Sequence_]) -> Sequence_:
    value = numeric_value(args[0], "fn:number")
    return [] if value is None else [value]


def _fn_sum(args: List[Sequence_]) -> Sequence_:
    atoms = atomize(args[0])
    total: float = 0
    for atom in atoms:
        value = numeric_value([atom], "fn:sum item")
        if value is not None:
            total += value
    return [int(total) if isinstance(total, float) and total.is_integer()
            else total]


def _aggregate(args: List[Sequence_], picker) -> Sequence_:
    atoms = [numeric_value([atom], "aggregate item")
             for atom in atomize(args[0])]
    atoms = [atom for atom in atoms if atom is not None]
    if not atoms:
        return []
    return [picker(atoms)]


def _fn_min(args: List[Sequence_]) -> Sequence_:
    return _aggregate(args, min)


def _fn_max(args: List[Sequence_]) -> Sequence_:
    return _aggregate(args, max)


def _fn_avg(args: List[Sequence_]) -> Sequence_:
    atoms = [numeric_value([atom], "fn:avg item")
             for atom in atomize(args[0])]
    atoms = [atom for atom in atoms if atom is not None]
    if not atoms:
        return []
    return [sum(atoms) / len(atoms)]


def _fn_distinct_values(args: List[Sequence_]) -> Sequence_:
    seen = set()
    result: Sequence_ = []
    for atom in atomize(args[0]):
        key = (type(atom).__name__, atom)
        if key not in seen:
            seen.add(key)
            result.append(atom)
    return result


def _fn_reverse(args: List[Sequence_]) -> Sequence_:
    return list(reversed(args[0]))


def _fn_subsequence(args: List[Sequence_]) -> Sequence_:
    start = numeric_value(args[1], "fn:subsequence start")
    if start is None:
        return []
    begin = max(int(start) - 1, 0)
    if len(args) > 2:
        length = numeric_value(args[2], "fn:subsequence length")
        if length is None:
            return []
        return args[0][begin:begin + int(length)]
    return args[0][begin:]


def _fn_zero_or_one(args: List[Sequence_]) -> Sequence_:
    if len(args[0]) > 1:
        raise DynamicError("fn:zero-or-one: more than one item")
    return args[0]


def _fn_exactly_one(args: List[Sequence_]) -> Sequence_:
    if len(args[0]) != 1:
        raise DynamicError("fn:exactly-one: not exactly one item")
    return args[0]


def _op_to(args: List[Sequence_]) -> Sequence_:
    low = numeric_value(args[0], "op:to low")
    high = numeric_value(args[1], "op:to high")
    if low is None or high is None:
        return []
    return list(range(int(low), int(high) + 1))


def _op_union(args: List[Sequence_]) -> Sequence_:
    combined: list[Node] = []
    for arg in args:
        for item in arg:
            if not isinstance(item, Node):
                raise DynamicError("union over non-nodes")
            combined.append(item)
    return ddo(combined)


FUNCTIONS: Dict[str, Callable[[List[Sequence_]], Sequence_]] = {
    "fn:count": _fn_count,
    "fn:boolean": _fn_boolean,
    "fn:not": _fn_not,
    "fn:exists": _fn_exists,
    "fn:empty": _fn_empty,
    "fn:true": _fn_true,
    "fn:false": _fn_false,
    "fn:root": _fn_root,
    "fn:string": _fn_string,
    "fn:data": _fn_data,
    "fn:name": _fn_name,
    "fn:local-name": _fn_name,
    "fn:concat": _fn_concat,
    "fn:contains": _fn_contains,
    "fn:starts-with": _fn_starts_with,
    "fn:string-length": _fn_string_length,
    "fn:number": _fn_number,
    "fn:sum": _fn_sum,
    "fn:min": _fn_min,
    "fn:max": _fn_max,
    "fn:avg": _fn_avg,
    "fn:distinct-values": _fn_distinct_values,
    "fn:reverse": _fn_reverse,
    "fn:subsequence": _fn_subsequence,
    "fn:zero-or-one": _fn_zero_or_one,
    "fn:exactly-one": _fn_exactly_one,
    "op:to": _op_to,
    "op:union": _op_union,
}


def call_function(name: str, args: List[Sequence_]) -> Sequence_:
    try:
        implementation = FUNCTIONS[name]
    except KeyError as error:
        raise DynamicError(f"unknown function {name}") from error
    return implementation(args)
