"""Graphviz DOT rendering of plans and tree patterns.

``plan_to_dot`` draws the operator tree (tuple operators as boxes, item
operators as ellipses, dependent sub-plans as dashed edges);
``pattern_to_dot`` draws a tree pattern with its spine, predicate
branches and output annotations.  The output is plain DOT text — render
with ``dot -Tsvg`` or paste into any Graphviz viewer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..pattern import PatternPath, TreePattern
from .ops import (Arith, Compare, Const, DDOPlan, FieldAccess, FnCall,
                  IfPlan, InputTuple, LetPlan, Logical, MapFromItem,
                  MapToItem, Plan, Select, SeqPlan, TreeJoin, TuplePlan,
                  TupleTreePattern, TypeswitchPlan, VarPlan)


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def plan_to_dot(plan: Plan, name: str = "plan",
                annotations: Optional[Dict[int, str]] = None) -> str:
    """Render a plan as a DOT digraph.

    ``annotations`` optionally maps ``id(node)`` to an extra label line
    (e.g. EXPLAIN ANALYZE per-operator time/cardinality annotations from
    :meth:`repro.trace.ExplainAnalysis.dot_annotations`); annotated
    nodes render bold so hot operators stand out.
    """
    lines: List[str] = [f'digraph "{_escape(name)}" {{',
                        "  rankdir=BT;",
                        '  node [fontname="Helvetica", fontsize=11];']
    counter = [0]

    def emit(node: Plan) -> str:
        identifier = f"n{counter[0]}"
        counter[0] += 1
        label, dependents, inputs = _describe(node)
        extra = annotations.get(id(node)) if annotations else None
        style = ""
        if extra is not None:
            label = f"{label}\\n{extra}"
            style = ", style=bold"
        shape = "box" if isinstance(node, TuplePlan) else "ellipse"
        lines.append(f'  {identifier} [label="{_escape(label)}", '
                     f'shape={shape}{style}];')
        for dependent in dependents:
            child_id = emit(dependent)
            lines.append(f'  {child_id} -> {identifier} [style=dashed, '
                         f'label="dep"];')
        for input_plan in inputs:
            child_id = emit(input_plan)
            lines.append(f"  {child_id} -> {identifier};")
        return identifier

    emit(plan)
    lines.append("}")
    return "\n".join(lines)


def _describe(node: Plan):
    """(label, dependent children, input children) of an operator."""
    if isinstance(node, Const):
        return f"Const {list(node.values)!r}", [], []
    if isinstance(node, VarPlan):
        return f"${node.var.name}", [], []
    if isinstance(node, FieldAccess):
        return f"IN#{node.field}", [], []
    if isinstance(node, InputTuple):
        return "IN", [], []
    if isinstance(node, TreeJoin):
        return (f"TreeJoin\\n{node.axis.value}::{node.test.to_string()}",
                [], [node.input])
    if isinstance(node, DDOPlan):
        return "fs:ddo", [], [node.input]
    if isinstance(node, MapToItem):
        return "MapToItem", [node.dep], [node.input]
    if isinstance(node, MapFromItem):
        index = (f"; {node.index_field}: INDEX"
                 if node.index_field is not None else "")
        return (f"MapFromItem\\n[{node.bind_field} : IN{index}]",
                [], [node.input])
    if isinstance(node, Select):
        return "Select", [node.predicate], [node.input]
    if isinstance(node, TupleTreePattern):
        return (f"TupleTreePattern\\n{node.pattern.to_string()}",
                [], [node.input])
    if isinstance(node, FnCall):
        return node.name, [], list(node.args)
    if isinstance(node, Compare):
        return f"cmp {node.op}", [], [node.left, node.right]
    if isinstance(node, Logical):
        return node.op, [], [node.left, node.right]
    if isinstance(node, Arith):
        return f"arith {node.op}", [], [node.left, node.right]
    if isinstance(node, IfPlan):
        return ("if", [node.condition],
                [node.then_branch, node.else_branch])
    if isinstance(node, LetPlan):
        return f"let ${node.var.name}", [], [node.value, node.body]
    if isinstance(node, SeqPlan):
        return "seq", [], list(node.items)
    if isinstance(node, TypeswitchPlan):
        return "typeswitch", [], list(node.children())
    return type(node).__name__, [], list(node.children())


#: public alias: (label, dependent children, input children) — shared
#: with the EXPLAIN ANALYZE renderer in :mod:`repro.trace.analyze`.
describe_plan = _describe


def pattern_to_dot(pattern: TreePattern, name: str = "pattern") -> str:
    """Render a tree pattern as a DOT digraph (edges labelled by axis)."""
    lines: List[str] = [f'digraph "{_escape(name)}" {{',
                        "  rankdir=TB;",
                        '  node [fontname="Helvetica", fontsize=11];',
                        f'  ctx [label="IN#{_escape(pattern.input_field)}", '
                        f"shape=box];"]
    counter = [0]

    def emit_path(path: PatternPath, anchor: str, spine: bool) -> None:
        parent = anchor
        for step in path.steps:
            identifier = f"p{counter[0]}"
            counter[0] += 1
            label = step.test.to_string()
            if step.output_field is not None:
                label += " {" + step.output_field + "}"
            if step.position is not None:
                label += f" [{step.position}]"
            style = "solid" if spine else "dotted"
            peripheries = 2 if step.output_field is not None else 1
            lines.append(f'  {identifier} [label="{_escape(label)}", '
                         f"peripheries={peripheries}];")
            edge_style = ("dashed"
                          if step.axis.value.startswith("descendant")
                          else "solid")
            lines.append(f'  {parent} -> {identifier} '
                         f'[label="{step.axis.value}", style={edge_style}];')
            for branch in step.predicates:
                emit_path(branch, identifier, spine=False)
            parent = identifier

    emit_path(pattern.path, "ctx", spine=True)
    lines.append("}")
    return "\n".join(lines)
