"""Algebraic tree-pattern detection (paper Section 4.2, Figure 3).

The optimizer introduces and grows ``TupleTreePattern`` operators with
the paper's rules:

* (a)/(b) replace navigational ``TreeJoin`` operators by single-step
  ``TupleTreePattern``s — (b) reuses an existing ``MapToItem``, (a)
  introduces one;
* (c) eliminates item/tuple conversions (``MapFromItem`` over
  ``MapToItem`` over an independent ``TupleTreePattern``);
* (d) merges consecutive single-step patterns along the spine;
* (e) folds existential ``Select`` predicates into predicate branches;
* (f) removes the outer ``fs:ddo``, whose semantics a single-output
  ``TupleTreePattern`` already provides.

The rules are "always directed in a way that creates bigger tree
patterns" and preserve intermediate operators (e.g. the value ``Select``
of the paper's Q2) — both properties the paper states in Section 2.

Order-sensitivity guards (a deviation documented in DESIGN.md): rule (d)
changes the order/multiplicity of the composed result exactly when
pattern steps can nest (the paper's Q5 discussion), so it only fires in
an order/duplicate-insensitive context — under a ``ddo`` spine or an
effective-boolean-value consumer.  Rule (f) fires when the pattern
operator's input carries at most one tuple (then the per-tuple XPath
semantics of the single-output pattern makes the ``ddo`` the identity,
as in the paper's P5).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import FrozenSet, List, Optional, Tuple

from ..pattern import PatternPath, TreePattern, single_step_pattern
from ..xmltree.axes import Axis
from ..xqcore.cast import Var
from .ops import (Arith, Compare, Const, DDOPlan, FieldAccess, FnCall,
                  IfPlan, InputTuple, ItemPlan, LetPlan, Logical,
                  MapFromItem, MapToItem, Plan, Select, SeqPlan, TreeJoin,
                  TuplePlan, TupleTreePattern, TypeswitchPlan, VarPlan,
                  walk_plan)

_MAX_PASSES = 100

#: functions that consume only the effective boolean value.
_EBV_FUNCTIONS = frozenset({"fn:boolean", "fn:exists", "fn:empty", "fn:not"})

#: axes that map separated (ancestor-free) context sets to separated
#: result sets — see repro.rewrite.facts.SEPARATED_PRESERVING_AXES.
_SEPARATION_PRESERVING_AXES = frozenset({
    Axis.CHILD, Axis.ATTRIBUTE, Axis.SELF,
})


@dataclass
class OptimizerOptions:
    """Feature toggles, used by the ablation benchmarks."""

    enable_tree_patterns: bool = True
    enable_merge: bool = True          # rules (d)/(e)
    enable_ddo_removal: bool = True    # rule (f)
    #: the positional-pattern extension (the paper's Section 7 future
    #: work): fold ``step[n]`` selections into the pattern (rule (g)).
    #: Off by default to keep the paper's Figure 1/Q3 plan shapes.
    enable_positional: bool = False
    #: the multi-variable tree-pattern extension (the paper's Section 1
    #: future work): when an order-preserving merge (rule (d)) is not
    #: available, merge anyway keeping the junction annotated — the
    #: multi-output pattern's lexical binding order equals the
    #: composition's order (rule (m)).  Off by default to keep the
    #: paper's Q5 two-pattern plan shape.
    enable_multi_output: bool = False


class _FieldNamer:
    """Fresh output-field names for rules (a)/(b)."""

    def __init__(self, plan: Plan) -> None:
        self._used = set()
        for node in walk_plan(plan):
            if isinstance(node, FieldAccess):
                self._used.add(node.field)
            elif isinstance(node, MapFromItem):
                self._used.add(node.bind_field)
                if node.index_field is not None:
                    self._used.add(node.index_field)
            elif isinstance(node, TupleTreePattern):
                self._used.add(node.pattern.input_field)
                self._used.update(node.pattern.output_fields())
        self._counter = count(1)

    def fresh(self, base: str = "out") -> str:
        name = base
        while name in self._used:
            name = f"{base}{next(self._counter)}"
        self._used.add(name)
        return name


def optimize_plan(plan: ItemPlan,
                  options: OptimizerOptions | None = None) -> ItemPlan:
    """Run the Figure 3 rules to fixpoint."""
    options = options or OptimizerOptions()
    if not options.enable_tree_patterns:
        return plan
    optimizer = _Optimizer(options, _FieldNamer(plan))
    for _ in range(_MAX_PASSES):
        optimizer.changed = False
        plan = optimizer.rewrite(plan, insensitive=False,
                                 live=frozenset())
        if not optimizer.changed:
            return plan
    raise RuntimeError("algebraic optimization did not reach a fixpoint "
                       f"within {_MAX_PASSES} passes")


def _fields_read(plan: Plan) -> FrozenSet[str]:
    """All tuple fields a plan subtree may read (conservative)."""
    fields = set()
    for node in walk_plan(plan):
        if isinstance(node, FieldAccess):
            fields.add(node.field)
        elif isinstance(node, TupleTreePattern):
            fields.add(node.pattern.input_field)
    return frozenset(fields)


def _item_singleton(plan: ItemPlan) -> bool:
    """Does this item plan always produce exactly one item?"""
    if isinstance(plan, VarPlan):
        return plan.var.origin in ("external", "focus")
    if isinstance(plan, Const):
        return len(plan.values) == 1
    if isinstance(plan, FnCall):
        return plan.name in ("fn:root", "fn:doc", "fn:count", "fn:boolean",
                             "fn:not", "fn:exists", "fn:empty", "fn:string",
                             "fn:true", "fn:false")
    if isinstance(plan, (Compare, Logical)):
        return True
    return False


def _field_is_singleton(plan: TuplePlan, field_name: str) -> bool:
    """Does every tuple of ``plan`` hold at most one item in ``field``?"""
    if isinstance(plan, MapFromItem):
        return field_name in (plan.bind_field, plan.index_field)
    if isinstance(plan, Select):
        return _field_is_singleton(plan.input, field_name)
    if isinstance(plan, TupleTreePattern):
        if field_name in plan.pattern.output_fields():
            return True
        return _field_is_singleton(plan.input, field_name)
    return False


def _tuple_cardinality_at_most_one(plan: TuplePlan) -> bool:
    """Does this tuple plan always produce at most one tuple?"""
    if isinstance(plan, InputTuple):
        return True
    if isinstance(plan, MapFromItem):
        return _item_singleton(plan.input)
    if isinstance(plan, Select):
        return _tuple_cardinality_at_most_one(plan.input)
    return False


class _Optimizer:
    def __init__(self, options: OptimizerOptions, namer: _FieldNamer) -> None:
        self.options = options
        self.namer = namer
        self.changed = False

    # -- traversal ----------------------------------------------------------

    def rewrite(self, plan: Plan, insensitive: bool,
                live: FrozenSet[str]) -> Plan:
        plan = self._apply_rules(plan, insensitive, live)
        return self._rewrite_children(plan, insensitive, live)

    def _mark(self, plan: Plan) -> Plan:
        self.changed = True
        return plan

    def _rewrite_children(self, plan: Plan, insensitive: bool,
                          live: FrozenSet[str]) -> Plan:
        if isinstance(plan, DDOPlan):
            return DDOPlan(self.rewrite(plan.input, True, live))
        if isinstance(plan, MapToItem):
            dep = self.rewrite(plan.dep, insensitive, frozenset())
            input_plan = self.rewrite(plan.input, insensitive,
                                      _fields_read(dep))
            return MapToItem(dep, input_plan)
        if isinstance(plan, MapFromItem):
            source_insensitive = insensitive and plan.index_field is None
            return MapFromItem(plan.bind_field,
                               self.rewrite(plan.input, source_insensitive,
                                            frozenset()),
                               plan.index_field)
        if isinstance(plan, Select):
            predicate = self.rewrite(plan.predicate, True, frozenset())
            input_plan = self.rewrite(plan.input, insensitive,
                                      live | _fields_read(predicate))
            return Select(predicate, input_plan)
        if isinstance(plan, TupleTreePattern):
            input_live = live | {plan.pattern.input_field}
            return TupleTreePattern(plan.pattern,
                                    self.rewrite(plan.input, insensitive,
                                                 input_live))
        if isinstance(plan, TreeJoin):
            return TreeJoin(plan.axis, plan.test,
                            self.rewrite(plan.input, insensitive, live))
        if isinstance(plan, FnCall):
            arg_insensitive = plan.name in _EBV_FUNCTIONS
            return FnCall(plan.name,
                          [self.rewrite(arg, arg_insensitive, live)
                           for arg in plan.args])
        if isinstance(plan, (Compare, Logical)):
            left = self.rewrite(plan.left, True, live)
            right = self.rewrite(plan.right, True, live)
            return type(plan)(plan.op, left, right)
        if isinstance(plan, Arith):
            return Arith(plan.op, self.rewrite(plan.left, False, live),
                         self.rewrite(plan.right, False, live))
        if isinstance(plan, IfPlan):
            return IfPlan(self.rewrite(plan.condition, True, live),
                          self.rewrite(plan.then_branch, insensitive, live),
                          self.rewrite(plan.else_branch, insensitive, live))
        if isinstance(plan, LetPlan):
            return LetPlan(plan.var,
                           self.rewrite(plan.value, False, live),
                           self.rewrite(plan.body, insensitive, live))
        if isinstance(plan, SeqPlan):
            return SeqPlan([self.rewrite(item, insensitive, live)
                            for item in plan.items])
        if isinstance(plan, TypeswitchPlan):
            children = [self.rewrite(child, False, live)
                        for child in plan.children()]
            return plan.replace_children(children)
        return plan

    # -- rule dispatch --------------------------------------------------------

    def _apply_rules(self, plan: Plan, insensitive: bool,
                     live: FrozenSet[str]) -> Plan:
        while True:
            rewritten = self._try_rules(plan, insensitive, live)
            if rewritten is plan:
                return plan
            plan = self._mark(rewritten)

    def _try_rules(self, plan: Plan, insensitive: bool,
                   live: FrozenSet[str]) -> Plan:
        if isinstance(plan, MapToItem):
            result = self._rule_b(plan)
            if result is not plan:
                return result
            if self.options.enable_positional:
                result = self._rule_g(plan)
                if result is not plan:
                    return result
            result = self._cleanup_hoist_dependent_map(plan)
            if result is not plan:
                return result
            result = self._cleanup_map_identity(plan)
            if result is not plan:
                return result
        if isinstance(plan, TreeJoin):
            result = self._rule_a(plan)
            if result is not plan:
                return result
        if isinstance(plan, MapFromItem):
            result = self._rule_c(plan)
            if result is not plan:
                return result
        if isinstance(plan, TupleTreePattern):
            result = self._cleanup_retuple(plan)
            if result is not plan:
                return result
            if self.options.enable_merge:
                result = self._rule_d(plan, insensitive, live)
                if result is not plan:
                    return result
                if self.options.enable_multi_output:
                    result = self._rule_m(plan)
                    if result is not plan:
                        return result
        if isinstance(plan, Select) and self.options.enable_merge:
            result = self._rule_e(plan)
            if result is not plan:
                return result
        if isinstance(plan, DDOPlan):
            if isinstance(plan.input, DDOPlan):
                return plan.input
            if self.options.enable_ddo_removal:
                result = self._rule_f(plan)
                if result is not plan:
                    return result
        return plan

    # -- the Figure 3 rules ---------------------------------------------------

    def _rule_a(self, plan: TreeJoin) -> Plan:
        """TreeJoin[step](IN#in) → MapToItem{IN#out}(TTP[...](IN)).

        Generalized to independent inputs (no tuple-field reads), where
        the rule introduces the ``MapFromItem{[in : IN]}`` seen at the
        bottom of the paper's P5: a per-item single-node context makes
        the pattern's per-tuple XPath semantics coincide with TreeJoin's
        concatenation semantics.
        """
        if not plan.axis.is_downward:
            return plan
        if isinstance(plan.input, FieldAccess):
            out = self.namer.fresh()
            pattern = single_step_pattern(plan.input.field, plan.axis,
                                          plan.test, out)
            return MapToItem(FieldAccess(out),
                             TupleTreePattern(pattern, InputTuple()))
        if not _fields_read(plan.input) and not any(
                isinstance(node, InputTuple)
                for node in walk_plan(plan.input)):
            out = self.namer.fresh()
            in_field = self.namer.fresh("dot")
            pattern = single_step_pattern(in_field, plan.axis,
                                          plan.test, out)
            return MapToItem(
                FieldAccess(out),
                TupleTreePattern(pattern,
                                 MapFromItem(in_field, plan.input)))
        return plan

    def _rule_b(self, plan: MapToItem) -> Plan:
        """MapToItem{TreeJoin[step](IN#in)}(Op) →
        MapToItem{IN#out}(TTP[...](Op))."""
        dep = plan.dep
        if not isinstance(dep, TreeJoin):
            return plan
        if not isinstance(dep.input, FieldAccess):
            return plan
        if not dep.axis.is_downward:
            return plan
        out = self.namer.fresh()
        pattern = single_step_pattern(dep.input.field, dep.axis, dep.test, out)
        return MapToItem(FieldAccess(out),
                         TupleTreePattern(pattern, plan.input))

    def _rule_c(self, plan: MapFromItem) -> Plan:
        """MapFromItem{[f1 : IN]}(MapToItem{IN#f2}(TTP[p{f2}](Op))) →
        TTP[p{f1}](Op).

        The item/tuple round-trip rebinds the pattern's (singleton)
        output under a new field name; feeding the consumers straight
        from the renamed pattern is equivalent.  Dependent ``Op`` (e.g.
        the ``IN`` of a predicate conjunct) is fine: both sides evaluate
        ``Op`` in the same enclosing tuple context, and the extra fields
        the right-hand side keeps are unreadable shadows of values the
        scope chain would have supplied anyway (field names are unique).
        """
        if plan.index_field is not None:
            return plan
        inner = plan.input
        if not isinstance(inner, MapToItem):
            return plan
        if not isinstance(inner.dep, FieldAccess):
            return plan
        ttp = inner.input
        if not isinstance(ttp, TupleTreePattern):
            return plan
        pattern = ttp.pattern
        if not pattern.is_single_output_at_extraction_point():
            return plan
        if pattern.extraction_point.output_field != inner.dep.field:
            return plan
        renamed = TreePattern(
            pattern.input_field,
            pattern.path.replace_last(
                pattern.path.last.with_output(plan.bind_field)))
        return TupleTreePattern(renamed, ttp.input)

    def _rule_d(self, plan: TupleTreePattern, insensitive: bool,
                live: FrozenSet[str]) -> Plan:
        """Merge consecutive patterns along the spine."""
        inner = plan.input
        if not isinstance(inner, TupleTreePattern):
            return plan
        outer_pattern, inner_pattern = plan.pattern, inner.pattern
        if not insensitive and not self._composition_order_safe(inner):
            # Composing two patterns reorders/duplicates results exactly
            # when the inner pattern's matches can nest (the paper's Q5);
            # merge only when a downstream ddo/EBV consumer absorbs the
            # difference, or when the inner spine provably yields
            # *separated* nodes (child/attribute/self steps from a
            # singleton context — disjoint subtrees in document order).
            return plan
        if not inner_pattern.is_single_output_at_extraction_point():
            return plan
        if not outer_pattern.is_single_output_at_extraction_point():
            return plan
        junction = inner_pattern.extraction_point.output_field
        if outer_pattern.input_field != junction:
            return plan
        if junction in live:
            # A consumer above still reads the junction field.
            return plan
        if not (outer_pattern.is_downward() and inner_pattern.is_downward()):
            return plan
        out = outer_pattern.extraction_point.output_field
        merged = inner_pattern.append_path(outer_pattern.path, out)
        return TupleTreePattern(merged, inner.input)

    def _rule_m(self, plan: TupleTreePattern) -> Plan:
        """Multi-variable merge: compose patterns *keeping* the junction.

        When rule (d)'s order guard blocks (the paper's Q5 situation),
        the composition can still become one pattern by keeping the
        junction's output annotation: a multi-output pattern returns its
        bindings in root-to-leaf lexical order (Section 4.1), which is
        exactly the order and multiplicity of the two composed
        operators.  The junction field stays in the output tuples, so
        downstream readers are unaffected.

        Soundness needs the *inner* extraction bindings to enumerate
        without cross-branch duplicates when the inner pattern is
        single-output (its per-tuple XPath semantics deduplicates):
        a single spine step from a singleton context always qualifies;
        an already-multi-output inner has lexical semantics and composes
        freely.
        """
        inner = plan.input
        if not isinstance(inner, TupleTreePattern):
            return plan
        outer_pattern, inner_pattern = plan.pattern, inner.pattern
        if outer_pattern.extraction_point.output_field is None:
            return plan
        if not (outer_pattern.is_downward() and inner_pattern.is_downward()):
            return plan
        junction = inner_pattern.extraction_point.output_field
        if junction is None or outer_pattern.input_field != junction:
            return plan
        if inner_pattern.is_single_output_at_extraction_point():
            safe = (len(inner_pattern.path.steps) == 1
                    or all(step.axis in _SEPARATION_PRESERVING_AXES
                           for step in inner_pattern.path.steps))
            if not safe:
                return plan
            if not _field_is_singleton(inner.input,
                                       inner_pattern.input_field):
                return plan
        out = outer_pattern.extraction_point.output_field
        merged = inner_pattern.append_path_keeping_output(
            outer_pattern.path, out)
        return TupleTreePattern(merged, inner.input)

    def _composition_order_safe(self, inner: TupleTreePattern) -> bool:
        """Is composing another pattern on top of ``inner`` guaranteed to
        preserve document order and duplicate-freedom?

        True when the inner spine uses only separation-preserving axes
        (child/attribute/self) from a singleton context field: the
        matches then live in pairwise-disjoint subtrees in document
        order, so per-match continuations concatenate in order.
        """
        pattern = inner.pattern
        if not _field_is_singleton(inner.input, pattern.input_field):
            return False
        return all(step.axis in _SEPARATION_PRESERVING_AXES
                   for step in pattern.path.steps)

    def _rule_e(self, plan: Select) -> Plan:
        """Fold existential tree-pattern conjuncts into predicate branches."""
        inner = plan.input
        if not isinstance(inner, TupleTreePattern):
            return plan
        pattern = inner.pattern
        if not pattern.is_single_output_at_extraction_point():
            return plan
        if pattern.extraction_point.position is not None:
            # A pattern step applies its branches *before* its position;
            # this Select filters *after* the positional selection, so
            # folding it in would reorder the two.
            return plan
        out = pattern.extraction_point.output_field
        conjuncts = _flatten_and(plan.predicate)
        branches: list[PatternPath] = []
        residual: list[ItemPlan] = []
        for conjunct in conjuncts:
            branch = self._as_existential_branch(conjunct, out)
            if branch is not None:
                branches.append(branch)
            else:
                residual.append(conjunct)
        if not branches:
            return plan
        merged = TupleTreePattern(pattern.add_predicates(branches),
                                  inner.input)
        if residual:
            return Select(_rebuild_and(residual), merged)
        return merged

    def _as_existential_branch(self, conjunct: ItemPlan,
                               context_field: str) -> Optional[PatternPath]:
        """Match ``fn:boolean(MapToItem{IN#ok}(TTP[IN#ctx/path{ok}](IN)))``."""
        if not (isinstance(conjunct, FnCall)
                and conjunct.name in ("fn:boolean", "fn:exists")
                and len(conjunct.args) == 1):
            return None
        body = conjunct.args[0]
        if not (isinstance(body, MapToItem)
                and isinstance(body.dep, FieldAccess)
                and isinstance(body.input, TupleTreePattern)
                and isinstance(body.input.input, InputTuple)):
            return None
        ttp = body.input
        pattern = ttp.pattern
        if pattern.input_field != context_field:
            return None
        if not pattern.is_single_output_at_extraction_point():
            return None
        if pattern.extraction_point.output_field != body.dep.field:
            return None
        if not pattern.is_downward():
            return None
        return pattern.path

    def _rule_f(self, plan: DDOPlan) -> Plan:
        """fs:ddo(MapToItem{IN#out}(TTP[p](Op))) → MapToItem(...) when the
        single-output pattern's per-tuple XPath semantics makes the ddo
        the identity (at most one input tuple)."""
        inner = plan.input
        if not isinstance(inner, MapToItem):
            return plan
        if not isinstance(inner.dep, FieldAccess):
            return plan
        ttp = inner.input
        if not isinstance(ttp, TupleTreePattern):
            return plan
        pattern = ttp.pattern
        if not pattern.is_single_output_at_extraction_point():
            return plan
        if pattern.extraction_point.output_field != inner.dep.field:
            return plan
        if not _tuple_cardinality_at_most_one(ttp.input):
            return plan
        return inner

    def _rule_g(self, plan: MapToItem) -> Plan:
        """Positional extension: fold ``[position() = n]`` selections.

        Detects the shape predicate normalization + compilation produce
        for ``step[n]``::

            MapToItem{IN#g}
              (Select{IN#pos = n}
                (MapFromItem{[g : IN; pos : INDEX]}
                  (MapToItem{IN#o}(TTP[IN#ctx/step{o}](Op)))))

        and rewrites it to
        ``MapToItem{IN#o2}(TTP[IN#ctx/step[n]{o2}](Op))``.  Sound
        because every tuple field in compiled plans holds exactly one
        item, so the per-evaluation index equals the per-context-node
        position the annotation denotes.
        """
        if not isinstance(plan.dep, FieldAccess):
            return plan
        select = plan.input
        if not isinstance(select, Select):
            return plan
        retuple = select.input
        if not (isinstance(retuple, MapFromItem)
                and retuple.index_field is not None
                and retuple.bind_field == plan.dep.field):
            return plan
        position = _match_position_filter(select.predicate,
                                          retuple.index_field)
        if position is None:
            return plan
        inner = retuple.input
        if not (isinstance(inner, MapToItem)
                and isinstance(inner.dep, FieldAccess)
                and isinstance(inner.input, TupleTreePattern)):
            return plan
        ttp = inner.input
        pattern = ttp.pattern
        if len(pattern.path.steps) != 1:
            # Positions count per preceding context node; only a
            # single-step pattern keeps that granularity.
            return plan
        step = pattern.path.steps[0]
        if step.position is not None:
            return plan
        if not pattern.is_single_output_at_extraction_point():
            return plan
        if pattern.extraction_point.output_field != inner.dep.field:
            return plan
        out = self.namer.fresh()
        positional = TreePattern(
            pattern.input_field,
            pattern.path.replace_last(
                step.with_position(position).with_output(out)))
        return MapToItem(FieldAccess(out),
                         TupleTreePattern(positional, ttp.input))

    # -- cleanups ---------------------------------------------------------------

    def _cleanup_hoist_dependent_map(self, plan: MapToItem) -> Plan:
        """MapToItem{MapToItem{IN#o}(TTP[p](IN))}(Op) →
        MapToItem{IN#o}(TTP[p](Op)).

        A dependent pattern evaluated per tuple of ``Op`` is the pattern
        applied to ``Op``'s stream directly (``TupleTreePattern``
        processes tuples independently).
        """
        dep = plan.dep
        if not (isinstance(dep, MapToItem)
                and isinstance(dep.dep, FieldAccess)
                and isinstance(dep.input, TupleTreePattern)
                and isinstance(dep.input.input, InputTuple)):
            return plan
        return MapToItem(dep.dep,
                         TupleTreePattern(dep.input.pattern, plan.input))

    def _cleanup_retuple(self, plan: TupleTreePattern) -> Plan:
        """TTP[IN#a/p](MapFromItem{[a : IN]}(MapToItem{IN#g}(Op))) →
        TTP[IN#g/p](Op).

        The item/tuple round-trip re-binds field ``g`` under a new name;
        when ``g`` is singleton-valued per tuple (a pattern output or a
        ``MapFromItem`` binding), feeding the pattern straight from
        ``Op`` is equivalent — this is what connects the paper's Q2
        patterns directly across the value ``Select``.
        """
        source = plan.input
        if not (isinstance(source, MapFromItem)
                and source.index_field is None
                and source.bind_field == plan.pattern.input_field
                and isinstance(source.input, MapToItem)
                and isinstance(source.input.dep, FieldAccess)):
            return plan
        inner_field = source.input.dep.field
        op = source.input.input
        if not _field_is_singleton(op, inner_field):
            return plan
        renamed = TreePattern(inner_field, plan.pattern.path)
        return TupleTreePattern(renamed, op)

    def _cleanup_map_identity(self, plan: MapToItem) -> Plan:
        """MapToItem{IN#f}(MapFromItem{[f : IN]}(item)) → item."""
        if not isinstance(plan.dep, FieldAccess):
            return plan
        inner = plan.input
        if not isinstance(inner, MapFromItem):
            return plan
        if inner.index_field is not None:
            return plan
        if inner.bind_field != plan.dep.field:
            return plan
        return inner.input


def _match_position_filter(predicate: ItemPlan,
                           index_field: str) -> Optional[int]:
    """``IN#index = n`` (either side) with a positive integer constant."""
    if not (isinstance(predicate, Compare) and predicate.op == "="):
        return None
    left, right = predicate.left, predicate.right
    if isinstance(right, FieldAccess) and right.field == index_field:
        left, right = right, left
    if not (isinstance(left, FieldAccess) and left.field == index_field):
        return None
    if not (isinstance(right, Const) and len(right.values) == 1):
        return None
    value = right.values[0]
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        return None
    return value


def _flatten_and(plan: ItemPlan) -> List[ItemPlan]:
    if isinstance(plan, Logical) and plan.op == "and":
        return _flatten_and(plan.left) + _flatten_and(plan.right)
    return [plan]


def _rebuild_and(conjuncts: List[ItemPlan]) -> ItemPlan:
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = Logical("and", result, conjunct)
    return result
