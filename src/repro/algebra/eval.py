"""Plan evaluation.

The evaluator interprets both plan sorts.  Dependent plans see the
current tuple through a *tuple-scope chain*: ``FieldAccess`` (``IN#f``)
resolves a field against the innermost tuple that defines it, which
gives dependent sub-plans lexical access to enclosing loops' bindings
(field names are uniquified at compile time, so the chain never
shadows).

The ``TupleTreePattern`` operator delegates pattern matching to the
:class:`~repro.physical.base.TreePatternAlgorithm` carried by the
evaluation context — this is the paper's "choosing a tree pattern
algorithm" seam.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..trace import Trace

from ..guard.chaos import chaos_point
from ..guard.errors import AlgorithmError
from ..guard.governor import BudgetExceeded, ResourceGovernor
from ..obs import ExecMetrics
from ..pattern import TreePattern
from ..physical.base import TreePatternAlgorithm
from ..xmltree.axes import step as axis_step
from ..xmltree.document import IndexedDocument, ddo
from ..xmltree.node import Node
from ..xqcore.cast import Var
from .functions import call_function
from .ops import (Arith, Compare, Const, DDOPlan, FieldAccess, FnCall,
                  IfPlan, InputTuple, ItemPlan, LetPlan, Logical,
                  MapFromItem, MapToItem, Plan, Select, SeqPlan, TreeJoin,
                  TuplePlan, TupleTreePattern, TypeswitchPlan, VarPlan)
from .runtime import (DynamicError, Sequence_, effective_boolean_value,
                      general_compare, arithmetic)

Tuple_ = Dict[str, Sequence_]


@dataclass
class EvalContext:
    """Everything a plan needs at runtime."""

    document: Optional[IndexedDocument]
    strategy: TreePatternAlgorithm
    globals: Dict[Var, Sequence_] = field(default_factory=dict)
    variables: Dict[Var, Sequence_] = field(default_factory=dict)
    tuple_stack: List[Tuple_] = field(default_factory=list)
    #: when set, the evaluator counts operator evaluations and
    #: items/tuples produced into it (see :mod:`repro.obs`).
    metrics: Optional[ExecMetrics] = None
    #: when set, the evaluator charges steps/recursion/output against
    #: its budgets and raises :class:`BudgetExceeded` on a trip
    #: (see :mod:`repro.guard.governor`).
    governor: Optional[ResourceGovernor] = None
    #: when set, the evaluator opens one span per plan-operator
    #: evaluation — carrying output cardinality — and aggregates exact
    #: per-operator wall time into :attr:`repro.trace.Trace.op_stats`
    #: (see :mod:`repro.trace`).
    trace: Optional["Trace"] = None

    def lookup_var(self, var: Var) -> Sequence_:
        if var in self.variables:
            return self.variables[var]
        if var in self.globals:
            return self.globals[var]
        raise DynamicError(f"unbound variable ${var.name}")

    def lookup_field(self, name: str) -> Sequence_:
        for tuple_ in reversed(self.tuple_stack):
            if name in tuple_:
                return tuple_[name]
        raise DynamicError(f"unknown tuple field {name}")


def evaluate_plan(plan: Plan, context: EvalContext):
    """Evaluate a plan of either sort."""
    if isinstance(plan, ItemPlan):
        return eval_item(plan, context)
    return eval_tuples(plan, context)


def eval_item(plan: ItemPlan, ctx: EvalContext) -> Sequence_:
    metrics = ctx.metrics
    governor = ctx.governor
    trace = ctx.trace
    if metrics is None and governor is None and trace is None:
        return _eval_item(plan, ctx)
    if metrics is not None:
        metrics.operator_evals[type(plan).__name__] += 1
    span = trace.begin_span(type(plan).__name__) \
        if trace is not None else None
    try:
        if governor is None:
            result = _eval_item(plan, ctx)
        else:
            governor.tick()
            governor.enter()
            try:
                result = _eval_item(plan, ctx)
            finally:
                governor.leave()
            governor.note_output(len(result))
    except BaseException:
        if span is not None:
            trace.end_span(span, error=True)
        raise
    if span is not None:
        trace.end_span(span, rows=len(result))
        trace.record_op(id(plan), type(plan).__name__, span.duration,
                        len(result))
    if metrics is not None:
        metrics.items_produced += len(result)
    return result


def _eval_item(plan: ItemPlan, ctx: EvalContext) -> Sequence_:
    if isinstance(plan, Const):
        return list(plan.values)
    if isinstance(plan, VarPlan):
        return list(ctx.lookup_var(plan.var))
    if isinstance(plan, FieldAccess):
        return list(ctx.lookup_field(plan.field))
    if isinstance(plan, TreeJoin):
        inputs = eval_item(plan.input, ctx)
        result: Sequence_ = []
        for item in inputs:
            if not isinstance(item, Node):
                raise DynamicError("TreeJoin over a non-node item")
            result.extend(axis_step(item, plan.axis, plan.test))
        return result
    if isinstance(plan, DDOPlan):
        items = eval_item(plan.input, ctx)
        for item in items:
            if not isinstance(item, Node):
                raise DynamicError("fs:ddo over a non-node item")
        return ddo(items)  # type: ignore[arg-type]
    if isinstance(plan, MapToItem):
        result = []
        for tuple_ in eval_tuples(plan.input, ctx):
            ctx.tuple_stack.append(tuple_)
            try:
                result.extend(eval_item(plan.dep, ctx))
            finally:
                ctx.tuple_stack.pop()
        return result
    if isinstance(plan, FnCall):
        args = [eval_item(arg, ctx) for arg in plan.args]
        return call_function(plan.name, args)
    if isinstance(plan, Compare):
        return [general_compare(plan.op, eval_item(plan.left, ctx),
                                eval_item(plan.right, ctx))]
    if isinstance(plan, Logical):
        left = effective_boolean_value(eval_item(plan.left, ctx))
        if plan.op == "and":
            if not left:
                return [False]
            return [effective_boolean_value(eval_item(plan.right, ctx))]
        if left:
            return [True]
        return [effective_boolean_value(eval_item(plan.right, ctx))]
    if isinstance(plan, Arith):
        return arithmetic(plan.op, eval_item(plan.left, ctx),
                          eval_item(plan.right, ctx))
    if isinstance(plan, IfPlan):
        if effective_boolean_value(eval_item(plan.condition, ctx)):
            return eval_item(plan.then_branch, ctx)
        return eval_item(plan.else_branch, ctx)
    if isinstance(plan, LetPlan):
        value = eval_item(plan.value, ctx)
        previous = ctx.variables.get(plan.var)
        ctx.variables[plan.var] = value
        try:
            return eval_item(plan.body, ctx)
        finally:
            if previous is None:
                del ctx.variables[plan.var]
            else:
                ctx.variables[plan.var] = previous
    if isinstance(plan, SeqPlan):
        result = []
        for item_plan in plan.items:
            result.extend(eval_item(item_plan, ctx))
        return result
    if isinstance(plan, TypeswitchPlan):
        return _eval_typeswitch(plan, ctx)
    raise DynamicError(f"cannot evaluate {type(plan).__name__}")


def _eval_typeswitch(plan: TypeswitchPlan, ctx: EvalContext) -> Sequence_:
    value = eval_item(plan.input, ctx)
    for case in plan.cases:
        if case.seqtype == "numeric" and _is_numeric_singleton(value):
            return _with_binding(ctx, case.var, value, case.body)
    return _with_binding(ctx, plan.default_var, value, plan.default_body)


def _is_numeric_singleton(value: Sequence_) -> bool:
    return (len(value) == 1 and isinstance(value[0], (int, float))
            and not isinstance(value[0], bool))


def _with_binding(ctx: EvalContext, var: Var, value: Sequence_,
                  body: ItemPlan) -> Sequence_:
    previous = ctx.variables.get(var)
    ctx.variables[var] = value
    try:
        return eval_item(body, ctx)
    finally:
        if previous is None:
            del ctx.variables[var]
        else:
            ctx.variables[var] = previous


def eval_tuples(plan: TuplePlan, ctx: EvalContext) -> List[Tuple_]:
    metrics = ctx.metrics
    governor = ctx.governor
    trace = ctx.trace
    if metrics is None and governor is None and trace is None:
        return _eval_tuples(plan, ctx)
    if metrics is not None:
        metrics.operator_evals[type(plan).__name__] += 1
    span = trace.begin_span(type(plan).__name__) \
        if trace is not None else None
    try:
        if governor is None:
            result = _eval_tuples(plan, ctx)
        else:
            governor.tick()
            governor.enter()
            try:
                result = _eval_tuples(plan, ctx)
            finally:
                governor.leave()
            governor.note_output(len(result))
    except BaseException:
        if span is not None:
            trace.end_span(span, error=True)
        raise
    if span is not None:
        trace.end_span(span, rows=len(result))
        trace.record_op(id(plan), type(plan).__name__, span.duration,
                        len(result))
    if metrics is not None:
        metrics.tuples_produced += len(result)
    return result


def _eval_tuples(plan: TuplePlan, ctx: EvalContext) -> List[Tuple_]:
    if isinstance(plan, InputTuple):
        if not ctx.tuple_stack:
            raise DynamicError("IN used outside a dependent plan")
        return [ctx.tuple_stack[-1]]
    if isinstance(plan, MapFromItem):
        items = eval_item(plan.input, ctx)
        tuples: list[Tuple_] = []
        for index, item in enumerate(items, start=1):
            tuple_: Tuple_ = {plan.bind_field: [item]}
            if plan.index_field is not None:
                tuple_[plan.index_field] = [index]
            tuples.append(tuple_)
        return tuples
    if isinstance(plan, Select):
        kept: list[Tuple_] = []
        for tuple_ in eval_tuples(plan.input, ctx):
            ctx.tuple_stack.append(tuple_)
            try:
                verdict = effective_boolean_value(
                    eval_item(plan.predicate, ctx))
            finally:
                ctx.tuple_stack.pop()
            if verdict:
                kept.append(tuple_)
        return kept
    if isinstance(plan, TupleTreePattern):
        return _eval_ttp(plan, ctx)
    raise DynamicError(f"cannot evaluate {type(plan).__name__}")


def _eval_ttp(plan: TupleTreePattern, ctx: EvalContext) -> List[Tuple_]:
    if ctx.document is None:
        raise DynamicError("TupleTreePattern requires an indexed document")
    pattern: TreePattern = plan.pattern
    output: list[Tuple_] = []
    for tuple_ in eval_tuples(plan.input, ctx):
        contexts = _context_nodes(tuple_, ctx, pattern.input_field)
        try:
            bindings = chaos_point(
                "eval.ttp",
                ctx.strategy.evaluate(ctx.document, contexts, pattern))
        except (BudgetExceeded, DynamicError):
            raise
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as err:
            # Wrap so the engine can tell an algorithm failure (eligible
            # for strategy fallback) from a query error (propagated).
            name = getattr(ctx.strategy, "name", type(ctx.strategy).__name__)
            raise AlgorithmError(
                f"physical algorithm {name!r} failed: {err}",
                algorithm=name) from err
        for binding in bindings:
            extended: Tuple_ = dict(tuple_)
            for field_name, node in binding.items():
                extended[field_name] = [node]
            output.append(extended)
    return output


def _context_nodes(tuple_: Tuple_, ctx: EvalContext,
                   field_name: str) -> List[Node]:
    if field_name in tuple_:
        values = tuple_[field_name]
    else:
        values = ctx.lookup_field(field_name)
    nodes: list[Node] = []
    for value in values:
        if not isinstance(value, Node):
            raise DynamicError("tree pattern context is not a node")
        nodes.append(value)
    return nodes
