"""The tuple algebra, extended with ``TupleTreePattern`` (paper Section 4).

The algebra is two-sorted, following [28] (Re, Siméon & Fernández):

* *item plans* produce sequences of XDM items;
* *tuple plans* produce streams of tuples (finite maps from field names
  to item sequences).

Dependent sub-plans (written in curly braces in the paper's functional
notation) are evaluated once per tuple/item of the operator's input;
``IN`` denotes the current tuple (the :class:`InputTuple` leaf for
tuple-sorted positions, :class:`FieldAccess` for field reads).

The operator set:

=====================  ======  ====================================================
operator               sort    meaning
=====================  ======  ====================================================
``Const``              item    a constant sequence
``VarPlan``            item    a variable (external binding or ``LetPlan``)
``FieldAccess``        item    ``IN#f`` — read field ``f`` of the current tuple
``TreeJoin``           item    navigational step ``axis::test`` over an item plan
``DDOPlan``            item    ``fs:ddo`` — document order + duplicate removal
``MapToItem``          item    concatenate a dependent item plan over tuples
``FnCall``             item    built-in function call
``Compare``            item    general comparison (existential)
``Logical``            item    ``and`` / ``or`` over effective boolean values
``Arith``              item    arithmetic
``IfPlan``             item    conditional
``LetPlan``            item    local binding
``SeqPlan``            item    sequence construction
``TypeswitchPlan``     item    residual runtime type dispatch
``InputTuple``         tuple   ``IN`` — the current tuple, as a one-tuple stream
``MapFromItem``        tuple   build ``[field : IN]`` tuples from an item plan
``Select``             tuple   filter tuples by a dependent predicate
``TupleTreePattern``   tuple   the paper's tree-pattern operator
=====================  ======  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..pattern import TreePattern
from ..xmltree.axes import Axis
from ..xmltree.nodetest import NodeTest
from ..xqcore.cast import Var


class Plan:
    """Base class of all algebraic operators."""

    sort = "item"  # overridden to "tuple" by tuple operators

    def children(self) -> Sequence["Plan"]:
        raise NotImplementedError

    def replace_children(self, new_children: Sequence["Plan"]) -> "Plan":
        raise NotImplementedError


class ItemPlan(Plan):
    sort = "item"


class TuplePlan(Plan):
    sort = "tuple"


# -- item operators -----------------------------------------------------------


@dataclass
class Const(ItemPlan):
    """A constant item sequence."""

    values: Tuple[Union[str, int, float, bool], ...]

    def children(self) -> Sequence[Plan]:
        return ()

    def replace_children(self, new_children: Sequence[Plan]) -> "Const":
        return Const(self.values)


@dataclass
class VarPlan(ItemPlan):
    """A variable reference (external binding or ``LetPlan`` binding)."""

    var: Var

    def children(self) -> Sequence[Plan]:
        return ()

    def replace_children(self, new_children: Sequence[Plan]) -> "VarPlan":
        return VarPlan(self.var)


@dataclass
class FieldAccess(ItemPlan):
    """``IN#field`` — the field's item sequence in the current tuple."""

    field: str

    def children(self) -> Sequence[Plan]:
        return ()

    def replace_children(self, new_children: Sequence[Plan]) -> "FieldAccess":
        return FieldAccess(self.field)


@dataclass
class TreeJoin(ItemPlan):
    """Navigational step: apply ``axis::test`` to each input item."""

    axis: Axis
    test: NodeTest
    input: ItemPlan

    def children(self) -> Sequence[Plan]:
        return (self.input,)

    def replace_children(self, new_children: Sequence[Plan]) -> "TreeJoin":
        (input_plan,) = new_children
        return TreeJoin(self.axis, self.test, input_plan)


@dataclass
class DDOPlan(ItemPlan):
    """``fs:ddo`` over an item plan."""

    input: ItemPlan

    def children(self) -> Sequence[Plan]:
        return (self.input,)

    def replace_children(self, new_children: Sequence[Plan]) -> "DDOPlan":
        (input_plan,) = new_children
        return DDOPlan(input_plan)


@dataclass
class MapToItem(ItemPlan):
    """Evaluate ``dep`` per input tuple, concatenating the results."""

    dep: ItemPlan
    input: TuplePlan

    def children(self) -> Sequence[Plan]:
        return (self.dep, self.input)

    def replace_children(self, new_children: Sequence[Plan]) -> "MapToItem":
        dep, input_plan = new_children
        return MapToItem(dep, input_plan)


@dataclass
class FnCall(ItemPlan):
    name: str
    args: List[ItemPlan]

    def children(self) -> Sequence[Plan]:
        return self.args

    def replace_children(self, new_children: Sequence[Plan]) -> "FnCall":
        return FnCall(self.name, list(new_children))


@dataclass
class Compare(ItemPlan):
    op: str
    left: ItemPlan
    right: ItemPlan

    def children(self) -> Sequence[Plan]:
        return (self.left, self.right)

    def replace_children(self, new_children: Sequence[Plan]) -> "Compare":
        left, right = new_children
        return Compare(self.op, left, right)


@dataclass
class Logical(ItemPlan):
    op: str
    left: ItemPlan
    right: ItemPlan

    def children(self) -> Sequence[Plan]:
        return (self.left, self.right)

    def replace_children(self, new_children: Sequence[Plan]) -> "Logical":
        left, right = new_children
        return Logical(self.op, left, right)


@dataclass
class Arith(ItemPlan):
    op: str
    left: ItemPlan
    right: ItemPlan

    def children(self) -> Sequence[Plan]:
        return (self.left, self.right)

    def replace_children(self, new_children: Sequence[Plan]) -> "Arith":
        left, right = new_children
        return Arith(self.op, left, right)


@dataclass
class IfPlan(ItemPlan):
    condition: ItemPlan
    then_branch: ItemPlan
    else_branch: ItemPlan

    def children(self) -> Sequence[Plan]:
        return (self.condition, self.then_branch, self.else_branch)

    def replace_children(self, new_children: Sequence[Plan]) -> "IfPlan":
        condition, then_branch, else_branch = new_children
        return IfPlan(condition, then_branch, else_branch)


@dataclass
class LetPlan(ItemPlan):
    var: Var
    value: ItemPlan
    body: ItemPlan

    def children(self) -> Sequence[Plan]:
        return (self.value, self.body)

    def replace_children(self, new_children: Sequence[Plan]) -> "LetPlan":
        value, body = new_children
        return LetPlan(self.var, value, body)


@dataclass
class SeqPlan(ItemPlan):
    items: List[ItemPlan]

    def children(self) -> Sequence[Plan]:
        return self.items

    def replace_children(self, new_children: Sequence[Plan]) -> "SeqPlan":
        return SeqPlan(list(new_children))


@dataclass
class TypeswitchCase:
    seqtype: str
    var: Var
    body: ItemPlan


@dataclass
class TypeswitchPlan(ItemPlan):
    """Residual runtime type dispatch (rarely survives optimization)."""

    input: ItemPlan
    cases: List[TypeswitchCase]
    default_var: Var
    default_body: ItemPlan

    def children(self) -> Sequence[Plan]:
        parts: list[Plan] = [self.input]
        parts.extend(case.body for case in self.cases)
        parts.append(self.default_body)
        return parts

    def replace_children(self, new_children: Sequence[Plan]) -> "TypeswitchPlan":
        input_plan = new_children[0]
        bodies = new_children[1:-1]
        default_body = new_children[-1]
        cases = [TypeswitchCase(case.seqtype, case.var, body)
                 for case, body in zip(self.cases, bodies)]
        return TypeswitchPlan(input_plan, cases, self.default_var, default_body)


# -- tuple operators ----------------------------------------------------------


@dataclass
class InputTuple(TuplePlan):
    """``IN`` in tuple position: the current tuple as a one-tuple stream."""

    def children(self) -> Sequence[Plan]:
        return ()

    def replace_children(self, new_children: Sequence[Plan]) -> "InputTuple":
        return InputTuple()


@dataclass
class MapFromItem(TuplePlan):
    """``MapFromItem{[field : IN]}(input)`` — one tuple per input item.

    ``index_field``, when set, additionally binds the 1-based position of
    the item (used to compile ``for ... at $i``).
    """

    bind_field: str
    input: ItemPlan
    index_field: Optional[str] = None

    def children(self) -> Sequence[Plan]:
        return (self.input,)

    def replace_children(self, new_children: Sequence[Plan]) -> "MapFromItem":
        (input_plan,) = new_children
        return MapFromItem(self.bind_field, input_plan, self.index_field)


@dataclass
class Select(TuplePlan):
    """Keep the tuples whose dependent predicate has EBV true."""

    predicate: ItemPlan
    input: TuplePlan

    def children(self) -> Sequence[Plan]:
        return (self.predicate, self.input)

    def replace_children(self, new_children: Sequence[Plan]) -> "Select":
        predicate, input_plan = new_children
        return Select(predicate, input_plan)


@dataclass
class TupleTreePattern(TuplePlan):
    """The tree-pattern operator (paper Section 4.1).

    For each input tuple, evaluates the pattern against the context
    nodes held in the pattern's input field and emits one output tuple
    per match: the input tuple extended with the pattern's output
    fields.  With a single output field on the extraction point, the
    per-tuple result follows XPath semantics (document order, no
    duplicates); with several output fields, bindings come in
    root-to-leaf lexical order, consistent with TwigJoins.
    """

    pattern: TreePattern
    input: TuplePlan

    def children(self) -> Sequence[Plan]:
        return (self.input,)

    def replace_children(self, new_children: Sequence[Plan]) -> "TupleTreePattern":
        (input_plan,) = new_children
        return TupleTreePattern(self.pattern, input_plan)


def walk_plan(plan: Plan):
    """All operators of a plan, pre-order."""
    stack = [plan]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def count_operators(plan: Plan, kind: type | None = None) -> int:
    """Number of operators (optionally of one class) in a plan."""
    if kind is None:
        return sum(1 for _ in walk_plan(plan))
    return sum(1 for node in walk_plan(plan) if isinstance(node, kind))
