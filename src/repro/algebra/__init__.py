"""The tuple algebra: operators, compilation, optimization, evaluation."""

from .compile import CompilationError, compile_core
from .dot import pattern_to_dot, plan_to_dot
from .eval import EvalContext, eval_item, eval_tuples, evaluate_plan
from .ops import (Arith, Compare, Const, DDOPlan, FieldAccess, FnCall,
                  IfPlan, InputTuple, ItemPlan, LetPlan, Logical,
                  MapFromItem, MapToItem, Plan, Select, SeqPlan, TreeJoin,
                  TuplePlan, TupleTreePattern, TypeswitchCase,
                  TypeswitchPlan, VarPlan, count_operators, walk_plan)
from .optimizer import OptimizerOptions, optimize_plan
from .pretty import plan_canonical, plan_to_string
from .runtime import DynamicError, effective_boolean_value

__all__ = [
    "CompilationError", "compile_core",
    "pattern_to_dot", "plan_to_dot",
    "EvalContext", "eval_item", "eval_tuples", "evaluate_plan",
    "Arith", "Compare", "Const", "DDOPlan", "FieldAccess", "FnCall",
    "IfPlan", "InputTuple", "ItemPlan", "LetPlan", "Logical",
    "MapFromItem", "MapToItem", "Plan", "Select", "SeqPlan", "TreeJoin",
    "TuplePlan", "TupleTreePattern", "TypeswitchCase", "TypeswitchPlan",
    "VarPlan", "count_operators", "walk_plan",
    "OptimizerOptions", "optimize_plan",
    "plan_canonical", "plan_to_string",
    "DynamicError", "effective_boolean_value",
]
