"""Compilation of XQuery Core into the tuple algebra ([28]'s scheme).

The translation that produces the paper's plan P1 from Q1-tp:

* ``for $x (at $i)? in E (where C)? return B`` becomes::

      MapToItem{[B]}((Select{[C]})? (MapFromItem{[x : IN]}([E])))

  with ``$x`` (and ``$i``) turned into tuple fields accessed via
  ``IN#x``;
* steps become ``TreeJoin[axis::test]([input])``;
* ``ddo`` becomes ``fs:ddo(...)``;
* ``let`` stays an item-level binding (it plays no role in tree-pattern
  detection, which runs after the FLWOR rewritings have inlined the
  relevant ``let``s).

Field names are uniquified per compilation so that the runtime's
tuple-scope chain never sees shadowing.
"""

from __future__ import annotations

from typing import Dict, Set

from ..guard.errors import ReproError
from ..xqcore.cast import (CCall, CDDO, CEmpty, CExpr, CFor, CGenCmp, CIf,
                           CArith, CLet, CLit, CLogical, CSeq, CStep,
                           CTypeswitch, CVar, Var)
from .ops import (Arith, Compare, Const, DDOPlan, FieldAccess, FnCall,
                  IfPlan, ItemPlan, LetPlan, Logical, MapFromItem, MapToItem,
                  Select, SeqPlan, TreeJoin, TypeswitchCase, TypeswitchPlan,
                  VarPlan)


class CompilationError(ReproError):
    """Raised when a core expression cannot be compiled."""

    code = "REPRO-COMPILE"


def compile_core(expr: CExpr) -> ItemPlan:
    """Compile a core expression into an (unoptimized) item plan."""
    return _Compiler().compile(expr)


class _Compiler:
    def __init__(self) -> None:
        self._field_names: Dict[Var, str] = {}
        self._used_names: Set[str] = set()

    def _field(self, var: Var) -> str:
        if var not in self._field_names:
            base = var.name.replace(":", "_")
            name = base
            counter = 1
            while name in self._used_names:
                counter += 1
                name = f"{base}{counter}"
            self._used_names.add(name)
            self._field_names[var] = name
        return self._field_names[var]

    def compile(self, expr: CExpr) -> ItemPlan:
        if isinstance(expr, CLit):
            return Const((expr.value,))
        if isinstance(expr, CEmpty):
            return Const(())
        if isinstance(expr, CVar):
            if expr.var in self._field_names:
                return FieldAccess(self._field(expr.var))
            return VarPlan(expr.var)
        if isinstance(expr, CSeq):
            return SeqPlan([self.compile(item) for item in expr.items])
        if isinstance(expr, CDDO):
            return DDOPlan(self.compile(expr.arg))
        if isinstance(expr, CStep):
            return TreeJoin(expr.axis, expr.test, self.compile(expr.input))
        if isinstance(expr, CLet):
            value = self.compile(expr.value)
            body = self.compile(expr.body)
            return LetPlan(expr.var, value, body)
        if isinstance(expr, CFor):
            return self._compile_for(expr)
        if isinstance(expr, CIf):
            return IfPlan(self.compile(expr.condition),
                          self.compile(expr.then_branch),
                          self.compile(expr.else_branch))
        if isinstance(expr, CCall):
            return FnCall(expr.name, [self.compile(arg) for arg in expr.args])
        if isinstance(expr, CGenCmp):
            return Compare(expr.op, self.compile(expr.left),
                           self.compile(expr.right))
        if isinstance(expr, CLogical):
            return Logical(expr.op, self.compile(expr.left),
                           self.compile(expr.right))
        if isinstance(expr, CArith):
            return Arith(expr.op, self.compile(expr.left),
                         self.compile(expr.right))
        if isinstance(expr, CTypeswitch):
            cases = [TypeswitchCase(case.seqtype, case.var,
                                    self.compile(case.body))
                     for case in expr.cases]
            return TypeswitchPlan(self.compile(expr.input), cases,
                                  expr.default_var,
                                  self.compile(expr.default_body))
        raise CompilationError(f"cannot compile {type(expr).__name__}")

    def _compile_for(self, expr: CFor) -> ItemPlan:
        source = self.compile(expr.source)
        bind_field = self._field(expr.var)
        index_field = (self._field(expr.position_var)
                       if expr.position_var is not None else None)
        tuples = MapFromItem(bind_field, source, index_field)
        if expr.where is not None:
            tuples = Select(self.compile(expr.where), tuples)
        return MapToItem(self.compile(expr.body), tuples)
