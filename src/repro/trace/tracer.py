"""Structured, span-based tracing.

The paper's experimental argument (Section 5) is that no physical
algorithm dominates and the choice must be *measured*; this module is
the measurement substrate.  A :class:`Tracer` produces :class:`Trace`\\ s
— one per traced query or served request — each a bounded collection of
nested :class:`Span`\\ s:

* a span has a name, monotonic start/duration, a ``span_id``, its
  ``parent_id`` and typed attributes; parents strictly contain their
  children in time (same clock, closed inside-out);
* point-in-time happenings (governor clock checks, budget trips,
  chooser decisions, prune hits, fallbacks) attach to the *current*
  span as events;
* per-plan-operator wall time and cardinalities are additionally
  aggregated **exactly** into :attr:`Trace.op_stats` (keyed by the plan
  node's ``id``), so ``EXPLAIN ANALYZE`` never suffers from span-buffer
  truncation.

Overhead discipline mirrors :mod:`repro.obs`: a disabled tracer hands
out no traces at all, so every instrumentation site costs one
``is None`` check; an enabled one pays one clock read plus one object
append per span.  Span and event buffers are bounded
(:data:`MAX_SPANS`, :data:`MAX_EVENTS`) with drop counters, so a
pathological query cannot exhaust memory — and because spans are only
ever dropped once the buffer is full (a monotone condition), a stored
span can never reference a dropped parent.

``Trace`` objects are **single-threaded** (one per request/run, the
natural unit in :mod:`repro.serve`); the :class:`Tracer` itself is
thread-safe and additionally keeps cross-trace aggregates (span counts
and total seconds per span name) for the Prometheus exporter.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["MAX_EVENTS", "MAX_SPANS", "RatioSampler", "Span", "Trace",
           "TraceAggregates", "Tracer", "maybe_span"]

#: default cap on spans stored per trace (drops counted, never silent).
MAX_SPANS = 10_000

#: default cap on span events stored per trace.
MAX_EVENTS = 10_000


@dataclass
class Span:
    """One timed region of a trace."""

    name: str
    span_id: int
    parent_id: Optional[int]
    #: start timestamp on the tracer's clock (``time.perf_counter`` by
    #: default) — monotonic, comparable across spans of one process.
    start: float
    #: seconds from start to :meth:`Trace.end_span`; 0.0 while open.
    duration: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: point events inside this span: ``(offset_seconds, name, attrs)``.
    events: List[Tuple[float, str, Dict[str, Any]]] = \
        field(default_factory=list)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "span_id": self.span_id,
            "parent_id": self.parent_id, "start": self.start,
            "duration": self.duration, "attrs": dict(self.attrs),
            "events": [{"offset": offset, "name": name, **attrs}
                       for offset, name, attrs in self.events],
        }


@dataclass
class OpStat:
    """Exact per-plan-operator aggregate (never truncated)."""

    name: str
    calls: int = 0
    seconds: float = 0.0
    rows: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "calls": self.calls,
                "seconds": self.seconds, "rows": self.rows}


class Trace:
    """One trace: a root span plus everything nested under it.

    Not thread-safe — a trace belongs to the single thread executing
    the run it observes (the serve workers create one per request).
    """

    def __init__(self, name: str, trace_id: str, *,
                 clock: Callable[[], float] = time.perf_counter,
                 tracer: Optional["Tracer"] = None,
                 max_spans: int = MAX_SPANS,
                 max_events: int = MAX_EVENTS,
                 start_offset: float = 0.0,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.trace_id = trace_id
        self._clock = clock
        self._tracer = tracer
        self.max_spans = max_spans
        self.max_events = max_events
        self.spans: List[Span] = []
        self.dropped_spans = 0
        self.dropped_events = 0
        self._events_stored = 0
        self._next_id = 0
        self._stack: List[Span] = []
        #: exact per-plan-operator aggregates, keyed by ``id(plan_node)``.
        self.op_stats: Dict[int, OpStat] = {}
        self.finished = False
        root = self._make_span(name, parent_id=None,
                               start=clock() + start_offset)
        if attrs:
            root.attrs.update(attrs)
        self.root = root
        self._stack.append(root)

    # -- span lifecycle -----------------------------------------------------

    def _make_span(self, name: str, parent_id: Optional[int],
                   start: float) -> Span:
        span = Span(name=name, span_id=self._next_id, parent_id=parent_id,
                    start=start)
        self._next_id += 1
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped_spans += 1
        return span

    def begin_span(self, name: str, **attrs: Any) -> Span:
        """Open a span nested under the current one."""
        parent = self._stack[-1].span_id if self._stack else None
        span = self._make_span(name, parent_id=parent, start=self._clock())
        if attrs:
            span.attrs.update(attrs)
        self._stack.append(span)
        return span

    def end_span(self, span: Span, **attrs: Any) -> Span:
        """Close a span (and any forgotten children above it)."""
        now = self._clock()
        while self._stack:
            open_span = self._stack.pop()
            open_span.duration = now - open_span.start
            if open_span is span:
                break
        if attrs:
            span.attrs.update(attrs)
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        span = self.begin_span(name, **attrs)
        try:
            yield span
        finally:
            self.end_span(span)

    def add_span(self, name: str, start: float, duration: float,
                 **attrs: Any) -> Span:
        """Record an already-elapsed region (e.g. queue wait) as a
        completed child of the current span; ``start`` is on the
        tracer's clock."""
        parent = self._stack[-1].span_id if self._stack else None
        span = self._make_span(name, parent_id=parent, start=start)
        span.duration = duration
        if attrs:
            span.attrs.update(attrs)
        return span

    # -- events and attributes ----------------------------------------------

    @property
    def current(self) -> Span:
        return self._stack[-1] if self._stack else self.root

    def event(self, name: str, **attrs: Any) -> None:
        """Attach a point event to the current span."""
        if self._events_stored >= self.max_events:
            self.dropped_events += 1
            return
        span = self.current
        span.events.append((self._clock() - span.start, name, attrs))
        self._events_stored += 1

    def annotate(self, **attrs: Any) -> None:
        """Merge attributes into the current span."""
        self.current.attrs.update(attrs)

    # -- exact operator aggregation ------------------------------------------

    def record_op(self, op_id: int, name: str, seconds: float,
                  rows: int) -> None:
        stat = self.op_stats.get(op_id)
        if stat is None:
            stat = self.op_stats[op_id] = OpStat(name)
        stat.calls += 1
        stat.seconds += seconds
        stat.rows += rows

    # -- lifecycle -----------------------------------------------------------

    def finish(self, **attrs: Any) -> "Trace":
        """Close every open span (root included) and report the trace to
        its tracer's aggregates.  Idempotent."""
        if self.finished:
            return self
        self.end_span(self.root, **attrs)
        self.finished = True
        if self._tracer is not None:
            self._tracer._absorb(self)
        return self

    @property
    def duration(self) -> float:
        return self.root.duration

    @property
    def started(self) -> float:
        return self.root.start

    # -- views ---------------------------------------------------------------

    def span_children(self) -> Dict[Optional[int], List[Span]]:
        """Stored spans grouped by parent_id (for tree walks/tests)."""
        children: Dict[Optional[int], List[Span]] = {}
        for span in self.spans:
            children.setdefault(span.parent_id, []).append(span)
        return children

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id, "name": self.name,
            "duration": self.duration,
            "dropped_spans": self.dropped_spans,
            "dropped_events": self.dropped_events,
            "spans": [span.to_dict() for span in self.spans],
        }


class RatioSampler:
    """Deterministic head sampler: admits exactly ``ratio`` of traces.

    Uses an error accumulator rather than randomness, so a given ratio
    always samples the same positions in the request sequence —
    reproducible under test and still uniform over time.
    """

    def __init__(self, ratio: float) -> None:
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"sample ratio must be in [0, 1], got {ratio}")
        self.ratio = ratio
        self._credit = 0.0

    def sample(self) -> bool:
        self._credit += self.ratio
        if self._credit >= 1.0:
            self._credit -= 1.0
            return True
        return False


@dataclass
class TraceAggregates:
    """Cross-trace totals a :class:`Tracer` maintains (for Prometheus)."""

    traces_started: int = 0
    traces_finished: int = 0
    traces_sampled_out: int = 0
    spans_dropped: int = 0
    events_dropped: int = 0
    #: span name → [count, total seconds].
    span_totals: Dict[str, List[float]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "traces_started": self.traces_started,
            "traces_finished": self.traces_finished,
            "traces_sampled_out": self.traces_sampled_out,
            "spans_dropped": self.spans_dropped,
            "events_dropped": self.events_dropped,
            "span_totals": {name: {"count": int(count), "seconds": seconds}
                            for name, (count, seconds)
                            in sorted(self.span_totals.items())},
        }


class Tracer:
    """Hands out traces; disabled tracers hand out ``None``.

    ``sampler`` may be a float ratio (wrapped in :class:`RatioSampler`),
    any object with a ``sample() -> bool`` method, or ``None`` (trace
    everything).  ``clock`` is injectable for deterministic tests.
    Thread-safe: :meth:`begin` and the aggregate bookkeeping lock; the
    traces themselves are single-threaded by design.
    """

    def __init__(self, enabled: bool = True,
                 sampler: "Optional[RatioSampler | float]" = None,
                 clock: Callable[[], float] = time.perf_counter,
                 max_spans: int = MAX_SPANS,
                 max_events: int = MAX_EVENTS) -> None:
        self.enabled = enabled
        if isinstance(sampler, (int, float)) and not isinstance(sampler,
                                                                bool):
            sampler = RatioSampler(float(sampler))
        self.sampler = sampler
        self.clock = clock
        self.max_spans = max_spans
        self.max_events = max_events
        self.aggregates = TraceAggregates()
        self._lock = threading.Lock()
        self._sequence = 0

    def begin(self, name: str, *, start_offset: float = 0.0,
              **attrs: Any) -> Optional[Trace]:
        """Start a trace, or return ``None`` when disabled/sampled out
        (instrumentation sites then skip all work with one check)."""
        if not self.enabled:
            return None
        with self._lock:
            if self.sampler is not None and not self.sampler.sample():
                self.aggregates.traces_sampled_out += 1
                return None
            self._sequence += 1
            trace_id = f"{self._sequence:08x}"
            self.aggregates.traces_started += 1
        return Trace(name, trace_id, clock=self.clock, tracer=self,
                     max_spans=self.max_spans, max_events=self.max_events,
                     start_offset=start_offset, attrs=attrs or None)

    def _absorb(self, trace: Trace) -> None:
        """Fold a finished trace into the aggregates."""
        with self._lock:
            agg = self.aggregates
            agg.traces_finished += 1
            agg.spans_dropped += trace.dropped_spans
            agg.events_dropped += trace.dropped_events
            for span in trace.spans:
                totals = agg.span_totals.get(span.name)
                if totals is None:
                    totals = agg.span_totals[span.name] = [0, 0.0]
                totals[0] += 1
                totals[1] += span.duration


class _NullContext:
    """A reusable no-op context manager (spans when tracing is off)."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_CONTEXT = _NullContext()


def maybe_span(trace: Optional[Trace], name: str, **attrs: Any):
    """``trace.span(...)`` when tracing, a shared no-op otherwise —
    lets call sites use one ``with`` regardless of tracing state."""
    if trace is None:
        return _NULL_CONTEXT
    return trace.span(name, **attrs)
