"""EXPLAIN ANALYZE: the optimized plan annotated with measured reality.

:class:`ExplainAnalysis` pairs a compiled query with the trace of one
actual execution and renders the operator tree with per-operator wall
time, call counts and output cardinalities (from the trace's exact
``op_stats`` aggregation, so buffer truncation never loses a node),
plus pipeline stage timings and the prune/decision/fallback events the
run emitted.  ``Engine.explain(analyze=True)`` builds one; the CLI
surfaces it as ``repro explain --analyze`` and, via
:meth:`ExplainAnalysis.to_dot`, as an annotated Graphviz plan graph
(``--dot out.dot``).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from ..algebra.dot import describe_plan, plan_to_dot
from .tracer import OpStat, Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import ExecMetrics

__all__ = ["ExplainAnalysis", "format_seconds"]

#: engine pipeline stage names, in pipeline order (mirrors Engine).
_STAGES = ("parse", "normalize", "rewrite", "compile", "optimize",
           "summary")

_LABEL_WIDTH = 46


def format_seconds(seconds: float) -> str:
    """Adaptive µs/ms/s rendering (traces span six orders of magnitude)."""
    if seconds < 0.001:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds:.3f}s"


class ExplainAnalysis:
    """One executed query, annotated: plan tree × measured trace."""

    def __init__(self, query: str, compiled: Any, trace: Trace,
                 strategy: str, results: List[Any],
                 metrics: "Optional[ExecMetrics]" = None) -> None:
        self.query = query
        self.compiled = compiled
        self.trace = trace
        self.strategy = strategy
        self.results = results
        self.metrics = metrics

    # -- derived views -------------------------------------------------------

    @property
    def op_stats(self) -> Dict[int, OpStat]:
        """Exact per-plan-operator aggregates, keyed by ``id(node)``."""
        return self.trace.op_stats

    def stage_seconds(self) -> Dict[str, float]:
        """Pipeline stage name → seconds, from the compile spans."""
        stages: Dict[str, float] = {}
        wanted = set(_STAGES)
        for span in self.trace.spans:
            if span.name in wanted and span.name not in stages:
                stages[span.name] = span.duration
        return stages

    def event_counts(self) -> Counter:
        """Point-event name → occurrences across the whole trace."""
        counts: Counter = Counter()
        for span in self.trace.spans:
            for _offset, name, _attrs in span.events:
                counts[name] += 1
        return counts

    def execute_seconds(self) -> float:
        for span in self.trace.spans:
            if span.name == "execute":
                return span.duration
        return 0.0

    # -- rendering -----------------------------------------------------------

    def _annotation(self, node: Any) -> str:
        stat = self.op_stats.get(id(node))
        if stat is None:
            return "(not executed)"
        calls = f"{stat.calls}x " if stat.calls != 1 else ""
        return (f"{calls}{format_seconds(stat.seconds)} "
                f"-> {stat.rows} rows")

    def render(self) -> str:
        """The full EXPLAIN ANALYZE report as plain text."""
        lines = [
            f"EXPLAIN ANALYZE  {self.query}",
            f"strategy={self.strategy}  items={len(self.results)}  "
            f"total={format_seconds(self.trace.duration)}  "
            f"execute={format_seconds(self.execute_seconds())}",
        ]
        stages = self.stage_seconds()
        if stages:
            rendered = "  ".join(
                f"{name}={format_seconds(stages[name])}"
                for name in _STAGES if name in stages)
            lines.append(f"stages: {rendered}")
        lines.append("")
        self._render_node(self.compiled.optimized, 0, "", lines)
        events = self.event_counts()
        if events:
            rendered = "  ".join(f"{name}={count}" for name, count
                                 in sorted(events.items()))
            lines.append("")
            lines.append(f"events: {rendered}")
        if self.metrics is not None and self.metrics.fallbacks:
            for event in self.metrics.fallbacks:
                lines.append(f"fallback: {event.from_strategy} -> "
                             f"{event.to_strategy} ({event.error_code})")
        if self.trace.dropped_spans or self.trace.dropped_events:
            lines.append(f"note: trace buffers dropped "
                         f"{self.trace.dropped_spans} spans, "
                         f"{self.trace.dropped_events} events "
                         f"(op stats remain exact)")
        return "\n".join(lines)

    def _render_node(self, node: Any, depth: int, role: str,
                     lines: List[str]) -> None:
        label, dependents, inputs = describe_plan(node)
        label = label.replace("\\n", " ")
        if role:
            label = f"{role}: {label}"
        text = "  " * depth + label
        padding = max(_LABEL_WIDTH - len(text), 2)
        lines.append(f"{text}{' ' * padding}{self._annotation(node)}")
        for dependent in dependents:
            self._render_node(dependent, depth + 1, "dep", lines)
        for input_plan in inputs:
            self._render_node(input_plan, depth + 1, "", lines)

    def dot_annotations(self) -> Dict[int, str]:
        """``id(node)`` → annotation line for :func:`plan_to_dot`."""
        return {op_id: (f"{stat.calls}x {format_seconds(stat.seconds)} "
                        f"-> {stat.rows} rows")
                for op_id, stat in self.op_stats.items()}

    def to_dot(self, name: Optional[str] = None) -> str:
        """The optimized plan as DOT, annotated with time/cardinality."""
        return plan_to_dot(self.compiled.optimized,
                           name=name or self.query,
                           annotations=self.dot_annotations())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "query": self.query, "strategy": self.strategy,
            "items": len(self.results),
            "total_seconds": self.trace.duration,
            "execute_seconds": self.execute_seconds(),
            "stages": self.stage_seconds(),
            "operators": [stat.to_dict()
                          for stat in self.op_stats.values()],
            "events": dict(self.event_counts()),
            "trace": self.trace.to_dict(),
        }
