"""Distributed tracing: context propagation and cross-process stitching.

The cluster coordinator (:mod:`repro.serve.cluster`) and its worker
processes (:mod:`repro.serve.worker`) each run their own
:class:`~repro.trace.Tracer` on their own ``time.perf_counter`` — two
monotonic clocks with **unrelated origins** (and, under NTP slew or CPU
frequency drift, slightly different rates).  Absolute worker timestamps
are therefore meaningless on the coordinator.  This module defines the
rules that keep a stitched cross-process trace honest anyway:

* **only relative quantities cross the wire** — a worker exports each
  span as ``(offset from the worker trace's root, duration)``, both
  measured on the worker's own clock (:func:`pack_trace`);
* **the coordinator supplies the anchor** — :func:`graft_remote`
  re-bases every remote span onto a coordinator-clock instant the
  coordinator itself measured (task dispatch), so a stitched span's
  absolute position is always coordinator-derived and never the
  difference of two unrelated clocks;
* **offsets are clamped non-negative** — a corrupted or adversarial
  payload cannot produce a child that starts before its parent, so the
  no-negative-gap invariant survives arbitrary clock skew.

:class:`TraceContext` is the propagation envelope: the coordinator's
trace id, the span the remote work should nest under, and the sampling
decision (context is only sent for sampled requests, so an unsampled
request costs the workers nothing).

Grafted spans respect the destination trace's ``max_spans`` bound and
its monotone no-dropped-parent invariant: payload spans arrive in
creation order (parents first), and a child whose parent was dropped —
on the worker or during the graft — is dropped too, counted in
``Trace.dropped_spans``.

See ``docs/OBSPLANE.md`` for the full telemetry-plane architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .tracer import OpStat, Span, Trace

__all__ = ["TraceContext", "graft_remote", "pack_trace"]

#: wire-format version stamped into every packed payload; a worker and
#: coordinator from different builds fail loudly instead of stitching
#: garbage.
WIRE_VERSION = 1


@dataclass(frozen=True)
class TraceContext:
    """The trace envelope a coordinator sends alongside a task.

    ``trace_id`` names the coordinator's root trace, ``parent_span_id``
    the span the remote execution will be stitched under.  Presence of
    a context *is* the sampling decision: coordinators only attach one
    to sampled requests, so unsampled requests never pay for remote
    span capture.
    """

    trace_id: str
    parent_span_id: int

    def to_wire(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id,
                "parent_span_id": self.parent_span_id}

    @classmethod
    def from_wire(cls, data: Optional[Dict[str, Any]]
                  ) -> Optional["TraceContext"]:
        """Parse a wire dict; ``None`` (or a malformed dict) means the
        request is unsampled and the worker should not trace."""
        if not isinstance(data, dict):
            return None
        trace_id = data.get("trace_id")
        parent = data.get("parent_span_id")
        if not isinstance(trace_id, str) or not isinstance(parent, int):
            return None
        return cls(trace_id=trace_id, parent_span_id=parent)


def pack_trace(trace: Trace) -> Dict[str, Any]:
    """Export a finished worker trace as a wire payload.

    Every timestamp in the payload is **relative**: span starts become
    offsets from the worker trace's root start, and only durations and
    offsets — both worker-measured — are included.  The payload also
    carries the exact ``op_stats`` aggregation (re-keyed positionally;
    worker-side ``id()`` keys are meaningless across processes) and the
    worker's drop counters, so coordinator-side accounting stays
    truthful about truncation.
    """
    origin = trace.root.start
    spans: List[Dict[str, Any]] = []
    for span in trace.spans:
        spans.append({
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "offset": max(span.start - origin, 0.0),
            "duration": max(span.duration, 0.0),
            "attrs": dict(span.attrs),
            "events": [(offset, name, dict(attrs))
                       for offset, name, attrs in span.events],
        })
    return {
        "version": WIRE_VERSION,
        "duration": max(trace.duration, 0.0),
        "dropped_spans": trace.dropped_spans,
        "dropped_events": trace.dropped_events,
        "spans": spans,
        "op_stats": [stat.to_dict() for stat in trace.op_stats.values()],
    }


def graft_remote(trace: Trace, payload: Dict[str, Any], *,
                 anchor: float, parent_id: int,
                 attrs: Optional[Dict[str, Any]] = None) -> int:
    """Stitch a packed worker trace into ``trace`` under ``parent_id``.

    ``anchor`` is the coordinator-clock instant the remote root is
    placed at — callers pass a coordinator-side measurement (the task's
    dispatch time on the trace's own clock).  Every remote span lands at
    ``anchor + offset`` with its worker-measured duration, remote span
    ids are re-allocated in the destination trace's id space, and
    ``attrs`` (worker index, shard, …) are merged into each grafted
    top-level span.  Returns the number of spans stored.

    Bounded like native spans: once ``trace.max_spans`` is reached,
    further remote spans are dropped and counted, and a span whose
    parent was dropped (remotely or here) is dropped too, preserving
    the no-dropped-parent invariant.
    """
    if payload.get("version") != WIRE_VERSION:
        raise ValueError(
            f"remote trace payload version "
            f"{payload.get('version')!r} != {WIRE_VERSION}; "
            f"coordinator and worker builds disagree")
    id_map: Dict[int, int] = {}
    stored = 0
    for record in payload.get("spans", ()):
        remote_parent = record.get("parent_id")
        if remote_parent is None:
            new_parent: Optional[int] = parent_id
        else:
            mapped = id_map.get(remote_parent)
            if mapped is None:
                # The parent was dropped (worker buffer cap or our own):
                # storing this child would violate the no-dropped-parent
                # invariant, so it is dropped and counted too.
                trace.dropped_spans += 1
                continue
            new_parent = mapped
        new_id = trace._next_id
        trace._next_id += 1
        if len(trace.spans) >= trace.max_spans:
            trace.dropped_spans += 1
            continue
        span = Span(name=record["name"], span_id=new_id,
                    parent_id=new_parent,
                    start=anchor + max(record.get("offset", 0.0), 0.0),
                    duration=max(record.get("duration", 0.0), 0.0))
        span.attrs.update(record.get("attrs", ()))
        if attrs and remote_parent is None:
            span.attrs.update(attrs)
        for offset, name, event_attrs in record.get("events", ()):
            span.events.append((offset, name, dict(event_attrs)))
        trace.spans.append(span)
        id_map[record["span_id"]] = new_id
        stored += 1
    trace.dropped_spans += payload.get("dropped_spans", 0)
    trace.dropped_events += payload.get("dropped_events", 0)
    _merge_remote_op_stats(trace, payload.get("op_stats", ()))
    return stored


def _merge_remote_op_stats(trace: Trace,
                           stats: Tuple[Dict[str, Any], ...]) -> None:
    """Fold remote per-operator aggregates into ``trace.op_stats``.

    Local op stats are keyed by ``id(plan_node)`` — always positive
    CPython addresses — so remote aggregates use **negative synthetic
    keys**, one per operator name, merged across shards and workers.
    ``EXPLAIN``-style consumers keyed on local plan ids never collide
    with them, while name-based rollups see both.
    """
    by_name: Dict[str, int] = {
        stat.name: key for key, stat in trace.op_stats.items() if key < 0}
    for record in stats:
        name = record.get("name", "?")
        key = by_name.get(name)
        if key is None:
            key = -(len(by_name) + 1)
            while key in trace.op_stats:  # pragma: no cover - defensive
                key -= 1
            by_name[name] = key
            trace.op_stats[key] = OpStat(name)
        stat = trace.op_stats[key]
        stat.calls += record.get("calls", 0)
        stat.seconds += record.get("seconds", 0.0)
        stat.rows += record.get("rows", 0)
