"""The serve-side flight recorder: the traces you wish you had kept.

Production incident triage needs the *interesting* requests, not all of
them: :class:`FlightRecorder` keeps two bounded views of finished
request traces — a ring of the K most **recent** and a heap of the K
**slowest** — in constant memory however long the service runs.
:meth:`FlightRecorder.snapshot` returns an immutable
:class:`FlightSnapshot` (and ``QueryService.flight_recorder()`` exposes
it), which the exporters in :mod:`repro.trace.export` turn into Chrome
trace files (``python -m repro serve-bench --flight-out``).
"""

from __future__ import annotations

import heapq
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from .tracer import Trace

__all__ = ["FlightEntry", "FlightRecorder", "FlightSnapshot"]

#: default ring capacity for the most recent traces.
DEFAULT_RECENT = 32

#: default capacity for the slowest traces.
DEFAULT_SLOWEST = 8


@dataclass(frozen=True)
class FlightEntry:
    """One recorded request trace with its ranking latency."""

    trace: Trace
    latency: float
    sequence: int

    def to_dict(self) -> Dict[str, Any]:
        return {"latency": self.latency, "sequence": self.sequence,
                "trace": self.trace.to_dict()}


@dataclass(frozen=True)
class FlightSnapshot:
    """An immutable view of the recorder at one instant."""

    #: total traces ever recorded (beyond what is retained).
    recorded: int
    #: the most recent entries, oldest first.
    recent: Tuple[FlightEntry, ...]
    #: the slowest entries, slowest first.
    slowest: Tuple[FlightEntry, ...]

    def traces(self) -> List[Trace]:
        """Slowest + recent traces, deduplicated by trace_id (slowest
        first) — the natural input for the Chrome exporter."""
        seen: set = set()
        unique: List[Trace] = []
        for entry in (*self.slowest, *self.recent):
            if entry.trace.trace_id in seen:
                continue
            seen.add(entry.trace.trace_id)
            unique.append(entry.trace)
        return unique

    def to_dict(self) -> Dict[str, Any]:
        return {
            "recorded": self.recorded,
            "recent": [entry.to_dict() for entry in self.recent],
            "slowest": [entry.to_dict() for entry in self.slowest],
        }


class FlightRecorder:
    """Bounded retention of request traces (thread-safe).

    ``recent`` bounds the ring of latest traces; ``slowest`` bounds the
    kept-slowest set, maintained as a min-heap so each record is
    O(log K).  Ties in latency resolve to the earlier request.
    """

    def __init__(self, recent: int = DEFAULT_RECENT,
                 slowest: int = DEFAULT_SLOWEST) -> None:
        if recent < 1:
            raise ValueError("recent must be >= 1")
        if slowest < 0:
            raise ValueError("slowest must be >= 0")
        self.recent_capacity = recent
        self.slowest_capacity = slowest
        self._recent: Deque[FlightEntry] = deque(maxlen=recent)
        self._slowest: List[Tuple[float, int, FlightEntry]] = []
        self._recorded = 0
        self._lock = threading.Lock()

    def record(self, trace: Trace,
               latency: Optional[float] = None) -> None:
        """Retain a finished trace, ranked by ``latency`` (the request's
        end-to-end seconds; defaults to the trace's own duration)."""
        if latency is None:
            latency = trace.duration
        with self._lock:
            self._recorded += 1
            entry = FlightEntry(trace=trace, latency=latency,
                                sequence=self._recorded)
            self._recent.append(entry)
            if self.slowest_capacity:
                # Min-heap of the K slowest: negate the sequence so that
                # among equal latencies the *older* request survives.
                item = (latency, -entry.sequence, entry)
                if len(self._slowest) < self.slowest_capacity:
                    heapq.heappush(self._slowest, item)
                elif item > self._slowest[0]:
                    heapq.heapreplace(self._slowest, item)

    def snapshot(self) -> FlightSnapshot:
        with self._lock:
            slowest = tuple(entry for _, _, entry in
                            sorted(self._slowest,
                                   key=lambda item: (-item[0], -item[1])))
            return FlightSnapshot(recorded=self._recorded,
                                  recent=tuple(self._recent),
                                  slowest=slowest)

    def __len__(self) -> int:
        with self._lock:
            return len(self._recent)
