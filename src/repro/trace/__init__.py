"""Span-based tracing: measurement substrate for the whole engine.

The paper's Section 5 message — no physical algorithm dominates, so
measure before you choose — needs more than the counters in
:mod:`repro.obs`: it needs wall time attributed to individual plan
operators and individual served requests.  This package provides:

* :class:`Tracer` / :class:`Trace` / :class:`Span` — nested spans with
  monotonic timing, typed attributes, point events, bounded buffers and
  a deterministic :class:`RatioSampler` (:mod:`repro.trace.tracer`);
* :class:`ExplainAnalysis` — EXPLAIN ANALYZE rendering of a plan tree
  annotated with measured per-operator time and cardinalities
  (:mod:`repro.trace.analyze`);
* exporters — Chrome ``chrome://tracing`` JSON, Prometheus text format,
  JSONL span logs, each with a validator (:mod:`repro.trace.export`);
* :class:`FlightRecorder` — bounded retention of the slowest and most
  recent request traces for the serve layer
  (:mod:`repro.trace.recorder`).

See docs/TRACING.md for the span model and format references.
"""

from .analyze import ExplainAnalysis, format_seconds
from .distrib import TraceContext, graft_remote, pack_trace
from .export import (chrome_trace, prometheus_text, spans_jsonl,
                     validate_chrome_trace, validate_prometheus,
                     write_chrome_trace, write_prometheus,
                     write_spans_jsonl)
from .recorder import FlightEntry, FlightRecorder, FlightSnapshot
from .tracer import (MAX_EVENTS, MAX_SPANS, OpStat, RatioSampler, Span,
                     Trace, TraceAggregates, Tracer, maybe_span)

__all__ = [
    "ExplainAnalysis", "FlightEntry", "FlightRecorder", "FlightSnapshot",
    "MAX_EVENTS", "MAX_SPANS", "OpStat", "RatioSampler", "Span", "Trace",
    "TraceAggregates", "TraceContext", "Tracer", "chrome_trace",
    "format_seconds", "graft_remote", "maybe_span", "pack_trace",
    "prometheus_text", "spans_jsonl", "validate_chrome_trace",
    "validate_prometheus", "write_chrome_trace", "write_prometheus",
    "write_spans_jsonl",
]
