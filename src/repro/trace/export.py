"""Trace exporters: Chrome ``chrome://tracing`` JSON, Prometheus text,
and a JSONL span log.

Three consumers, three formats:

* :func:`chrome_trace` renders traces as Chrome trace-event JSON
  (``chrome://tracing`` / Perfetto): one ``pid`` for the process, one
  ``tid`` per trace, complete (``ph: "X"``) events for spans and
  instant (``ph: "i"``) events for span events, timestamps in
  microseconds relative to the earliest span.
* :func:`prometheus_text` dumps service counters/histograms plus tracer
  aggregates in the Prometheus text exposition format, ready for a
  textfile collector or a scrape-on-demand endpoint.
* :func:`spans_jsonl` emits one JSON object per span — the grep-able
  archive format.

Each format has a ``validate_*`` twin used by the CI ``trace-smoke``
job so a malformed export fails loudly, and a ``write_*`` helper.

This module deliberately does **not** import :mod:`repro.serve`:
:func:`prometheus_text` duck-types its ``metrics`` argument (anything
with ``stats()`` and ``snapshot_histograms()``), which keeps
``repro.trace`` importable on its own and free of cycles.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from .tracer import Trace, Tracer

__all__ = [
    "chrome_trace", "prometheus_text", "spans_jsonl",
    "validate_chrome_trace", "validate_prometheus",
    "write_chrome_trace", "write_prometheus", "write_spans_jsonl",
]

_Traces = Union[Trace, Iterable[Trace]]


def _as_traces(traces: _Traces) -> List[Trace]:
    if isinstance(traces, Trace):
        return [traces]
    return list(traces)


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------

def chrome_trace(traces: _Traces, *, pid: int = 1) -> Dict[str, Any]:
    """Render traces as a Chrome trace-event JSON object.

    Open the result in ``chrome://tracing`` or https://ui.perfetto.dev.
    Each trace becomes its own thread row (``tid``), named after the
    trace; timestamps are microseconds from the earliest span start
    across all traces, so rows line up on a shared timeline.
    """
    traces = _as_traces(traces)
    events: List[Dict[str, Any]] = []
    origin = min((trace.started for trace in traces), default=0.0)

    def micros(seconds: float) -> float:
        return round((seconds - origin) * 1e6, 3)

    events.append({"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                   "args": {"name": "repro"}})
    for tid, trace in enumerate(traces, start=1):
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": f"{trace.name} [{trace.trace_id}]"},
        })
        for span in trace.spans:
            args: Dict[str, Any] = {
                "trace_id": trace.trace_id, "span_id": span.span_id,
            }
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            args.update(span.attrs)
            events.append({
                "name": span.name, "ph": "X", "cat": "repro",
                "ts": micros(span.start),
                "dur": round(span.duration * 1e6, 3),
                "pid": pid, "tid": tid, "args": args,
            })
            for offset, name, attrs in span.events:
                events.append({
                    "name": name, "ph": "i", "cat": "repro", "s": "t",
                    "ts": micros(span.start + offset),
                    "pid": pid, "tid": tid,
                    "args": dict(attrs, span_id=span.span_id),
                })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(data: Any) -> None:
    """Raise ``ValueError`` unless ``data`` is a well-formed Chrome
    trace: required keys present, and complete events properly nested
    within their parent spans on each thread."""
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError("chrome trace must be an object with traceEvents")
    events = data["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    spans_by_id: Dict[Any, Dict[str, Any]] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event {index} missing key {key!r}")
        if event["ph"] in ("X", "i") and "ts" not in event:
            raise ValueError(f"event {index} missing key 'ts'")
        if event["ph"] == "X":
            if "dur" not in event:
                raise ValueError(f"event {index} (ph=X) missing 'dur'")
            args = event.get("args", {})
            key = (event["tid"], args.get("trace_id"), args.get("span_id"))
            spans_by_id[key] = event
    # Nesting: every child's [ts, ts+dur] must lie inside its parent's.
    for key, event in spans_by_id.items():
        parent_id = event.get("args", {}).get("parent_id")
        if parent_id is None:
            continue
        parent = spans_by_id.get((key[0], key[1], parent_id))
        if parent is None:
            raise ValueError(
                f"span {key} references missing parent {parent_id}")
        if (event["ts"] < parent["ts"] - 1e-3
                or event["ts"] + event["dur"]
                > parent["ts"] + parent["dur"] + 1e-3):
            raise ValueError(
                f"span {key} ({event['name']}) not nested inside its "
                f"parent {parent['name']}")


def write_chrome_trace(path: str, traces: _Traces) -> Dict[str, Any]:
    data = chrome_trace(traces)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=1)
        handle.write("\n")
    return data


# ---------------------------------------------------------------------------
# Prometheus text exposition format
# ---------------------------------------------------------------------------

def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _PromWriter:
    """Accumulates exposition lines with a **family registry**: the
    first declaration of a metric family emits its ``HELP``/``TYPE``
    pair; later contributions to the same family (merged registries —
    service + cluster + per-worker series) append samples only.  A
    re-declaration with a *different* kind is a programming error and
    raises, instead of emitting the conflicting exposition Prometheus
    would reject."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._families: Dict[str, str] = {}

    def _declare(self, name: str, kind: str, help_text: str) -> None:
        known = self._families.get(name)
        if known is not None:
            if known != kind:
                raise ValueError(
                    f"metric family {name!r} declared as both "
                    f"{known!r} and {kind!r}")
            return
        self._families[name] = kind
        self.lines.append(f"# HELP {name} {_escape_help(help_text)}")
        self.lines.append(f"# TYPE {name} {kind}")

    def metric(self, name: str, kind: str, help_text: str,
               samples: "Iterable[tuple]") -> None:
        self._declare(name, kind, help_text)
        for labels, value in samples:
            label_text = ""
            if labels:
                rendered = ",".join(
                    f'{key}="{_escape_label(text)}"'
                    for key, text in labels.items())
                label_text = "{" + rendered + "}"
            self.lines.append(f"{name}{label_text} {_format_value(value)}")

    def histogram(self, name: str, help_text: str, histogram,
                  labels: Optional[Dict[str, str]] = None) -> None:
        """Emit a LatencyHistogram-shaped object (``BOUNDS``, ``counts``,
        ``count``, ``total``) as a Prometheus cumulative histogram.
        ``labels`` are added to every sample; additional labelled series
        for an already-declared family simply append samples."""
        self._declare(name, "histogram", help_text)

        def render(extra: Dict[str, str]) -> str:
            merged = dict(labels or {})
            merged.update(extra)
            if not merged:
                return ""
            return "{" + ",".join(
                f'{key}="{_escape_label(str(text))}"'
                for key, text in merged.items()) + "}"

        cumulative = 0
        for bound, bucket in zip(histogram.BOUNDS, histogram.counts):
            cumulative += bucket
            self.lines.append(
                f"{name}_bucket"
                f"{render({'le': _format_value(bound)})} {cumulative}")
        self.lines.append(
            f"{name}_bucket{render({'le': '+Inf'})} {histogram.count}")
        self.lines.append(
            f"{name}_sum{render({})} {_format_value(histogram.total)}")
        self.lines.append(f"{name}_count{render({})} {histogram.count}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _escape_help(value: str) -> str:
    # HELP escaping per the exposition format: backslash and newline
    # only (quotes are legal in help text).
    return str(value).replace("\\", r"\\").replace("\n", r"\n")


def prometheus_text(metrics: Optional[Any] = None,
                    tracer: Optional[Tracer] = None,
                    cluster: Optional[Any] = None) -> str:
    """Service metrics + tracer aggregates as Prometheus text format.

    ``metrics`` is duck-typed (avoids importing :mod:`repro.serve`):
    anything with ``stats() -> ServiceStats``-like and
    ``snapshot_histograms() -> (latency, queue_wait)`` works —
    :class:`repro.serve.ServiceMetrics` provides both.  ``cluster`` is
    likewise duck-typed over :class:`repro.serve.ClusterStats` (from
    ``ClusterService.cluster_stats()``) and adds the per-worker and
    per-shard ``repro_cluster_*`` series.
    """
    writer = _PromWriter()
    if metrics is not None:
        stats = metrics.stats()
        for field_name, help_text in (
                ("submitted", "Requests submitted to the service."),
                ("accepted", "Requests admitted to the queue."),
                ("completed", "Requests completed successfully."),
                ("failed", "Requests that failed."),
                ("shed", "Requests shed at admission (queue full)."),
                ("coalesced", "Requests coalesced onto an in-flight "
                              "duplicate."),
                ("deadline_expired", "Requests whose deadline lapsed.")):
            writer.metric(f"repro_requests_{field_name}_total", "counter",
                          help_text,
                          [(None, getattr(stats, field_name))])
        writer.metric("repro_queue_depth", "gauge",
                      "Requests waiting in the admission queue.",
                      [(None, stats.queue_depth)])
        writer.metric("repro_in_flight", "gauge",
                      "Requests currently executing.",
                      [(None, stats.in_flight)])
        writer.metric("repro_uptime_seconds", "gauge",
                      "Seconds since the service metrics started.",
                      [(None, stats.uptime_seconds)])
        latency, queue_wait = metrics.snapshot_histograms()
        writer.histogram("repro_request_latency_seconds",
                         "End-to-end request latency (queue included).",
                         latency)
        writer.histogram("repro_queue_wait_seconds",
                         "Time spent waiting in the admission queue.",
                         queue_wait)
    if tracer is not None:
        agg = tracer.aggregates
        for field_name, help_text in (
                ("traces_started", "Traces begun by the tracer."),
                ("traces_finished", "Traces finished and absorbed."),
                ("traces_sampled_out", "Trace requests skipped by the "
                                       "sampler."),
                ("spans_dropped", "Spans dropped by per-trace buffer "
                                  "caps."),
                ("events_dropped", "Span events dropped by per-trace "
                                   "buffer caps.")):
            writer.metric(f"repro_{field_name}_total", "counter", help_text,
                          [(None, getattr(agg, field_name))])
        span_totals = sorted(agg.span_totals.items())
        writer.metric("repro_span_count_total", "counter",
                      "Spans recorded, by span name.",
                      [({"span": name}, count)
                       for name, (count, _seconds) in span_totals])
        writer.metric("repro_span_seconds_total", "counter",
                      "Total seconds spent in spans, by span name.",
                      [({"span": name}, seconds)
                       for name, (_count, seconds) in span_totals])
    if cluster is not None:
        for field_name, help_text in (
                ("dispatched", "Shard tasks dispatched, by worker."),
                ("completed", "Shard tasks completed, by worker."),
                ("failed", "Shard tasks failed, by worker.")):
            writer.metric(
                f"repro_cluster_tasks_{field_name}_total", "counter",
                help_text,
                [({"worker": str(worker.index)},
                  getattr(worker, field_name))
                 for worker in cluster.workers])
        writer.metric("repro_cluster_worker_up", "gauge",
                      "1 when the worker process is alive.",
                      [({"worker": str(worker.index)},
                        1 if worker.alive else 0)
                       for worker in cluster.workers])
        writer.metric("repro_cluster_worker_queue_depth", "gauge",
                      "Tasks in flight on the worker.",
                      [({"worker": str(worker.index)}, worker.queue_depth)
                       for worker in cluster.workers])
        writer.metric("repro_cluster_worker_busy_seconds_total", "counter",
                      "Cumulative worker-self-measured task execution "
                      "seconds.",
                      [({"worker": str(worker.index)},
                        getattr(worker, "busy_seconds", 0.0))
                       for worker in cluster.workers])
        writer.metric("repro_cluster_respawns_total", "counter",
                      "Dead workers replaced by the coordinator.",
                      [(None, cluster.respawns)])
        writer.metric("repro_cluster_partial_responses_total", "counter",
                      "Scatter answers merged from a strict subset of "
                      "shards.",
                      [(None, cluster.partials)])
        writer.metric("repro_cluster_requests_total", "counter",
                      "Requests by execution mode.",
                      [({"mode": "scattered"}, cluster.scattered),
                       ({"mode": "whole_document"},
                        cluster.whole_document)])
        for key in sorted(cluster.shard_latency):
            document, _, shard = key.rpartition("/")
            writer.histogram(
                "repro_cluster_shard_latency_seconds",
                "Worker-measured shard execution seconds.",
                cluster.shard_latency[key],
                labels={"document": document,
                        "shard": "whole" if shard == "-1" else shard})
    return writer.text()


_METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(\\.|[^\"\\])*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(\\.|[^\"\\])*\")*\})?"  # labels
    r" (NaN|[+-]?Inf|[+-]?[0-9.eE+-]+)$")  # value
_HELP_LINE = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
_TYPE_LINE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(counter|gauge|histogram|summary|untyped)$")


def validate_prometheus(text: str) -> None:
    """Raise ``ValueError`` unless ``text`` parses as the Prometheus
    text exposition format: HELP/TYPE comments well-formed and declared
    **at most once per metric family** (merged registries must
    deduplicate, not repeat), sample line syntax valid, every sample
    preceded by a TYPE for its family, and no duplicate series (the
    same metric name with the same label set twice)."""
    typed: Dict[str, str] = {}
    helped: set = set()
    seen_series: set = set()
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            if not _HELP_LINE.match(line):
                raise ValueError(f"line {number}: malformed HELP: {line!r}")
            family = line.split(" ", 3)[2]
            if family in helped:
                raise ValueError(
                    f"line {number}: duplicate HELP for family "
                    f"{family!r}")
            helped.add(family)
            continue
        if line.startswith("# TYPE "):
            match = _TYPE_LINE.match(line)
            if not match:
                raise ValueError(f"line {number}: malformed TYPE: {line!r}")
            if match.group(1) in typed:
                raise ValueError(
                    f"line {number}: duplicate TYPE for family "
                    f"{match.group(1)!r}")
            typed[match.group(1)] = match.group(2)
            continue
        if line.startswith("#"):
            continue
        if not _METRIC_LINE.match(line):
            raise ValueError(f"line {number}: malformed sample: {line!r}")
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and family not in typed:
            raise ValueError(
                f"line {number}: sample {name!r} has no TYPE declaration")
        series = line.rsplit(" ", 1)[0]
        if series in seen_series:
            raise ValueError(
                f"line {number}: duplicate series {series!r}")
        seen_series.add(series)


def write_prometheus(path: str, metrics: Optional[Any] = None,
                     tracer: Optional[Tracer] = None,
                     cluster: Optional[Any] = None) -> str:
    text = prometheus_text(metrics, tracer, cluster)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text


# ---------------------------------------------------------------------------
# JSONL span log
# ---------------------------------------------------------------------------

def spans_jsonl(traces: _Traces) -> Iterator[str]:
    """One JSON object per span (trace_id/name merged in) — an
    append-friendly archive format for offline analysis."""
    for trace in _as_traces(traces):
        for span in trace.spans:
            record = span.to_dict()
            record["trace_id"] = trace.trace_id
            record["trace_name"] = trace.name
            yield json.dumps(record, sort_keys=True)


def write_spans_jsonl(path: str, traces: _Traces) -> int:
    """Append spans to ``path``; returns the number of lines written."""
    count = 0
    with open(path, "a", encoding="utf-8") as handle:
        for line in spans_jsonl(traces):
            handle.write(line + "\n")
            count += 1
    return count
