"""Static typing support for the typeswitch rewritings."""

from .types import ItemType, TypeEnv, infer_type

__all__ = ["ItemType", "TypeEnv", "infer_type"]
