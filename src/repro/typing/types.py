"""A small static type system for Core expressions.

The paper's type rewritings (Section 3) need exactly enough typing to
decide, for a ``typeswitch`` scrutinee, whether its type is *disjoint
from* or *subsumed by* ``numeric()``.  We use a coarse item-type lattice:

    EMPTY < {NUMERIC, NODES, BOOLEAN, STRING} < ANY

``EMPTY`` is the type of the empty sequence, ``ANY`` means statically
unknown.  Sequence cardinalities are not tracked — the two typeswitch
rules only require item-type information (an empty sequence never
matches ``numeric()`` either, so ``EMPTY`` counts as disjoint).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict

from ..xqcore.cast import (CCall, CDDO, CEmpty, CExpr, CFor, CGenCmp, CIf,
                           CArith, CLet, CLit, CLogical, CSeq, CStep,
                           CTypeswitch, CVar, Var)


class ItemType(Enum):
    EMPTY = "empty"
    NUMERIC = "numeric"
    NODES = "nodes"
    BOOLEAN = "boolean"
    STRING = "string"
    ANY = "any"

    def union(self, other: "ItemType") -> "ItemType":
        if self is other:
            return self
        if self is ItemType.EMPTY:
            return other
        if other is ItemType.EMPTY:
            return self
        return ItemType.ANY

    def is_disjoint_from_numeric(self) -> bool:
        """Sound check for the dead-case typeswitch rule."""
        return self in (ItemType.NODES, ItemType.BOOLEAN, ItemType.STRING,
                        ItemType.EMPTY)

    def is_subtype_of_numeric(self) -> bool:
        """Sound check for the sure-case typeswitch rule."""
        return self is ItemType.NUMERIC


_FUNCTION_TYPES: Dict[str, ItemType] = {
    "fn:count": ItemType.NUMERIC,
    "fn:sum": ItemType.NUMERIC,
    "fn:avg": ItemType.NUMERIC,
    "fn:min": ItemType.ANY,
    "fn:max": ItemType.ANY,
    "fn:number": ItemType.NUMERIC,
    "fn:string-length": ItemType.NUMERIC,
    "op:to": ItemType.NUMERIC,
    "fn:boolean": ItemType.BOOLEAN,
    "fn:not": ItemType.BOOLEAN,
    "fn:exists": ItemType.BOOLEAN,
    "fn:empty": ItemType.BOOLEAN,
    "fn:contains": ItemType.BOOLEAN,
    "fn:starts-with": ItemType.BOOLEAN,
    "fn:true": ItemType.BOOLEAN,
    "fn:false": ItemType.BOOLEAN,
    "fn:string": ItemType.STRING,
    "fn:name": ItemType.STRING,
    "fn:local-name": ItemType.STRING,
    "fn:concat": ItemType.STRING,
    "fn:root": ItemType.NODES,
    "fn:doc": ItemType.NODES,
    "op:union": ItemType.NODES,
    "fn:reverse": ItemType.ANY,
    "fn:subsequence": ItemType.ANY,
    "fn:distinct-values": ItemType.ANY,
    "fn:data": ItemType.ANY,
    "fn:zero-or-one": ItemType.ANY,
    "fn:exactly-one": ItemType.ANY,
}


class TypeEnv:
    """Maps variables to item types."""

    def __init__(self, bindings: Dict[Var, ItemType] | None = None) -> None:
        self.bindings = dict(bindings or {})

    def bind(self, var: Var, item_type: ItemType) -> "TypeEnv":
        child = TypeEnv(self.bindings)
        child.bindings[var] = item_type
        return child

    def lookup(self, var: Var) -> ItemType:
        return self.bindings.get(var, ItemType.ANY)


def infer_type(expr: CExpr, env: TypeEnv | None = None) -> ItemType:
    """Infer the coarse item type of a core expression.

    Global (externally bound) variables default to ``NODES`` because in
    this engine external variables always hold documents or nodes —
    matching Galax, where the typeswitch rules rely on the static type of
    the document.
    """
    env = env or TypeEnv()
    return _infer(expr, env)


def _infer(expr: CExpr, env: TypeEnv) -> ItemType:
    if isinstance(expr, CLit):
        if isinstance(expr.value, bool):
            return ItemType.BOOLEAN
        if isinstance(expr.value, (int, float)):
            return ItemType.NUMERIC
        return ItemType.STRING
    if isinstance(expr, CEmpty):
        return ItemType.EMPTY
    if isinstance(expr, CVar):
        bound = env.bindings.get(expr.var)
        if bound is not None:
            return bound
        return _default_var_type(expr.var)
    if isinstance(expr, CSeq):
        result = ItemType.EMPTY
        for item in expr.items:
            result = result.union(_infer(item, env))
        return result
    if isinstance(expr, (CStep, CDDO)):
        return ItemType.NODES
    if isinstance(expr, CLet):
        value_type = _infer(expr.value, env)
        return _infer(expr.body, env.bind(expr.var, value_type))
    if isinstance(expr, CFor):
        source_type = _infer(expr.source, env)
        inner = env.bind(expr.var, source_type)
        if expr.position_var is not None:
            inner = inner.bind(expr.position_var, ItemType.NUMERIC)
        return _infer(expr.body, inner)
    if isinstance(expr, CIf):
        return _infer(expr.then_branch, env).union(
            _infer(expr.else_branch, env))
    if isinstance(expr, CCall):
        return _FUNCTION_TYPES.get(expr.name, ItemType.ANY)
    if isinstance(expr, (CGenCmp, CLogical)):
        return ItemType.BOOLEAN
    if isinstance(expr, CArith):
        return ItemType.NUMERIC
    if isinstance(expr, CTypeswitch):
        result = ItemType.EMPTY
        input_type = _infer(expr.input, env)
        for case in expr.cases:
            case_type = (ItemType.NUMERIC if case.seqtype == "numeric"
                         else ItemType.ANY)
            result = result.union(
                _infer(case.body, env.bind(case.var, case_type)))
        result = result.union(
            _infer(expr.default_body, env.bind(expr.default_var, input_type)))
        return result
    return ItemType.ANY


def _default_var_type(var: Var) -> ItemType:
    """Fallback typing for variables bound outside the expression.

    Normalization-introduced focus variables carry their types by
    construction; external query variables hold documents (nodes) in
    this engine; user variables whose binder we have not seen stay
    untyped (``ANY``) so that no typeswitch rule fires unsoundly.
    """
    if var.origin == "focus":
        if var.name in ("position", "last"):
            return ItemType.NUMERIC
        return ItemType.NODES
    if var.origin == "external":
        return ItemType.NODES
    return ItemType.ANY
