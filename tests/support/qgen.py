"""Grammar-based random query generator for differential fuzzing.

Hypothesis strategies over the engine's XQuery fragment: downward path
expressions (child/descendant steps, name tests and wildcards, nested
existence predicates, positional predicates) plus FLWOR wrappers
(``for``/``where``/``return``, ``let``-bound sequences and aggregates).

Every generated query is *total* — it parses, compiles and evaluates
without dynamic errors on any document — so differential runs can
compare results across all physical strategies and both summary modes
without filtering.
"""

from __future__ import annotations

from hypothesis import strategies as st

#: Tag alphabet of the seeded MemBeR fuzz document
#: (``member_document(600, depth=5, tag_count=4, seed=7)``).
MEMBER_TAGS = ("t01", "t02", "t03", "t04")

#: Tag alphabet of the seeded XMark fuzz document
#: (``xmark_document(40, seed=11)``); includes a tag that never occurs
#: (``annotation``-style misses exercise the summary prefilter).
XMARK_TAGS = ("site", "people", "person", "name", "emailaddress",
              "open_auctions", "open_auction", "bidder", "increase",
              "personref", "itemref", "current", "regions", "item",
              "absenttag")

_AXES = ("child::", "desc::")


@st.composite
def _node_test(draw, tags):
    """A name test from the alphabet, occasionally a wildcard."""
    if draw(st.integers(0, 7)) == 0:
        return "*"
    return draw(st.sampled_from(tags))


@st.composite
def _predicate(draw, tags, depth):
    """``[...]``: a relative existence path, nested up to ``depth``,
    or a small positional constant."""
    if draw(st.integers(0, 3)) == 0:
        return f"[{draw(st.integers(min_value=1, max_value=3))}]"
    inner = draw(_relative_path(tags, max_steps=2, depth=depth - 1,
                                allow_predicates=depth > 0))
    return f"[{inner}]"


@st.composite
def _step(draw, tags, depth, allow_predicates=True):
    axis = draw(st.sampled_from(_AXES))
    step = axis + draw(_node_test(tags))
    if allow_predicates and draw(st.integers(0, 2)) == 0:
        step += draw(_predicate(tags, depth))
    return step


@st.composite
def _relative_path(draw, tags, max_steps=3, depth=1,
                   allow_predicates=True):
    count = draw(st.integers(min_value=1, max_value=max_steps))
    steps = [draw(_step(tags, depth, allow_predicates))
             for _ in range(count)]
    return "/".join(steps)


@st.composite
def path_queries(draw, tags, max_steps=4):
    """``$input/<step>/.../<step>`` with predicates and positions."""
    return "$input/" + draw(_relative_path(tags, max_steps=max_steps,
                                           depth=2))


@st.composite
def flwor_queries(draw, tags):
    """A FLWOR wrapper around generated paths.

    Shapes: plain ``for``/``return``, ``for``/``where``/``return``,
    ``let``-bound sequences re-navigated or aggregated, and
    ``count(...)`` over a raw path.
    """
    source = draw(path_queries(tags, max_steps=3))
    hop = draw(_relative_path(tags, max_steps=2, depth=1))
    shape = draw(st.integers(0, 4))
    if shape == 0:
        return f"for $x in {source} return $x/{hop}"
    if shape == 1:
        guard = draw(_relative_path(tags, max_steps=1, depth=0))
        return (f"for $x in {source} where $x/{guard} "
                f"return $x/{hop}")
    if shape == 2:
        return f"let $v := {source} return $v/{hop}"
    if shape == 3:
        return f"let $v := {source} return count($v)"
    return f"count({source})"


def queries(tags):
    """The full grammar: mostly paths, a healthy share of FLWOR."""
    return st.one_of(path_queries(tags), path_queries(tags),
                     flwor_queries(tags))


def member_queries():
    return queries(MEMBER_TAGS)


def xmark_queries():
    return queries(XMARK_TAGS)
