"""Shared test support code (query generation, golden regeneration)."""
