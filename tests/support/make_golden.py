"""Regenerate the golden regression corpus.

::

    PYTHONPATH=src python -m tests.support.make_golden

Serializes the QE1–QE6 results (seeded MemBeR document) and the adapted
XMark catalog results (seeded XMark document) under the executable
reference — NLJoin on the unoptimized plan — into ``tests/golden/``.
``tests/integration/test_golden.py`` then holds every strategy to the
recorded bytes.  Regenerate only when result semantics intentionally
change, and say why in the commit message.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

from repro import Engine
from repro.bench import QE_QUERIES, XMARK_CATALOG
from repro.data import member_document, xmark_document
from repro.xmltree import Node, serialize

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


def render_results(sequence) -> str:
    """One line per result item: full markup for nodes, XQuery lexical
    form for atomics.  Newline-terminated so the files are POSIX text."""
    lines = []
    for item in sequence:
        if isinstance(item, Node):
            lines.append(serialize(item))
        elif isinstance(item, bool):
            lines.append("true" if item else "false")
        else:
            lines.append(str(item))
    return "".join(line + "\n" for line in lines)


def golden_queries() -> Dict[str, str]:
    """Map golden-file stem to query text."""
    corpus = {f"member_{name}": query
              for name, query in QE_QUERIES.items()}
    corpus.update({f"xmark_{name}": entry.query
                   for name, entry in XMARK_CATALOG.items()})
    return corpus


def reference_engines() -> Dict[str, Engine]:
    """The two seeded fuzz/differential documents, summaries enabled."""
    return {
        "member": Engine(member_document(600, depth=5, tag_count=4,
                                         seed=7)),
        "xmark": Engine(xmark_document(40, seed=11)),
    }


def main() -> int:
    engines = reference_engines()
    GOLDEN_DIR.mkdir(exist_ok=True)
    for stem, query in sorted(golden_queries().items()):
        engine = engines[stem.split("_", 1)[0]]
        text = render_results(engine.run(query, strategy="nljoin",
                                         optimize=False))
        path = GOLDEN_DIR / f"{stem}.xml"
        path.write_text(text, encoding="utf-8")
        print(f"wrote {path.relative_to(GOLDEN_DIR.parent.parent)} "
              f"({len(text)} bytes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
