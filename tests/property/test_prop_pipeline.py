"""Property: the full compilation pipeline preserves query semantics.

Random queries from the tree-pattern-adjacent fragment are run through
the optimizing pipeline (under every physical strategy) and compared to
the unoptimized reference evaluation.
"""

from hypothesis import given, settings, strategies as st

from repro import Engine
from repro.algebra.optimizer import OptimizerOptions
from repro.data import member_document

_ENGINES = {seed: Engine(member_document(180, depth=5, tag_count=3,
                                         seed=seed + 100))
            for seed in range(3)}

#: the same documents under the Section 7 extension options — every
#: random query must behave identically with the extensions enabled.
_EXTENDED = {seed: Engine(engine.document,
                          optimizer_options=OptimizerOptions(
                              enable_positional=True,
                              enable_multi_output=True))
             for seed, engine in _ENGINES.items()}

_TAGS = ["t01", "t02", "t03"]
_AXES = ["/", "//"]


@st.composite
def path_queries(draw):
    """Random path/FLWOR queries over the 3-tag documents."""
    parts = ["$input"]
    step_count = draw(st.integers(min_value=1, max_value=4))
    for _ in range(step_count):
        axis = draw(st.sampled_from(_AXES))
        tag = draw(st.sampled_from(_TAGS))
        predicate = ""
        choice = draw(st.integers(0, 4))
        if choice == 0:
            predicate = f"[{draw(st.sampled_from(_TAGS))}]"
        elif choice == 1:
            predicate = f"[{draw(st.integers(1, 3))}]"
        elif choice == 2:
            inner = draw(st.sampled_from(_TAGS))
            predicate = f"[.//{inner}]"
        parts.append(f"{axis}{tag}{predicate}")
    return "".join(parts)


@st.composite
def flwor_queries(draw):
    base = draw(path_queries())
    style = draw(st.integers(0, 2))
    if style == 0:
        return base
    if style == 1:
        tag = draw(st.sampled_from(_TAGS))
        return f"for $x in {base} return $x/{tag}"
    tag = draw(st.sampled_from(_TAGS))
    return (f"for $x in {base} where $x/{tag} return $x")


def reference_keys(engine, query):
    result = engine.run(query, optimize=False)
    return [getattr(item, "pre", item) for item in result]


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(list(_ENGINES)), path_queries())
def test_path_queries_preserved(seed, query):
    engine = _ENGINES[seed]
    expected = reference_keys(engine, query)
    for strategy in ("nljoin", "twigjoin", "scjoin"):
        result = engine.run(query, strategy=strategy)
        assert [getattr(i, "pre", i) for i in result] == expected, \
            (query, strategy)


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(list(_ENGINES)), flwor_queries())
def test_flwor_queries_preserved(seed, query):
    engine = _ENGINES[seed]
    expected = reference_keys(engine, query)
    for strategy in ("nljoin", "scjoin"):
        result = engine.run(query, strategy=strategy)
        assert [getattr(i, "pre", i) for i in result] == expected, \
            (query, strategy)


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(list(_ENGINES)), flwor_queries())
def test_extensions_preserve_semantics(seed, query):
    """Positional + multi-output extensions never change results."""
    expected = reference_keys(_ENGINES[seed], query)
    extended = _EXTENDED[seed]
    for strategy in ("nljoin", "twigjoin", "scjoin"):
        result = extended.run(query, strategy=strategy)
        assert [getattr(i, "pre", i) for i in result] == expected, \
            (query, strategy)


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(list(_ENGINES)), path_queries())
def test_path_results_distinct_doc_ordered(seed, query):
    """Path expressions always yield distinct nodes in document order."""
    engine = _ENGINES[seed]
    result = engine.run(query)
    pres = [node.pre for node in result]
    assert pres == sorted(set(pres))


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(list(_ENGINES)), path_queries())
def test_compilation_deterministic(seed, query):
    engine = _ENGINES[seed]
    first = engine.compile(query).canonical_plan()
    second = engine.compile(query).canonical_plan()
    assert first == second
