"""Prune correctness: the prefilter never rejects a matching pattern.

For generated (document, pattern) pairs, whenever the structural
summary's :meth:`~repro.xmltree.summary.PathSummary.can_match` answers
``False`` — context-free or for specific context nodes — an
*un-prefiltered* NLJoin must confirm the emptiness: ``match_single``
returns no nodes and ``enumerate_bindings`` no bindings.  A single
counterexample would mean the prefilter drops real results (a false
prune), the one failure mode the design forbids.
"""

from hypothesis import given, settings, strategies as st

from repro import IndexedDocument, NLJoin, parse_pattern

_TAGS = ("a", "b", "c", "d")
_ATTRS = ("x", "y")
_AXES = ("child::", "desc::")


# -- random documents ----------------------------------------------------------

@st.composite
def _element(draw, depth):
    tag = draw(st.sampled_from(_TAGS))
    attrs = ""
    if draw(st.integers(0, 3)) == 0:
        attrs = f' {draw(st.sampled_from(_ATTRS))}="1"'
    if depth == 0 or draw(st.integers(0, 2)) == 0:
        body = "t" if draw(st.booleans()) else ""
    else:
        body = "".join(draw(st.lists(_element(depth - 1), min_size=0,
                                     max_size=3)))
    return f"<{tag}{attrs}>{body}</{tag}>"


@st.composite
def documents(draw):
    return IndexedDocument.from_string(draw(_element(3)))


# -- random patterns -----------------------------------------------------------

@st.composite
def _steps(draw, max_steps, depth):
    parts = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_steps))):
        axis = draw(st.sampled_from(_AXES))
        kind = draw(st.integers(0, 7))
        if kind == 0:
            test = "*"
        elif kind == 1:
            test = "text()"
        else:
            test = draw(st.sampled_from(_TAGS))
        step = axis + test
        if depth > 0 and test != "text()" and draw(st.integers(0, 2)) == 0:
            if draw(st.integers(0, 3)) == 0:
                inner = "attribute::" + draw(st.sampled_from(_ATTRS))
            else:
                inner = draw(_steps(2, depth - 1))
            step += f"[{inner}]"
        parts.append(step)
    return "/".join(parts)


@st.composite
def pattern_paths(draw):
    return parse_pattern(f"IN#d/{draw(_steps(3, 2))}{{o}}").path


# -- the property --------------------------------------------------------------

@given(document=documents(), path=pattern_paths(),
       context_sample=st.integers(0, 5))
@settings(max_examples=250, deadline=None, derandomize=True)
def test_false_means_provably_empty(document, path, context_sample):
    summary = document.summary
    nljoin = NLJoin()            # un-prefiltered: no summary attached
    if not summary.can_match(path):
        for context in [document.root] + document.all_elements():
            assert nljoin.match_single(document, [context], path) == []
            assert nljoin.enumerate_bindings(document, context, path) == []
    # Context-restricted prunes must hold for exactly those contexts.
    elements = document.all_elements()
    contexts = ([document.root] +
                elements[context_sample::6])[:4]
    if not summary.can_match(path, contexts):
        assert nljoin.match_single(document, contexts, path) == []
        for context in contexts:
            assert nljoin.enumerate_bindings(document, context, path) == []
