"""Scatter-gather is invisible: cluster answers == single-process
answers, byte for byte.

Two sources of query/document pairs drive an inline-transport cluster
(real shard engines, real frame codec, no subprocess latency):

* the **golden corpus** (QE1–QE6 + the XMark catalog) across all eight
  physical strategies;
* **seeded grammar fuzz** (:mod:`tests.support.qgen`, ≥200 pairs with
  ``derandomize=True``) on the MemBeR and XMark fuzz documents.

The single-process reference is computed on engines over the *same*
columns both from the object store build and re-opened columnar files,
so store choice provably does not leak into cluster answers either.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import Engine, IndexedDocument
from repro.data import member_document, xmark_document
from repro.serve import ClusterLayout, ClusterService, QueryRequest
from repro.xmltree import serialize

from tests.support import qgen
from tests.support.make_golden import golden_queries

STRATEGIES = ("nljoin", "twigjoin", "scjoin", "stacktree", "streaming",
              "auto", "cost", "item")

_MEMBER = member_document(600, depth=5, tag_count=4, seed=7)
_XMARK = xmark_document(40, seed=11)

_CLUSTER = None
_BASELINES = {}


def _cluster():
    """One shared inline cluster over both fuzz documents (module
    scope via lazy init so hypothesis examples reuse it)."""
    global _CLUSTER
    if _CLUSTER is None:
        import atexit
        import tempfile
        directory = tempfile.mkdtemp(prefix="repro-prop-cluster-")
        layout = ClusterLayout.build(
            {"member": _MEMBER.columns, "xmark": _XMARK.columns},
            directory, 4)
        _CLUSTER = ClusterService(layout, workers=2, transport="inline")
        atexit.register(_CLUSTER.close)
    return _CLUSTER


def _baseline(document: str, store: str) -> Engine:
    """Single-process engine per (document, store) pair."""
    key = (document, store)
    engine = _BASELINES.get(key)
    if engine is None:
        source = _MEMBER if document == "member" else _XMARK
        if store == "object":
            engine = Engine(source)
        else:
            engine = Engine(IndexedDocument(columns=source.columns))
        _BASELINES[key] = engine
    return engine


def rendered(sequence):
    return [(item.pre, serialize(item)) if hasattr(item, "pre")
            else repr(item) for item in sequence]


def assert_cluster_matches(document: str, query: str,
                           strategy=None) -> None:
    service = _cluster()
    got = rendered(service.submit(QueryRequest(
        document=document, query=query,
        strategy=strategy)).result(timeout=120))
    for store in ("object", "columnar"):
        engine = _baseline(document, store)
        expected = rendered(engine.execute(engine.compile(query),
                                           strategy=strategy))
        assert got == expected, (
            f"cluster diverged from {store} single-process on "
            f"{query!r} (strategy={strategy})")


# -- golden corpus × every strategy ------------------------------------------


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("stem", sorted(golden_queries()))
def test_golden_corpus_through_cluster(stem, strategy):
    document = stem.split("_", 1)[0]
    assert_cluster_matches(document, golden_queries()[stem], strategy)


# -- seeded grammar fuzz (≥200 pairs with the two documents) -----------------


@given(query=qgen.member_queries())
@settings(max_examples=120, deadline=None, derandomize=True)
def test_fuzz_member_through_cluster(query):
    assert_cluster_matches("member", query)


@given(query=qgen.xmark_queries())
@settings(max_examples=120, deadline=None, derandomize=True)
def test_fuzz_xmark_through_cluster(query):
    assert_cluster_matches("xmark", query)
