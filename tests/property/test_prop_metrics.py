"""Properties of the observability layer.

For random MemBeR documents and generated path queries:

* optimized and unoptimized plans produce the same results;
* cached and uncached compiles produce equal canonical plans (and the
  cache actually hits);
* every :class:`~repro.obs.ExecMetrics` counter is non-negative, and the
  counters are mutually consistent — in particular, when a chooser
  strategy runs, its decision tally equals the number of pattern
  evaluations (one choice per single-output pattern evaluation).
"""

from hypothesis import given, settings, strategies as st

from repro import Engine
from repro.data import member_document
from repro.obs import ExecMetrics

_DOCS = {seed: member_document(220, depth=5, tag_count=3, seed=seed)
         for seed in range(3)}
_ENGINES = {seed: Engine(document) for seed, document in _DOCS.items()}

_TAGS = ["t01", "t02", "t03"]
_AXES = ["child::", "desc::"]


@st.composite
def path_queries(draw):
    """A random downward path query over the MemBeR tags."""
    parts = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        axis = draw(st.sampled_from(_AXES))
        tag = draw(st.sampled_from(_TAGS))
        step = f"{axis}{tag}"
        if draw(st.integers(0, 2)) == 0:
            predicate_tag = draw(st.sampled_from(_TAGS))
            predicate_axis = draw(st.sampled_from(_AXES))
            step += f"[{predicate_axis}{predicate_tag}]"
        parts.append(step)
    return "$input/" + "/".join(parts)


def keys(sequence):
    return [getattr(item, "pre", item) for item in sequence]


@given(seed=st.sampled_from(sorted(_ENGINES)), query=path_queries())
@settings(max_examples=60, deadline=None)
def test_optimized_and_unoptimized_agree(seed, query):
    engine = _ENGINES[seed]
    assert keys(engine.run(query, optimize=True)) == \
        keys(engine.run(query, optimize=False))


@given(seed=st.sampled_from(sorted(_ENGINES)), query=path_queries())
@settings(max_examples=60, deadline=None)
def test_cached_compile_equals_uncached(seed, query):
    engine = _ENGINES[seed]
    first = engine.compile(query)
    hits_before = engine.plan_cache.stats.hits
    second = engine.compile(query)                    # cache hit
    fresh = engine.compile(query, use_cache=False)    # recompiled
    assert engine.plan_cache.stats.hits == hits_before + 1
    assert second is first
    assert fresh is not first
    assert fresh.canonical_plan() == first.canonical_plan()


@given(seed=st.sampled_from(sorted(_ENGINES)), query=path_queries(),
       strategy=st.sampled_from(["nljoin", "twigjoin", "scjoin",
                                 "stacktree", "streaming"]))
@settings(max_examples=60, deadline=None)
def test_counters_non_negative(seed, query, strategy):
    engine = _ENGINES[seed]
    traced = engine.run_traced(query, strategy=strategy)
    counters = traced.metrics.counters()
    assert all(value >= 0 for value in counters.values()), counters
    # A run that evaluated anything evaluated at least one operator.
    assert sum(traced.metrics.operator_evals.values()) > 0
    # Compile timings exist and are non-negative (zero only if cached —
    # timings are carried from the original compile, so always present).
    assert traced.pipeline is not None
    assert all(seconds >= 0.0
               for seconds in traced.pipeline.stages.values())
    # No chooser ran, so no decisions were recorded.
    assert traced.metrics.decisions_total == 0


@given(seed=st.sampled_from(sorted(_ENGINES)), query=path_queries(),
       chooser=st.sampled_from(["auto", "cost"]))
@settings(max_examples=60, deadline=None)
def test_chooser_decisions_match_pattern_evals(seed, query, chooser):
    engine = _ENGINES[seed]
    traced = engine.run_traced(query, strategy=chooser)
    metrics = traced.metrics
    # The optimizer emits single-output patterns for path queries, so
    # each pattern evaluation that survives the structural prefilter
    # consults the chooser exactly once.
    assert metrics.decisions_total == \
        metrics.pattern_evals - metrics.prune_hits
    assert metrics.prune_hits + metrics.prune_misses == \
        metrics.pattern_evals
    assert len(metrics.decision_ring) == \
        min(metrics.decisions_total, metrics.decision_ring.maxlen)


@given(st.lists(st.integers(min_value=0, max_value=10**6), max_size=40))
@settings(max_examples=60, deadline=None)
def test_merge_adds_counters(values):
    left, right = ExecMetrics(), ExecMetrics()
    for index, value in enumerate(values):
        target = left if index % 2 == 0 else right
        target.nodes_visited["nljoin"] += value
        target.items_produced += value
    merged_total = left.merge(right)
    assert merged_total.nodes_visited["nljoin"] == sum(values)
    assert merged_total.items_produced == sum(values)
