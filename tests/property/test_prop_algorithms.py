"""Property: NLJoin, TwigJoin and SCJoin agree on random patterns
against random documents (NLJoin is the executable specification)."""

from hypothesis import given, settings, strategies as st

from repro.data import member_document
from repro.pattern import PatternPath, PatternStep, TreePattern
from repro.physical import (NLJoin, StackTreeJoin, StaircaseJoin,
                            StreamingXPath, TwigJoin)
from repro.xmltree.axes import Axis
from repro.xmltree.nodetest import NameTest, WildcardTest

NL, TJ, SC = NLJoin(), TwigJoin(), StaircaseJoin()
STREAM = StreamingXPath()
STACK = StackTreeJoin()

_DOCS = {seed: member_document(250, depth=5, tag_count=3, seed=seed)
         for seed in range(4)}

_AXES = [Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF]


@st.composite
def pattern_paths(draw, depth=0):
    steps = []
    step_count = draw(st.integers(min_value=1, max_value=3))
    for position in range(step_count):
        axis = draw(st.sampled_from(_AXES))
        if draw(st.booleans()):
            test = NameTest(draw(st.sampled_from(["t01", "t02", "t03"])))
        else:
            test = WildcardTest()
        predicates = ()
        if depth < 1 and draw(st.integers(0, 3)) == 0:
            branch = draw(pattern_paths(depth=depth + 1))
            predicates = (branch.strip_outputs(),)
        output = "o" if position == step_count - 1 else None
        steps.append(PatternStep(axis=axis, test=test,
                                 predicates=predicates,
                                 output_field=output))
    return PatternPath(tuple(steps))


@st.composite
def single_output_patterns(draw):
    path = draw(pattern_paths())
    # strip outputs inside predicates, keep the extraction point
    return TreePattern("dot", path.strip_outputs()).path.replace_last(
        draw(st.just(path.last)))


@settings(max_examples=80, deadline=None)
@given(st.sampled_from(list(_DOCS)), pattern_paths(),
       st.integers(min_value=0, max_value=200))
def test_match_single_agreement(seed, path, context_pick):
    doc = _DOCS[seed]
    elements = doc.all_elements()
    context = elements[context_pick % len(elements)]
    expected = NL.match_single(doc, [context], path)
    assert TJ.match_single(doc, [context], path) == expected
    assert SC.match_single(doc, [context], path) == expected
    assert STREAM.match_single(doc, [context], path) == expected
    assert STACK.match_single(doc, [context], path) == expected


@settings(max_examples=50, deadline=None)
@given(st.sampled_from(list(_DOCS)), pattern_paths(),
       st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                max_size=5))
def test_match_single_multi_context_agreement(seed, path, picks):
    doc = _DOCS[seed]
    elements = doc.all_elements()
    contexts = sorted({elements[p % len(elements)] for p in picks},
                      key=lambda node: node.pre)
    expected = NL.match_single(doc, contexts, path)
    assert TJ.match_single(doc, contexts, path) == expected
    assert SC.match_single(doc, contexts, path) == expected
    assert STREAM.match_single(doc, contexts, path) == expected
    assert STACK.match_single(doc, contexts, path) == expected
    # results are always distinct-doc-ordered
    pres = [node.pre for node in expected]
    assert pres == sorted(set(pres))


@settings(max_examples=50, deadline=None)
@given(st.sampled_from(list(_DOCS)), pattern_paths())
def test_enumerate_bindings_agreement(seed, path):
    doc = _DOCS[seed]
    expected = NL.enumerate_bindings(doc, doc.root, path)
    twig = TJ.enumerate_bindings(doc, doc.root, path)
    assert [sorted((k, v.pre) for k, v in b.items()) for b in twig] == \
        [sorted((k, v.pre) for k, v in b.items()) for b in expected]
