"""Generated-query differential fuzzing across every strategy.

For grammar-generated queries (see :mod:`tests.support.qgen`) on seeded
MemBeR and XMark documents, every physical strategy — the five concrete
algorithms, both choosers and the plain item evaluator — must serialize
to the identical result sequence, with the structural summary prefilter
enabled *and* disabled.  The reference is NLJoin on the unoptimized
plan, the same executable baseline the curated differential suite uses.

``derandomize=True`` keeps the corpus fixed, so the suite is a seeded
regression fuzz run (≥ 200 query/document pairs) rather than a flaky
one.
"""

from hypothesis import given, settings

from repro import Engine
from repro.data import member_document, xmark_document
from repro.xmltree import serialize

from tests.support import qgen

STRATEGIES = ("nljoin", "twigjoin", "scjoin", "stacktree", "streaming",
              "auto", "cost", "item")

_MEMBER_DOC = member_document(600, depth=5, tag_count=4, seed=7)
_XMARK_DOC = xmark_document(40, seed=11)

_MEMBER = {flag: Engine(_MEMBER_DOC, use_summary=flag)
           for flag in (True, False)}
_XMARK = {flag: Engine(_XMARK_DOC, use_summary=flag)
          for flag in (True, False)}


def rendered(sequence):
    """Serialize a result sequence for exact comparison: node identity
    plus full subtree markup for nodes, ``repr`` for atomic items."""
    out = []
    for item in sequence:
        if hasattr(item, "pre"):
            out.append((item.pre, serialize(item)))
        else:
            out.append(repr(item))
    return out


def assert_all_strategies_agree(engines, query):
    reference = rendered(engines[False].run(query, strategy="nljoin",
                                            optimize=False))
    for use_summary in (True, False):
        engine = engines[use_summary]
        for strategy in STRATEGIES:
            got = rendered(engine.run(query, strategy=strategy))
            assert got == reference, (
                f"{strategy} (summary={'on' if use_summary else 'off'}) "
                f"diverged on {query!r}")


@given(query=qgen.member_queries())
@settings(max_examples=120, deadline=None, derandomize=True)
def test_member_fuzz_differential(query):
    assert_all_strategies_agree(_MEMBER, query)


@given(query=qgen.xmark_queries())
@settings(max_examples=100, deadline=None, derandomize=True)
def test_xmark_fuzz_differential(query):
    assert_all_strategies_agree(_XMARK, query)
