"""Observability parity between the compiled and interpreted backends.

The compiled backend's instrumented variant re-emits every interpreter
side effect at the structurally matching point, so for grammar-generated
queries (:mod:`tests.support.qgen`) the two backends must agree on:

* **results** — byte-identical sequences (the differential wall's
  invariant, re-checked here because metrics assertions are vacuous on
  diverging runs);
* **ExecMetrics counters** — *exactly*: push-based stage counters count
  the same activations and cardinalities the interpreter measures on
  materialized lists;
* **trace shape** — the span-name multiset and the per-operator
  ``op_stats`` aggregates (name, calls, rows) match exactly.

What is deliberately *not* compared — the documented
breaker-materialization tolerances (see ``docs/PIPELINE.md``): span
*parentage* (fused stages stay open while downstream per-tuple code
runs, so a consumer's span nests under the innermost open producer
instead of under its plan parent) and per-span durations/governor depth
(fused stages overlap in time).

``derandomize=True`` keeps the corpus fixed, so this is a seeded
regression run rather than a flaky one.
"""

from collections import Counter

from hypothesis import given, settings

from repro import Engine
from repro.data import member_document, xmark_document
from repro.obs import ExecMetrics
from repro.trace import Tracer
from repro.xmltree import serialize

from tests.support import qgen

_MEMBER = Engine(member_document(600, depth=5, tag_count=4, seed=7))
_XMARK = Engine(xmark_document(40, seed=11))


def rendered(sequence):
    out = []
    for item in sequence:
        if hasattr(item, "pre"):
            out.append((item.pre, serialize(item)))
        else:
            out.append(repr(item))
    return out


def traced(engine, query, backend):
    run = engine.run_traced(query, tracer=Tracer(), backend=backend)
    assert run.trace is not None
    return run


def span_names(trace):
    return Counter(span.name for span in trace.spans)


def op_aggregates(trace):
    """Per-operator aggregates, identity-free: plan node ids differ
    between runs only if plans differ, but the multiset of (name,
    calls, rows) must not."""
    return Counter((stat.name, stat.calls, stat.rows)
                   for stat in trace.op_stats.values())


def assert_observability_parity(engine, query):
    # Warm the plan cache (and the compiled backend's lazy codegen)
    # first: compile-stage spans appear only on cache misses, which is
    # cache state, not backend behaviour — the comparison below covers
    # execution.
    engine.run(query)
    engine.run(query, backend="compiled")
    interpreted = traced(engine, query, "interpreted")
    compiled = traced(engine, query, "compiled")

    assert rendered(compiled.results) == rendered(interpreted.results), (
        f"results diverged on {query!r}")

    # Counters: exact equality, field by field.
    assert isinstance(interpreted.metrics, ExecMetrics)
    assert compiled.metrics.counters() == interpreted.metrics.counters(), (
        f"ExecMetrics diverged on {query!r}")
    assert compiled.metrics.operator_evals \
        == interpreted.metrics.operator_evals

    # Trace shape: same spans (as a multiset) and the same exact
    # per-operator cardinalities; parentage is the documented tolerance.
    assert span_names(compiled.trace) == span_names(interpreted.trace), (
        f"span-name multiset diverged on {query!r}")
    assert op_aggregates(compiled.trace) \
        == op_aggregates(interpreted.trace), (
            f"op_stats diverged on {query!r}")

    # Both traces nest under the same root and close cleanly.
    for run in (interpreted, compiled):
        root = run.trace.spans[0]
        assert root.name == "query"
        assert all(span.end is not None for span in run.trace.spans)


@given(query=qgen.member_queries())
@settings(max_examples=60, deadline=None, derandomize=True)
def test_member_observability_parity(query):
    assert_observability_parity(_MEMBER, query)


@given(query=qgen.xmark_queries())
@settings(max_examples=40, deadline=None, derandomize=True)
def test_xmark_observability_parity(query):
    assert_observability_parity(_XMARK, query)
