"""Round-trip and idempotence properties."""

from hypothesis import given, settings, strategies as st

from repro.pattern import parse_pattern
from repro.rewrite import rewrite_to_tpnf
from repro.xmltree import parse_xml, serialize
from repro.xmltree.builder import E, build_document
from repro.xqcore import alpha_canonical, normalize_query
from repro.xquery import parse_query
from repro.xquery.abbrev import resolve_abbreviations

TAGS = ["a", "b", "c"]
ATTR_NAMES = ["id", "x"]
TEXTS = ["", "hello", "a & b", "<tag>", 'say "hi"', "  spaced  "]


@st.composite
def rich_trees(draw, max_depth=3):
    """Random element trees with attributes and text children."""

    def node(depth):
        tag = draw(st.sampled_from(TAGS))
        attributes = {}
        for name in ATTR_NAMES:
            if draw(st.booleans()):
                attributes[name] = draw(st.sampled_from(TEXTS))
        children = []
        if depth < max_depth:
            for _ in range(draw(st.integers(0, 3))):
                if draw(st.booleans()):
                    children.append(node(depth + 1))
                else:
                    text = draw(st.sampled_from(TEXTS))
                    if text:
                        children.append(text)
        return E(tag, *children, **attributes)

    return node(0)


@settings(max_examples=80, deadline=None)
@given(rich_trees())
def test_serializer_parser_round_trip(tree):
    document = build_document(tree)
    text = serialize(document.root)
    reparsed = parse_xml(text)
    assert serialize(reparsed) == text
    # structure preserved: same node kinds in document order
    original = [node.kind for node in document.root.iter_descendants_or_self()]
    parsed = [node.kind for node in reparsed.iter_descendants_or_self()]
    assert parsed == original


@settings(max_examples=80, deadline=None)
@given(rich_trees())
def test_string_values_survive_round_trip(tree):
    document = build_document(tree)
    reparsed = parse_xml(serialize(document.root))
    assert reparsed.string_value() == document.root.string_value()


_QUERIES = [
    "$d//person[emailaddress]/name",
    "(for $x in $d//a return $x)/b",
    "for $x in $d/a, $y in $x/b where $y/c return $y",
    "let $v := $d//a return count($v)",
    "$d//a[b = 'x'][2]/c",
    "if ($d/a) then $d//b else ()",
    "some $x in $d//a satisfies $x/b",
]


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(_QUERIES))
def test_rewrite_pipeline_idempotent(query):
    core = normalize_query(resolve_abbreviations(parse_query(query))).core
    once = rewrite_to_tpnf(core)
    twice = rewrite_to_tpnf(once)
    assert alpha_canonical(twice) == alpha_canonical(once)


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(_QUERIES))
def test_normalization_deterministic(query):
    first = alpha_canonical(
        normalize_query(resolve_abbreviations(parse_query(query))).core)
    second = alpha_canonical(
        normalize_query(resolve_abbreviations(parse_query(query))).core)
    assert first == second


_PATTERNS = [
    "IN#dot/descendant::person[child::emailaddress]/child::name{out}",
    "IN#x/descendant::a/child::c{y}[@id]/child::d{z}",
    "IN#d/child::a[2]{o}",
    "IN#d/descendant::a[child::b[child::c]]/child::e{o}",
    "IN#d/descendant-or-self::node()/child::t{o}",
]


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(_PATTERNS))
def test_pattern_print_parse_fixpoint(text):
    first = parse_pattern(text)
    second = parse_pattern(first.to_string())
    assert second.to_string() == first.to_string()
    assert second == first
