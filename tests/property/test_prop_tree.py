"""Property-based tests on the XML tree substrate."""

from hypothesis import given, settings, strategies as st

from repro.xmltree import (Axis, IndexedDocument, assign_regions,
                           axis_nodes, ddo, parse_xml, serialize)
from repro.xmltree.node import DocumentNode, ElementNode, TextNode

TAGS = ["a", "b", "c"]


@st.composite
def element_trees(draw, max_depth=4):
    """A random element tree as nested lists."""

    def node(depth):
        tag = draw(st.sampled_from(TAGS))
        if depth >= max_depth:
            return (tag, [])
        children = draw(st.lists(st.deferred(lambda: st.just(None)),
                                 max_size=0))  # placeholder, see below
        child_count = draw(st.integers(min_value=0, max_value=3))
        return (tag, [node(depth + 1) for _ in range(child_count)])

    return node(0)


def build(tree) -> IndexedDocument:
    document = DocumentNode()

    def construct(spec):
        tag, children = spec
        element = ElementNode(tag)
        for child in children:
            element.append_child(construct(child))
        return element

    document.append_child(construct(tree))
    assign_regions(document)
    return IndexedDocument(document)


@settings(max_examples=60, deadline=None)
@given(element_trees())
def test_region_encoding_invariants(tree):
    doc = build(tree)
    nodes = doc.nodes_by_pre
    # pre numbers are dense and sorted
    assert [node.pre for node in nodes] == list(range(len(nodes)))
    for node in nodes:
        # the subtree interval covers exactly the descendants
        descendants = {d.pre for d in node.iter_descendants()}
        interval = set(range(node.pre + 1, node.end + 1))
        assert descendants == interval
        # level is parent's level + 1
        if node.parent is not None:
            assert node.level == node.parent.level + 1


@settings(max_examples=60, deadline=None)
@given(element_trees())
def test_containment_matches_interval(tree):
    doc = build(tree)
    elements = doc.all_elements()
    for outer in elements[:10]:
        for inner in elements[:10]:
            structural = inner in list(outer.iter_descendants())
            assert outer.contains(inner) == structural


@settings(max_examples=60, deadline=None)
@given(element_trees())
def test_axes_partition_document(tree):
    """self ∪ ancestors ∪ descendants ∪ preceding ∪ following covers
    every non-attribute node exactly once (the classic XPath axiom)."""
    doc = build(tree)
    everything = {node.pre for node in doc.nodes_by_pre}
    for node in doc.all_elements()[:6]:
        parts = {
            "self": {node.pre},
            "ancestor": {n.pre for n in axis_nodes(node, Axis.ANCESTOR)},
            "descendant": {n.pre for n in axis_nodes(node, Axis.DESCENDANT)},
            "preceding": {n.pre for n in axis_nodes(node, Axis.PRECEDING)},
            "following": {n.pre for n in axis_nodes(node, Axis.FOLLOWING)},
        }
        union = set()
        total = 0
        for name, part in parts.items():
            union |= part
            total += len(part)
        assert union == everything
        assert total == len(everything)  # pairwise disjoint


@settings(max_examples=60, deadline=None)
@given(element_trees())
def test_serialize_parse_round_trip(tree):
    doc = build(tree)
    text = serialize(doc.root)
    reparsed = parse_xml(text)
    assert serialize(reparsed) == text
    assert len(list(reparsed.iter_descendants_or_self())) == \
        len(list(doc.root.iter_descendants_or_self()))


@settings(max_examples=60, deadline=None)
@given(element_trees(), st.lists(st.integers(min_value=0, max_value=30),
                                 max_size=20))
def test_ddo_properties(tree, picks):
    doc = build(tree)
    elements = doc.all_elements()
    selection = [elements[i % len(elements)] for i in picks]
    result = ddo(selection)
    pres = [node.pre for node in result]
    assert pres == sorted(set(pres))
    assert set(pres) == {node.pre for node in selection}
    assert ddo(result) == result  # idempotent


@settings(max_examples=40, deadline=None)
@given(element_trees())
def test_streams_cover_all_elements(tree):
    doc = build(tree)
    total = sum(len(doc.stream(tag)) for tag in TAGS)
    assert total == len(doc.all_elements())
