"""Columnar persistence: save → mmap-open round trips and corruption.

Every corruption mode — truncation at any boundary, a foreign magic, a
flipped payload byte, an unsupported version, the wrong byte order —
must surface as a typed :class:`StorageError` (a ``ReproError`` with
code ``REPRO-STORAGE`` naming the file), never a crash and never a
silently wrong answer.
"""

import io
import struct

import pytest

from repro import Engine
from repro.guard import ReproError
from repro.xmltree import (ColumnarDocument, IndexedDocument, StorageError,
                           is_columnar_file, serialize)
from repro.cli import main as cli_main
from repro.data import member_document

XML = ('<site lang="en"><people><person id="p1"><name>John</name>'
       '<emailaddress>j@x.example</emailaddress></person>'
       '<person id="p2"><name>Ada</name></person></people>'
       '<regions><item ref="p1">text &amp; more</item></regions></site>')

_INT_COLUMNS = ("post", "level", "end", "parent", "name_id", "text_id")


@pytest.fixture()
def saved(tmp_path):
    doc = IndexedDocument.from_string(XML, uri="memory://site")
    path = tmp_path / "site.rpxc"
    size = doc.save(path)
    assert size == path.stat().st_size
    return doc, path


class TestRoundTrip:
    def test_every_column_survives(self, saved):
        doc, path = saved
        reopened = ColumnarDocument.open(path)
        original = doc.columns
        for name in _INT_COLUMNS:
            assert list(getattr(reopened, name)) == \
                list(getattr(original, name)), name
        assert list(reopened.kind) == list(original.kind)
        assert list(reopened.names) == list(original.names)
        assert list(reopened.texts) == list(original.texts)
        assert {t: list(s) for t, s in reopened.tag_pres.items()} == \
            {t: list(s) for t, s in original.tag_pres.items()}
        assert {t: list(s) for t, s in
                reopened.attribute_pres.items()} == \
            {t: list(s) for t, s in original.attribute_pres.items()}
        assert list(reopened.text_pres) == list(original.text_pres)
        assert list(reopened.element_pres) == list(original.element_pres)
        assert reopened.uri == "memory://site"
        assert reopened.is_mapped
        reopened.validate()
        reopened.close()

    def test_query_results_survive(self, saved):
        doc, path = saved
        reopened = IndexedDocument.open(path)
        query = "$input//person[emailaddress]/name"
        expected = [serialize(n) for n in Engine(doc).run(query)]
        for strategy in ("nljoin", "twigjoin", "scjoin", "item"):
            got = [serialize(n) for n in Engine(reopened).run(
                query, strategy=strategy)]
            assert got == expected
        assert serialize(reopened.root) == serialize(doc.root)

    def test_open_without_verify(self, saved):
        _, path = saved
        reopened = ColumnarDocument.open(path, verify=False)
        reopened.validate()
        assert reopened.open_seconds >= 0.0
        reopened.close()

    def test_is_columnar_file(self, saved, tmp_path):
        _, path = saved
        assert is_columnar_file(path)
        xml = tmp_path / "plain.xml"
        xml.write_text(XML, encoding="utf-8")
        assert not is_columnar_file(xml)
        assert not is_columnar_file(tmp_path / "missing.rpxc")

    def test_save_is_atomic(self, saved, tmp_path):
        doc, path = saved
        # Overwriting an existing file goes through a rename; no
        # .tmp leftovers either way.
        doc.save(path)
        assert is_columnar_file(path)
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_close_is_idempotent(self, saved):
        _, path = saved
        reopened = ColumnarDocument.open(path)
        reopened.close()
        reopened.close()
        assert not reopened.is_mapped


def _expect_storage_error(path, *needles):
    with pytest.raises(StorageError) as err:
        ColumnarDocument.open(path)
    assert isinstance(err.value, ReproError)
    assert err.value.code == "REPRO-STORAGE"
    message = str(err.value)
    assert path.name in message
    for needle in needles:
        assert needle in message, (needle, message)


class TestCorruption:
    def test_truncation_at_many_boundaries(self, saved):
        _, path = saved
        data = path.read_bytes()
        for keep in (0, 3, 17, len(data) // 2, len(data) - 1):
            path.write_bytes(data[:keep])
            _expect_storage_error(path)

    def test_bad_magic(self, saved):
        _, path = saved
        data = path.read_bytes()
        path.write_bytes(b"NOPE" + data[4:])
        _expect_storage_error(path, "magic")

    def test_flipped_payload_byte_fails_checksum(self, saved):
        _, path = saved
        data = bytearray(path.read_bytes())
        data[-5] ^= 0xFF
        path.write_bytes(bytes(data))
        _expect_storage_error(path, "corrupt")

    def test_unsupported_version(self, saved):
        _, path = saved
        data = bytearray(path.read_bytes())
        struct.pack_into("<H", data, 4, 99)
        path.write_bytes(bytes(data))
        _expect_storage_error(path, "version 99")

    def test_foreign_byte_order(self, saved):
        _, path = saved
        data = bytearray(path.read_bytes())
        # The endianness marker as the opposite byte order would see it.
        data[6:8] = bytes(reversed(data[6:8]))
        path.write_bytes(bytes(data))
        _expect_storage_error(path, "byte order")

    def test_appended_garbage_is_detected(self, saved):
        _, path = saved
        path.write_bytes(path.read_bytes() + b"trailing junk")
        _expect_storage_error(path)

    def test_not_a_file(self, tmp_path):
        with pytest.raises(StorageError):
            ColumnarDocument.open(tmp_path / "missing.rpxc")

    def test_xml_file_is_rejected_with_typed_error(self, tmp_path):
        xml = tmp_path / "doc.xml"
        xml.write_text("<a>" + "x" * 100 + "</a>", encoding="utf-8")
        _expect_storage_error(xml, "magic")


class TestEngineStoreSelection:
    def test_from_file_auto_detects(self, saved, tmp_path):
        doc, path = saved
        xml = tmp_path / "site.xml"
        xml.write_text(XML, encoding="utf-8")
        query = "count($input//person)"
        assert Engine.from_file(str(xml)).run(query) == [2]
        engine = Engine.from_file(str(path))
        assert engine.run(query) == [2]
        assert engine.document.store_kind == "columnar"

    def test_from_file_object_refuses_columnar(self, saved):
        _, path = saved
        with pytest.raises(ReproError) as err:
            Engine.from_file(str(path), store="object")
        assert "columnar" in str(err.value)

    def test_from_file_unknown_store(self, saved):
        _, path = saved
        with pytest.raises(ReproError):
            Engine.from_file(str(path), store="parquet")

    def test_catalog_columnar_entry(self, saved):
        from repro.serve import DocumentCatalog
        _, path = saved
        catalog = DocumentCatalog()
        catalog.add_columnar_file("site", str(path))
        catalog.add_file("auto", str(path))
        for name in ("site", "auto"):
            engine = catalog.engine(name)
            assert engine.document.store_kind == "columnar"
            assert engine.run("count($input//person)") == [2]


def run_cli(*argv):
    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


class TestCliIndex:
    def test_index_verify_query_round_trip(self, tmp_path):
        xml = tmp_path / "m.xml"
        doc = member_document(150, depth=4, tag_count=4, seed=7)
        xml.write_text(serialize(doc.root), encoding="utf-8")
        rpxc = tmp_path / "m.rpxc"
        code, output = run_cli("index", str(xml), "-o", str(rpxc),
                               "--verify")
        assert code == 0
        assert "verified" in output and str(rpxc.name) in output
        expected_code, expected = run_cli(
            "query", "$input//t01/t02", "--doc", str(xml),
            "--format", "xml")
        got_code, got = run_cli(
            "query", "$input//t01/t02", "--doc", str(rpxc),
            "--store", "columnar", "--format", "xml")
        assert expected_code == got_code == 0
        assert got == expected

    def test_index_default_output_name(self, tmp_path):
        xml = tmp_path / "d.xml"
        xml.write_text(XML, encoding="utf-8")
        code, output = run_cli("index", str(xml))
        assert code == 0
        assert (tmp_path / "d.rpxc").exists()

    def test_query_store_object_on_columnar_errors(self, tmp_path):
        xml = tmp_path / "d.xml"
        xml.write_text(XML, encoding="utf-8")
        run_cli("index", str(xml))
        code, _ = run_cli("query", "count($input//person)",
                          "--doc", str(tmp_path / "d.rpxc"),
                          "--store", "object")
        assert code == 2

    def test_query_corrupt_index_reports_typed_error(self, tmp_path):
        xml = tmp_path / "d.xml"
        xml.write_text(XML, encoding="utf-8")
        run_cli("index", str(xml))
        rpxc = tmp_path / "d.rpxc"
        data = bytearray(rpxc.read_bytes())
        data[-3] ^= 0x01
        rpxc.write_bytes(bytes(data))
        code, _ = run_cli("query", "count($input//person)",
                          "--doc", str(rpxc))
        assert code == 2
