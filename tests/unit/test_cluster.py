"""The scatter-gather coordinator (:mod:`repro.serve.cluster`).

Fast paths (scatter planning, merge, framing, inline transport) run
in-process; a small set of tests drives real worker subprocesses to
cover spawn, kill/respawn, shutdown-reaping and the no-orphan
guarantee.
"""

from __future__ import annotations

import io
import os
import pickle
import signal
import time

import pytest

from repro import Engine, IndexedDocument
from repro.data import xmark_document
from repro.guard import (Budgets, BudgetExceeded, InternalError,
                         ReproError, ServiceClosed, ServiceOverloaded,
                         WorkerLost)
from repro.serve import (BreakerPolicy, ClusterLayout, ClusterService,
                         QueryRequest, merge_shard_results, scatter_plan)
from repro.serve.worker import (MAX_FRAME_BYTES, recv_frame, send_frame,
                                wire_safe_error)


@pytest.fixture(scope="module")
def xmark_idx():
    return xmark_document(40, seed=11)


@pytest.fixture(scope="module")
def layout(xmark_idx, tmp_path_factory):
    directory = tmp_path_factory.mktemp("cluster-layout")
    return ClusterLayout.build({"xmark": xmark_idx.columns},
                               str(directory), 4)


@pytest.fixture(scope="module")
def baseline(xmark_idx):
    return Engine(IndexedDocument(columns=xmark_idx.columns))


@pytest.fixture()
def inline(layout):
    service = ClusterService(layout, workers=2, transport="inline")
    yield service
    service.close()


def keys(sequence):
    return [getattr(item, "pre", item) for item in sequence]


# -- framing -----------------------------------------------------------------


def test_frame_round_trip():
    buffer = io.BytesIO()
    message = {"type": "task", "task_id": 7, "query": "$input//a"}
    send_frame(buffer, message)
    buffer.seek(0)
    assert recv_frame(buffer) == message
    assert recv_frame(buffer) is None  # clean EOF


def test_frame_truncation_is_typed():
    buffer = io.BytesIO()
    send_frame(buffer, {"payload": "x" * 100})
    truncated = io.BytesIO(buffer.getvalue()[:-5])
    with pytest.raises(InternalError):
        recv_frame(truncated)


def test_frame_length_bound():
    buffer = io.BytesIO()
    import struct
    buffer.write(struct.pack("<Q", MAX_FRAME_BYTES + 1))
    buffer.seek(0)
    with pytest.raises(InternalError):
        recv_frame(buffer)


def test_wire_safe_error_wraps_and_pickles():
    class Hostile(Exception):
        def __reduce__(self):
            raise TypeError("not today")

    safe = wire_safe_error(Hostile("boom"))
    clone = pickle.loads(pickle.dumps(safe))
    assert isinstance(clone, ReproError)
    typed = wire_safe_error(BudgetExceeded("wall", 1.0, 2.0))
    assert typed.code == "REPRO-BUDGET-WALL"


# -- scatter planning --------------------------------------------------------


SCATTERABLE = [
    "$input//person/name",
    "$input//person[profile]/name",
    "$input/site/people/person/@id",
    "$input//open_auction//increase",
]
NOT_SCATTERABLE = [
    "count($input//item)",                      # aggregate
    "$input//bidder[2]",                        # positional
    "for $p in $input//person return $p/name",  # FLWOR
    "$input/site[people]/regions",              # predicated first step
    "$input/*[people]",                         # wildcard first step + pred
]


@pytest.mark.parametrize("query", SCATTERABLE)
def test_scatterable(baseline, query):
    assert scatter_plan(baseline.compile(query), "site")


@pytest.mark.parametrize("query", NOT_SCATTERABLE)
def test_not_scatterable(baseline, query):
    assert not scatter_plan(baseline.compile(query), "site")


def test_unpredicated_first_step_on_root_is_fine(baseline):
    assert scatter_plan(baseline.compile("$input/site/regions"), "site")


# -- merge -------------------------------------------------------------------


def test_merge_dedups_and_orders():
    streams = [[("n", 1), ("n", 5), ("n", 9)],
               [("n", 1), ("n", 3)],
               [("n", 1), ("n", 9), ("n", 12)]]
    assert merge_shard_results(streams) == [1, 3, 5, 9, 12]


def test_merge_rejects_atomics():
    with pytest.raises(InternalError):
        merge_shard_results([[("v", 42)]])


# -- inline coordinator ------------------------------------------------------


def test_inline_matches_baseline(inline, baseline):
    for query in SCATTERABLE + NOT_SCATTERABLE:
        expected = keys(baseline.execute(baseline.compile(query)))
        assert keys(inline.query("xmark", query)) == expected, query


def test_modes_are_recorded(inline):
    inline.query("xmark", "$input//person/name")
    inline.query("xmark", "count($input//item)")
    stats = inline.cluster_stats()
    assert stats.scattered == 1 and stats.whole_document == 1


def test_node_identity_matches_catalog(inline):
    results = inline.query("xmark", "$input//person/name")
    document = inline.catalog.engine("xmark").document
    assert all(item is document.node_at(item.pre) for item in results)


def test_unknown_document(inline):
    with pytest.raises(ReproError, match="unknown cluster document"):
        inline.query("nope", "$input//a")


def test_typed_error_crosses_boundary(inline):
    with pytest.raises(ReproError) as info:
        inline.query("xmark", "$input//person[")
    assert info.value.code.startswith("REPRO-")


def test_expired_deadline_is_budget_exceeded(layout):
    service = ClusterService(layout, workers=1, transport="inline",
                             clock=time.monotonic)
    try:
        with pytest.raises(BudgetExceeded):
            service.query("xmark", "$input//person/name", timeout=0.0)
    finally:
        service.close()


def test_queue_limit_sheds(layout):
    service = ClusterService(layout, workers=1, transport="inline",
                             queue_limit=1)
    try:
        # A scatter of a 3-shard document needs 3 slots; limit is 1.
        with pytest.raises(ServiceOverloaded):
            service.query("xmark", "$input//person/name")
    finally:
        service.close()


def test_closed_service_rejects(layout):
    service = ClusterService(layout, workers=1, transport="inline")
    service.close()
    with pytest.raises(ServiceClosed):
        service.query("xmark", "$input//person/name")
    service.close()  # idempotent


def test_from_catalog_round_trip(xmark_idx):
    from repro.serve import DocumentCatalog
    catalog = DocumentCatalog()
    catalog.add_document("xmark", xmark_idx)
    service = ClusterService.from_catalog(catalog, shard_count=3,
                                          workers=2, transport="inline")
    directory = service._owned_directory
    try:
        assert len(service.query("xmark", "$input//person/name")) == 40
        assert os.path.isdir(directory)
    finally:
        service.close()
    assert not os.path.exists(directory)


def test_default_budgets_flow_to_workers(layout):
    service = ClusterService(layout, workers=1, transport="inline",
                             default_budgets=Budgets(max_steps=1))
    try:
        with pytest.raises(BudgetExceeded):
            service.query("xmark", "$input//person/name")
    finally:
        service.close()


# -- real worker processes ---------------------------------------------------


def _orphan_pids(pids):
    alive = []
    for pid in pids:
        try:
            os.kill(pid, 0)
        except OSError:
            continue
        alive.append(pid)
    return alive


def test_process_cluster_end_to_end(layout, baseline):
    service = ClusterService(layout, workers=2)
    pids = []
    try:
        pids = list(service.worker_pids())
        assert all(pid is not None and pid != os.getpid()
                   for pid in pids)
        for query in ("$input//person/name", "count($input//item)"):
            expected = keys(baseline.execute(baseline.compile(query)))
            assert keys(service.query("xmark", query,
                                      timeout=60.0)) == expected
    finally:
        service.close()
    assert _orphan_pids(pids) == []


def test_process_kill_respawns_and_retries(layout):
    service = ClusterService(layout, workers=2,
                             breaker_policy=BreakerPolicy())
    try:
        victim = service.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.time() + 10
        while service.worker_pids()[0] == victim:
            assert time.time() < deadline, "worker never respawned"
            time.sleep(0.05)
        assert len(service.query("xmark", "$input//person/name",
                                 timeout=60.0)) == 40
        assert service.cluster_stats().respawns >= 1
    finally:
        service.close()


def test_close_drain_false_fails_pending(layout):
    service = ClusterService(layout, workers=1)
    pids = list(service.worker_pids())
    pending = service.submit(QueryRequest(
        document="xmark", query="$input//person/name"))
    service.close(drain=False)
    response = pending.response(timeout=10.0)
    # Either the task raced to completion or it was failed typed —
    # never a hang, never a bare error.
    assert response.error is None or isinstance(response.error,
                                                (ServiceClosed, WorkerLost))
    assert _orphan_pids(pids) == []


def test_worker_lost_without_respawn(layout):
    service = ClusterService(layout, workers=1, respawn=False)
    try:
        os.kill(service.worker_pids()[0], signal.SIGKILL)
        time.sleep(0.2)
        with pytest.raises((WorkerLost, ReproError)):
            service.query("xmark", "$input//person/name", timeout=10.0)
    finally:
        service.close()
