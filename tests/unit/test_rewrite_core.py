"""The four core rewrite families (paper Section 3), rule by rule."""

from repro.typing import ItemType, infer_type
from repro.xmltree.axes import Axis
from repro.xmltree.nodetest import NameTest
from repro.xqcore import (CaseClause, CCall, CDDO, CEmpty, CExpr, CFor,
                          CGenCmp, CLet, CLit, CStep, CTypeswitch, CVar, Var,
                          alpha_canonical, fresh_var, normalize_query,
                          usage_count, walk)
from repro.rewrite import (RewriteOptions, remove_redundant_ddo,
                           rewrite_flwor, rewrite_to_tpnf,
                           rewrite_typeswitches, split_loops)
from repro.rewrite.facts import sequence_facts
from repro.xquery import parse_query
from repro.xquery.abbrev import resolve_abbreviations


def norm(text):
    return normalize_query(resolve_abbreviations(parse_query(text))).core


def tpnf(text):
    return rewrite_to_tpnf(norm(text))


def canon(expr):
    return alpha_canonical(expr)


def step(axis, name, input_expr):
    return CStep(axis, NameTest(name), input_expr)


class TestTypeswitchRules:
    def test_dead_numeric_case_removed(self):
        """Node-typed predicate → numeric case pruned → fn:boolean."""
        dot = fresh_var("dot", origin="focus")
        case_var = fresh_var("v", origin="focus")
        default_var = fresh_var("v", origin="focus")
        position = fresh_var("position", origin="focus")
        switch = CTypeswitch(
            step(Axis.CHILD, "b", CVar(dot)),
            [CaseClause("numeric", case_var,
                        CGenCmp("=", CVar(position), CVar(case_var)))],
            default_var, CCall("fn:boolean", [CVar(default_var)]))
        result = rewrite_typeswitches(switch)
        assert isinstance(result, CLet)
        assert result.var == default_var

    def test_sure_numeric_case_selected(self):
        dot = fresh_var("dot", origin="focus")
        case_var = fresh_var("v", origin="focus")
        default_var = fresh_var("v", origin="focus")
        position = fresh_var("position", origin="focus")
        switch = CTypeswitch(
            CLit(1),
            [CaseClause("numeric", case_var,
                        CGenCmp("=", CVar(position), CVar(case_var)))],
            default_var, CCall("fn:boolean", [CVar(default_var)]))
        result = rewrite_typeswitches(switch)
        assert isinstance(result, CLet)
        assert result.var == case_var

    def test_unknown_type_keeps_typeswitch(self):
        user = fresh_var("u")  # user variable: type unknown
        case_var = fresh_var("v", origin="focus")
        default_var = fresh_var("v", origin="focus")
        switch = CTypeswitch(
            CVar(user),
            [CaseClause("numeric", case_var, CLit(True))],
            default_var, CLit(False))
        result = rewrite_typeswitches(switch)
        assert isinstance(result, CTypeswitch)

    def test_full_query_node_predicate(self):
        result = rewrite_typeswitches(norm("$d/person[emailaddress]"))
        assert not any(isinstance(node, CTypeswitch)
                       for node in walk(result))

    def test_full_query_numeric_predicate(self):
        result = rewrite_typeswitches(norm("$d/person[2]"))
        assert not any(isinstance(node, CTypeswitch)
                       for node in walk(result))
        comparisons = [node for node in walk(result)
                       if isinstance(node, CGenCmp)]
        assert comparisons


class TestFLWORRules:
    def test_dead_let_removed(self):
        x = fresh_var("x")
        expr = CLet(x, CLit(1), CLit(2))
        assert rewrite_flwor(expr) == CLit(2)

    def test_single_use_inlined(self):
        x = fresh_var("x")
        expr = CLet(x, CLit(1), CGenCmp("=", CVar(x), CLit(1)))
        result = rewrite_flwor(expr)
        assert result == CGenCmp("=", CLit(1), CLit(1))

    def test_multi_use_not_inlined(self):
        x = fresh_var("x")
        d = fresh_var("d", origin="external")
        value = step(Axis.CHILD, "a", CVar(d))
        expr = CLet(x, value, CGenCmp("=", CVar(x), CVar(x)))
        result = rewrite_flwor(expr)
        assert isinstance(result, CLet)

    def test_variable_binding_always_inlined(self):
        x, y = fresh_var("x"), fresh_var("y")
        expr = CLet(x, CVar(y), CGenCmp("=", CVar(x), CVar(x)))
        result = rewrite_flwor(expr)
        assert result == CGenCmp("=", CVar(y), CVar(y))

    def test_unused_position_variable_dropped(self):
        x, i = fresh_var("x"), fresh_var("i")
        d = fresh_var("d", origin="external")
        loop = CFor(x, i, step(Axis.CHILD, "a", CVar(d)), None,
                    step(Axis.CHILD, "b", CVar(x)))
        result = rewrite_flwor(loop)
        assert isinstance(result, CFor)
        assert result.position_var is None

    def test_used_position_variable_kept(self):
        x, i = fresh_var("x"), fresh_var("i")
        d = fresh_var("d", origin="external")
        loop = CFor(x, i, step(Axis.CHILD, "a", CVar(d)), None, CVar(i))
        result = rewrite_flwor(loop)
        assert isinstance(result, CFor)
        assert result.position_var == i

    def test_for_identity(self):
        x = fresh_var("x")
        d = fresh_var("d", origin="external")
        source = step(Axis.CHILD, "a", CVar(d))
        loop = CFor(x, None, source, None, CVar(x))
        assert rewrite_flwor(loop) == source

    def test_for_identity_blocked_by_where(self):
        x = fresh_var("x")
        d = fresh_var("d", origin="external")
        loop = CFor(x, None, step(Axis.CHILD, "a", CVar(d)),
                    CCall("fn:boolean", [CVar(x)]), CVar(x))
        result = rewrite_flwor(loop)
        assert isinstance(result, CFor)

    def test_singleton_for_becomes_inline(self):
        x = fresh_var("x")
        d = fresh_var("d", origin="external")  # singleton by convention
        loop = CFor(x, None, CVar(d), None, step(Axis.CHILD, "a", CVar(x)))
        result = rewrite_flwor(loop)
        # for over a singleton → let → inlined
        assert result == step(Axis.CHILD, "a", CVar(d))

    def test_usage_count_loop_counts_as_many(self):
        x, y = fresh_var("x"), fresh_var("y")
        d = fresh_var("d", origin="external")
        loop = CFor(y, None, step(Axis.CHILD, "a", CVar(d)), None, CVar(x))
        assert usage_count(loop, x) == 2


class TestDocOrderRules:
    def test_ddo_of_singleton_removed(self):
        d = fresh_var("d", origin="external")
        assert remove_redundant_ddo(CDDO(CVar(d))) == CVar(d)

    def test_ddo_of_step_from_singleton_removed(self):
        d = fresh_var("d", origin="external")
        expr = CDDO(step(Axis.DESCENDANT, "a", CVar(d)))
        assert remove_redundant_ddo(expr) == step(Axis.DESCENDANT, "a",
                                                  CVar(d))

    def test_top_level_unproven_ddo_kept(self):
        u = fresh_var("u")  # unknown user variable
        expr = CDDO(CVar(u))
        assert isinstance(remove_redundant_ddo(expr), CDDO)

    def test_ddo_under_ddo_removed(self):
        u = fresh_var("u")
        expr = CDDO(CDDO(CVar(u)))
        result = remove_redundant_ddo(expr)
        assert isinstance(result, CDDO)
        assert not isinstance(result.arg, CDDO)

    def test_ddo_under_boolean_removed(self):
        u = fresh_var("u")
        expr = CCall("fn:boolean", [CDDO(CVar(u))])
        result = remove_redundant_ddo(expr)
        assert result == CCall("fn:boolean", [CVar(u)])

    def test_ddo_under_count_kept(self):
        u = fresh_var("u")
        expr = CCall("fn:count", [CDDO(CVar(u))])
        result = remove_redundant_ddo(expr)
        assert isinstance(result.args[0], CDDO)

    def test_ddo_in_comparison_removed(self):
        u = fresh_var("u")
        expr = CGenCmp("=", CDDO(CVar(u)), CLit("x"))
        result = remove_redundant_ddo(expr)
        assert result == CGenCmp("=", CVar(u), CLit("x"))

    def test_for_source_under_outer_ddo_removed(self):
        u = fresh_var("u")
        x = fresh_var("x")
        loop = CFor(x, None, CDDO(CVar(u)), None,
                    step(Axis.CHILD, "a", CVar(x)))
        result = remove_redundant_ddo(CDDO(loop))
        inner = result.arg if isinstance(result, CDDO) else result
        assert not isinstance(inner.source, CDDO)

    def test_for_source_with_position_var_kept(self):
        u = fresh_var("u")
        x, i = fresh_var("x"), fresh_var("i")
        loop = CFor(x, i, CDDO(CVar(u)), None,
                    CGenCmp("=", CVar(i), CLit(1)))
        result = remove_redundant_ddo(CDDO(loop))
        inner = result.arg if isinstance(result, CDDO) else result
        assert isinstance(inner.source, CDDO)

    def test_full_query_single_outer_ddo_for_descendant(self):
        result = tpnf("$d//person/name")
        ddos = [node for node in walk(result) if isinstance(node, CDDO)]
        assert len(ddos) <= 1


class TestFacts:
    def test_child_chain_is_separated(self):
        core = tpnf("$d/site/people/person")
        facts = sequence_facts(core)
        assert facts.ord_nodup
        assert facts.separated

    def test_descendant_not_separated(self):
        core = tpnf("$d//person")
        facts = sequence_facts(core)
        assert facts.ord_nodup
        assert not facts.separated

    def test_descendant_then_child_sorted(self):
        # //person/name is sorted only thanks to the re-sorting ddo
        core = tpnf("$d//person/name")
        facts = sequence_facts(core)
        assert facts.ord_nodup  # because the outer ddo survives


class TestLoopSplit:
    def build_nested(self, with_positions=False):
        d = fresh_var("d", origin="external")
        x, y = fresh_var("x"), fresh_var("y")
        i = fresh_var("i") if with_positions else None
        inner = CFor(y, i, step(Axis.CHILD, "b", CVar(x)), None, CVar(y))
        return CFor(x, None, step(Axis.DESCENDANT, "a", CVar(d)), None,
                    inner), x, y

    def test_splits_nested_loops(self):
        loop, x, y = self.build_nested()
        result = split_loops(loop)
        assert isinstance(result, CFor)
        assert result.var == y
        assert isinstance(result.source, CFor)
        assert result.source.var == x

    def test_blocked_by_position_variable(self):
        loop, x, y = self.build_nested(with_positions=True)
        result = split_loops(loop)
        assert result.var == x  # unchanged

    def test_blocked_by_outer_var_in_inner_body(self):
        d = fresh_var("d", origin="external")
        x, y = fresh_var("x"), fresh_var("y")
        inner = CFor(y, None, step(Axis.CHILD, "b", CVar(x)), None, CVar(x))
        loop = CFor(x, None, step(Axis.DESCENDANT, "a", CVar(d)), None, inner)
        result = split_loops(loop)
        assert result.var == x

    def test_where_clauses_travel(self):
        d = fresh_var("d", origin="external")
        x, y = fresh_var("x"), fresh_var("y")
        cond = CCall("fn:boolean", [step(Axis.CHILD, "c", CVar(y))])
        inner = CFor(y, None, step(Axis.CHILD, "b", CVar(x)), cond, CVar(y))
        loop = CFor(x, None, step(Axis.DESCENDANT, "a", CVar(d)), None, inner)
        result = split_loops(loop)
        assert result.var == y
        assert result.where is cond


class TestPipeline:
    def test_figure1_variants_converge(self):
        variants = [
            "$d//person[emailaddress]/name",
            "(for $x in $d//person[emailaddress] return $x)/name",
            "let $x := (for $y in $d//person where $y/emailaddress "
            "return $y) return $x/name",
        ]
        canons = {canon(tpnf(text)) for text in variants}
        assert len(canons) == 1

    def test_q5_differs_from_q1(self):
        q1 = canon(tpnf("$d//person[emailaddress]/name"))
        q5 = canon(tpnf(
            "for $x in $d//person[emailaddress] return $x/name"))
        assert q1 != q5

    def test_options_disable_families(self):
        core = norm("$d//person[emailaddress]/name")
        untouched = rewrite_to_tpnf(core, options=RewriteOptions.none())
        assert canon(untouched) == canon(core)

    def test_pipeline_is_idempotent(self):
        result = tpnf("$d//person[emailaddress]/name")
        assert canon(rewrite_to_tpnf(result)) == canon(result)

    def test_positional_query_keeps_position(self):
        result = tpnf("$d//person[position() = 1]")
        loops = [node for node in walk(result)
                 if isinstance(node, CFor) and node.position_var is not None]
        assert loops


class TestTypeInference:
    def test_literals(self):
        assert infer_type(CLit(1)) is ItemType.NUMERIC
        assert infer_type(CLit("x")) is ItemType.STRING
        assert infer_type(CLit(True)) is ItemType.BOOLEAN
        assert infer_type(CEmpty()) is ItemType.EMPTY

    def test_steps_are_nodes(self):
        d = fresh_var("d", origin="external")
        assert infer_type(step(Axis.CHILD, "a", CVar(d))) is ItemType.NODES

    def test_functions(self):
        assert infer_type(CCall("fn:count", [CEmpty()])) is ItemType.NUMERIC
        assert infer_type(CCall("fn:boolean", [CEmpty()])) is ItemType.BOOLEAN
        assert infer_type(CCall("fn:mystery", [])) is ItemType.ANY

    def test_let_propagates(self):
        x = fresh_var("x")
        expr = CLet(x, CLit(1), CVar(x))
        assert infer_type(expr) is ItemType.NUMERIC

    def test_for_body_type(self):
        d = fresh_var("d", origin="external")
        x = fresh_var("x")
        loop = CFor(x, None, step(Axis.CHILD, "a", CVar(d)), None,
                    CCall("fn:count", [CVar(x)]))
        assert infer_type(loop) is ItemType.NUMERIC

    def test_unknown_user_variable_any(self):
        assert infer_type(CVar(fresh_var("u"))) is ItemType.ANY

    def test_union_type(self):
        assert ItemType.NUMERIC.union(ItemType.NUMERIC) is ItemType.NUMERIC
        assert ItemType.NUMERIC.union(ItemType.STRING) is ItemType.ANY
        assert ItemType.EMPTY.union(ItemType.NODES) is ItemType.NODES
