"""Region encoding and node-level invariants."""

from repro.xmltree import (AttributeNode, DocumentNode, ElementNode,
                           TextNode, assign_regions, parse_xml)


def build_sample():
    doc = DocumentNode()
    root = ElementNode("a")
    doc.append_child(root)
    b = ElementNode("b")
    b.set_attribute("id", "1")
    root.append_child(b)
    b.append_child(TextNode("hello"))
    c = ElementNode("c")
    root.append_child(c)
    assign_regions(doc)
    return doc, root, b, c


class TestRegionEncoding:
    def test_pre_orders_document(self):
        doc, root, b, c = build_sample()
        assert doc.pre == 0
        assert root.pre == 1
        assert b.pre == 2
        # attribute numbered right after its owner element
        assert b.attributes[0].pre == 3
        assert c.pre > b.attributes[0].pre

    def test_end_covers_subtree(self):
        doc, root, b, c = build_sample()
        assert root.end == c.pre
        assert doc.end == c.pre
        assert b.end >= b.attributes[0].pre

    def test_levels(self):
        doc, root, b, c = build_sample()
        assert doc.level == 0
        assert root.level == 1
        assert b.level == 2
        assert b.attributes[0].level == 3
        assert c.level == 2

    def test_contains(self):
        doc, root, b, c = build_sample()
        assert root.contains(b)
        assert root.contains(c)
        assert doc.contains(root)
        assert not b.contains(c)
        assert not b.contains(b)
        assert b.contains_or_self(b)

    def test_ancestor_descendant_symmetry(self):
        doc, root, b, c = build_sample()
        assert b.is_descendant_of(root)
        assert root.is_ancestor_of(b)
        assert not root.is_descendant_of(b)

    def test_post_order_property(self):
        # post(ancestor) > post(descendant) for element ancestors
        doc = parse_xml("<a><b><c/></b><d/></a>")
        a = doc.document_element
        b = a.children[0]
        c = b.children[0]
        assert a.post > b.post > c.post

    def test_deep_tree_no_recursion_error(self):
        doc = DocumentNode()
        node = ElementNode("n")
        doc.append_child(node)
        for _ in range(5000):
            child = ElementNode("n")
            node.append_child(child)
            node = child
        count = assign_regions(doc)
        assert count == 5002
        assert node.level == 5001


class TestNodeContent:
    def test_string_value_concatenates_text(self):
        doc = parse_xml("<a>x<b>y</b>z</a>")
        assert doc.document_element.string_value() == "xyz"
        assert doc.string_value() == "xyz"

    def test_attribute_string_value(self):
        doc = parse_xml('<a id="42"/>')
        attr = doc.document_element.attributes[0]
        assert attr.string_value() == "42"
        assert attr.name == "id"

    def test_get_attribute(self):
        doc = parse_xml('<a id="42" x="y"/>')
        element = doc.document_element
        assert element.get_attribute("id") == "42"
        assert element.get_attribute("x") == "y"
        assert element.get_attribute("missing") is None

    def test_root(self):
        doc = parse_xml("<a><b><c/></b></a>")
        c = doc.document_element.children[0].children[0]
        assert c.root() is doc

    def test_iter_descendants_in_document_order(self):
        doc = parse_xml("<a><b><c/></b><d/></a>")
        names = [node.name for node in doc.document_element.iter_descendants()
                 if node.name]
        assert names == ["b", "c", "d"]

    def test_iter_ancestors(self):
        doc = parse_xml("<a><b><c/></b></a>")
        c = doc.document_element.children[0].children[0]
        names = [getattr(node, "name", None) for node in c.iter_ancestors()]
        assert names == ["b", "a", None]

    def test_kinds(self):
        doc = parse_xml('<a id="1">t</a>')
        element = doc.document_element
        assert doc.kind == "document"
        assert element.kind == "element"
        assert element.attributes[0].kind == "attribute"
        assert element.children[0].kind == "text"
