"""IndexedDocument: tag streams, region slices, document order utilities."""

from repro.xmltree import (IndexedDocument, ddo, document_order,
                           is_distinct_doc_ordered, parse_xml)


def make():
    return IndexedDocument.from_string(
        "<a><b><a><c/></a></b><c/><b/></a>")


class TestStreams:
    def test_tag_streams_sorted(self):
        doc = make()
        for tag, stream in doc.tag_streams.items():
            pres = [node.pre for node in stream]
            assert pres == sorted(pres), tag

    def test_stream_contents(self):
        doc = make()
        assert len(doc.stream("a")) == 2
        assert len(doc.stream("b")) == 2
        assert len(doc.stream("c")) == 2
        assert doc.stream("nope") == []

    def test_nodes_by_pre_dense(self):
        doc = make()
        assert [node.pre for node in doc.nodes_by_pre] == list(
            range(doc.size))

    def test_node_at(self):
        doc = make()
        for pre in range(doc.size):
            assert doc.node_at(pre).pre == pre

    def test_attribute_streams(self):
        doc = IndexedDocument.from_string('<a id="1"><b id="2" x="3"/></a>')
        assert len(doc.attribute_streams["id"]) == 2
        assert len(doc.attribute_streams["x"]) == 1

    def test_text_stream(self):
        doc = IndexedDocument.from_string("<a>x<b>y</b></a>")
        assert [t.text for t in doc.text_stream] == ["x", "y"]

    def test_all_elements(self):
        doc = make()
        assert len(doc.all_elements()) == 6


class TestRegionSlices:
    def test_stream_in_region(self):
        doc = make()
        root = doc.root.document_element
        inner_b = doc.stream("b")[0]
        in_b = doc.stream_in_region("a", inner_b)
        assert len(in_b) == 1  # the nested <a>
        assert in_b[0].level == 3

    def test_include_self(self):
        doc = make()
        nested_a = doc.stream("a")[1]
        assert doc.stream_in_region("a", nested_a) == []
        with_self = doc.stream_in_region("a", nested_a, include_self=True)
        assert with_self == [nested_a]

    def test_empty_tag(self):
        doc = make()
        assert doc.stream_in_region("zzz", doc.root) == []


class TestDocumentOrder:
    def test_ddo_sorts_and_dedups(self):
        doc = make()
        nodes = doc.all_elements()
        shuffled = nodes[::-1] + nodes[:2]
        result = ddo(shuffled)
        assert result == nodes

    def test_ddo_empty(self):
        assert ddo([]) == []

    def test_ddo_idempotent(self):
        doc = make()
        nodes = doc.all_elements()
        assert ddo(ddo(nodes)) == ddo(nodes)

    def test_document_order_keeps_duplicates(self):
        doc = make()
        nodes = doc.all_elements()
        result = document_order([nodes[0], nodes[0]])
        assert len(result) == 2

    def test_is_distinct_doc_ordered(self):
        doc = make()
        nodes = doc.all_elements()
        assert is_distinct_doc_ordered(nodes)
        assert not is_distinct_doc_ordered(nodes[::-1])
        assert not is_distinct_doc_ordered([nodes[0], nodes[0]])
        assert is_distinct_doc_ordered([])
        assert is_distinct_doc_ordered([nodes[0]])
