"""Distributed-trace stitching: context envelope, wire packing, and
cross-process grafting (``repro.trace.distrib``).

The invariants under test are the ones that keep a stitched trace
honest across unrelated monotonic clocks: only relative offsets and
durations cross the wire, the coordinator supplies every absolute
anchor, grafted ids live in the destination trace's id space, buffer
caps and the no-dropped-parent invariant survive the graft, and remote
``op_stats`` merge under negative synthetic keys that can never collide
with local ``id()`` keys.
"""

import pytest

from repro.trace import Trace, Tracer, graft_remote, pack_trace
from repro.trace.distrib import WIRE_VERSION, TraceContext


def make_trace(clock=None, **kwargs):
    tracer = Tracer(clock=clock) if clock is not None else Tracer()
    return tracer.begin("request", **kwargs)


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds
        return self.now


# -- TraceContext ------------------------------------------------------------


def test_context_round_trip():
    context = TraceContext(trace_id="00000042", parent_span_id=7)
    assert TraceContext.from_wire(context.to_wire()) == context


@pytest.mark.parametrize("wire", [
    None,
    "not-a-dict",
    {},
    {"trace_id": "x"},
    {"parent_span_id": 3},
    {"trace_id": 17, "parent_span_id": 3},
    {"trace_id": "x", "parent_span_id": "3"},
])
def test_context_malformed_means_unsampled(wire):
    assert TraceContext.from_wire(wire) is None


# -- pack_trace --------------------------------------------------------------


def test_pack_trace_is_relative_only():
    clock = FakeClock(5000.0)
    trace = make_trace(clock=clock)
    clock.advance(0.25)
    with trace.span("execute", shard=2):
        clock.advance(1.0)
    trace.finish()
    payload = pack_trace(trace)
    assert payload["version"] == WIRE_VERSION
    offsets = {record["name"]: record["offset"]
               for record in payload["spans"]}
    # The root is at offset zero and the child at its in-worker offset:
    # no absolute worker clock value appears anywhere in the payload.
    assert offsets["request"] == 0.0
    assert offsets["execute"] == pytest.approx(0.25)
    durations = {record["name"]: record["duration"]
                 for record in payload["spans"]}
    assert durations["execute"] == pytest.approx(1.0)
    assert payload["duration"] == pytest.approx(1.25)
    for record in payload["spans"]:
        assert record["offset"] >= 0.0
        assert record["duration"] >= 0.0


def test_pack_trace_carries_op_stats_and_drops():
    trace = make_trace()
    trace.record_op(12345, "TupleTreePattern", 0.5, rows=10)
    trace.record_op(12345, "TupleTreePattern", 0.25, rows=5)
    trace.finish()
    payload = pack_trace(trace)
    (stat,) = payload["op_stats"]
    assert stat["name"] == "TupleTreePattern"
    assert stat["calls"] == 2
    assert stat["rows"] == 15
    assert stat["seconds"] == pytest.approx(0.75)


# -- graft_remote ------------------------------------------------------------


def remote_payload(clock_origin=9999.0):
    """A two-level worker trace packed for the wire."""
    clock = FakeClock(clock_origin)
    trace = make_trace(clock=clock, worker=3)
    clock.advance(0.1)
    with trace.span("execute"):
        clock.advance(0.2)
        with trace.span("pattern:scjoin"):
            clock.advance(0.3)
        clock.advance(0.05)
    trace.record_op(777, "Select", 0.2, rows=4)
    trace.finish()
    return pack_trace(trace)


def test_graft_rebases_onto_coordinator_anchor():
    clock = FakeClock(10.0)
    trace = make_trace(clock=clock)
    clock.advance(2.0)
    stored = graft_remote(trace, remote_payload(), anchor=11.0,
                          parent_id=trace.root.span_id,
                          attrs={"worker": 3, "shard": 1})
    assert stored == 3
    by_name = {span.name: span for span in trace.spans
               if span is not trace.root}
    worker_root = by_name["worker"] if "worker" in by_name \
        else by_name["request"]
    # Anchored on the coordinator clock, never the worker's origin.
    assert worker_root.start == pytest.approx(11.0)
    assert by_name["execute"].start == pytest.approx(11.1)
    assert by_name["pattern:scjoin"].start == pytest.approx(11.3)
    # Attrs only decorate grafted top-level spans.
    assert worker_root.attrs["shard"] == 1
    assert "shard" not in by_name["execute"].attrs
    # Parent chain: coordinator root -> worker root -> execute -> join.
    assert worker_root.parent_id == trace.root.span_id
    assert by_name["execute"].parent_id == worker_root.span_id
    assert by_name["pattern:scjoin"].parent_id \
        == by_name["execute"].span_id
    # Remote ids were re-allocated in the destination id space.
    ids = [span.span_id for span in trace.spans]
    assert len(ids) == len(set(ids))


def test_graft_never_produces_negative_offsets_under_skew():
    # Worker clock origin wildly ahead of the coordinator's: offsets
    # stay relative so the grafted spans still land at the anchor.
    trace = make_trace(clock=FakeClock(1.0))
    graft_remote(trace, remote_payload(clock_origin=1e9), anchor=1.5,
                 parent_id=trace.root.span_id)
    for span in trace.spans:
        if span is trace.root:
            continue
        assert span.start >= trace.root.start


def test_graft_version_mismatch_fails_loudly():
    trace = make_trace()
    payload = remote_payload()
    payload["version"] = WIRE_VERSION + 1
    with pytest.raises(ValueError, match="version"):
        graft_remote(trace, payload, anchor=0.0,
                     parent_id=trace.root.span_id)


def test_graft_respects_max_spans_and_counts_drops():
    trace = make_trace()
    trace.max_spans = len(trace.spans) + 1
    dropped_before = trace.dropped_spans
    stored = graft_remote(trace, remote_payload(), anchor=0.0,
                          parent_id=trace.root.span_id)
    # Only the worker root fits; its descendants are dropped + counted.
    assert stored == 1
    assert trace.dropped_spans == dropped_before + 2


def test_graft_drops_children_of_dropped_parents():
    payload = remote_payload()
    # Simulate a worker-side drop: the middle span is missing but its
    # child still references it.
    payload["spans"] = [record for record in payload["spans"]
                       if record["name"] != "execute"]
    payload["dropped_spans"] = 1
    trace = make_trace()
    stored = graft_remote(trace, payload, anchor=0.0,
                          parent_id=trace.root.span_id)
    assert stored == 1  # worker root only
    names = {span.name for span in trace.spans}
    assert "pattern:scjoin" not in names
    # Worker-reported drop + the orphaned child dropped here.
    assert trace.dropped_spans == 2
    # No stored span references a missing parent.
    ids = {span.span_id for span in trace.spans}
    for span in trace.spans:
        assert span.parent_id is None or span.parent_id in ids


def test_remote_op_stats_merge_under_negative_keys():
    trace = make_trace()
    trace.record_op(424242, "Select", 0.1, rows=1)
    graft_remote(trace, remote_payload(), anchor=0.0,
                 parent_id=trace.root.span_id)
    graft_remote(trace, remote_payload(), anchor=0.5,
                 parent_id=trace.root.span_id)
    local = [key for key in trace.op_stats if key > 0]
    remote = [key for key in trace.op_stats if key < 0]
    assert local == [424242]
    assert len(remote) == 1  # one synthetic key per operator name
    merged = trace.op_stats[remote[0]]
    assert merged.name == "Select"
    assert merged.calls == 2  # both grafts folded into the same stat
    assert merged.seconds == pytest.approx(0.4)
    # The local aggregate is untouched.
    assert trace.op_stats[424242].calls == 1
