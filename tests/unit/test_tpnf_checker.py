"""The TPNF' recognizer: the rewriting pipeline's contract.

For every query in the tree-pattern fragment, the rewritten core must
be recognized as TPNF' **and** the optimizer must then find exactly one
``TupleTreePattern`` — the Section 4.2 completeness claim ("the set of
rewrites presented here always finds the largest tree pattern within
the supported XQuery fragment"), tested operationally.
"""

import pytest

from repro import Engine
from repro.rewrite import check_tpnf

ENGINE = Engine.from_xml("<a/>")

IN_FRAGMENT = [
    "$d//person/name",
    "$d//person[emailaddress]/name",
    "$d/site/people/person",
    "$input/site/people/person[emailaddress]/profile/interest",
    "(for $x in $d//person[emailaddress] return $x)/name",
    "let $x := (for $y in $d//person where $y/emailaddress return $y) "
    "return $x/name",
    "$d//a[b[c[d]]]",
    "$d//a[b][c]/d",
    "$d//person/@id",
]

OUTSIDE_FRAGMENT = [
    ("$d//person[1]/name", "position"),
    ('$d//person[name = "John"]', "comparison"),
    ("$d//person[count(name) = 2]", "comparison"),
    ("count($d//person)", "function call"),
    ("$d//name/parent::person", "reverse axis"),
    ("for $x at $i in $d//a where $i = 1 return $x",
     "positional variable"),
]


class TestFragmentMembership:
    @pytest.mark.parametrize("query", IN_FRAGMENT)
    def test_in_fragment_recognized(self, query):
        report = check_tpnf(ENGINE.compile(query).tpnf)
        assert report, (query, report.reasons)

    @pytest.mark.parametrize("query,_", OUTSIDE_FRAGMENT,
                             ids=[reason for _, reason in OUTSIDE_FRAGMENT])
    def test_outside_fragment_rejected(self, query, _):
        report = check_tpnf(ENGINE.compile(query).tpnf)
        assert not report
        assert report.reasons


class TestCompletenessContract:
    """TPNF' membership ⟹ the optimizer detects a single pattern."""

    @pytest.mark.parametrize("query", IN_FRAGMENT)
    def test_single_pattern_for_fragment_members(self, query):
        compiled = ENGINE.compile(query)
        if check_tpnf(compiled.tpnf):
            assert compiled.tree_pattern_count() == 1, query

    def test_reasons_name_the_obstacle(self):
        report = check_tpnf(
            ENGINE.compile('$d//person[name = "x"]').tpnf)
        assert any("CGenCmp" in reason for reason in report.reasons)

    def test_positional_reported(self):
        report = check_tpnf(ENGINE.compile("$d//a[2]").tpnf)
        assert not report
