"""Every typed error crosses the process boundary intact.

The cluster coordinator receives worker failures as **pickled**
exceptions (see :mod:`repro.serve.worker`), so every member of the
:class:`~repro.guard.ReproError` taxonomy must survive a pickle
round-trip with its code, message, span and machine-readable context —
the default :class:`BaseException` reduction re-calls ``cls(message)``
and silently drops custom constructor state, which is exactly the bug
``ReproError.__reduce__`` exists to prevent.

The walk is reflexive: it enumerates ``ReproError.__subclasses__()``
transitively after importing the whole package, so a future error class
with a pickle-hostile constructor fails here the day it is added.
"""

from __future__ import annotations

import inspect
import pickle

import pytest

import repro.compiled.codegen  # noqa: F401  (register subclasses)
import repro.serve  # noqa: F401
from repro.guard import (BudgetExceeded, FallbackEvent, ReproError,
                         ServiceOverloaded, SourceSpan, WorkerLost)
from repro.serve.metrics import ServiceMetrics

_SAMPLES = {
    str: "sample",
    int: 3,
    float: 1.5,
    bool: True,
}


def _all_error_classes():
    seen = []
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        seen.append(cls)
        stack.extend(cls.__subclasses__())
    return sorted(seen, key=lambda cls: cls.__name__)


def _sample_for(parameter: inspect.Parameter):
    annotation = parameter.annotation
    for kind, value in _SAMPLES.items():
        if annotation is kind or f"{kind.__name__}" == str(annotation) \
                or f"Optional[{kind.__name__}]" in str(annotation):
            return value
    if "message" in parameter.name or parameter.name in ("kind",):
        return "sample"
    return "sample"


def _build(cls) -> ReproError:
    """Instantiate ``cls`` from its signature with sample values for
    every required parameter."""
    signature = inspect.signature(cls.__init__)
    args = []
    kwargs = {}
    for name, parameter in signature.parameters.items():
        if name == "self" or parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD):
            continue
        if parameter.default is not inspect.Parameter.empty:
            continue
        value = _sample_for(parameter)
        if parameter.kind is inspect.Parameter.KEYWORD_ONLY:
            kwargs[name] = value
        else:
            args.append(value)
    return cls(*args, **kwargs)


CLASSES = _all_error_classes()


def test_taxonomy_is_populated():
    names = {cls.__name__ for cls in CLASSES}
    assert {"ReproError", "BudgetExceeded", "StorageError",
            "ServiceOverloaded", "WorkerLost", "InjectedFault",
            "XQuerySyntaxError"} <= names


@pytest.mark.parametrize("cls", CLASSES,
                         ids=[cls.__name__ for cls in CLASSES])
def test_error_pickle_round_trip(cls):
    error = _build(cls)
    error.span = SourceSpan.from_offset("let $x := 1 return $x", 4)
    error.context["probe"] = 42
    clone = pickle.loads(pickle.dumps(error,
                                      protocol=pickle.HIGHEST_PROTOCOL))
    assert type(clone) is cls
    assert clone.code == error.code
    assert clone.message == error.message
    assert str(clone) == str(error)
    assert clone.span == error.span
    assert clone.context == error.context
    # Every public instance attribute survives, not just the base ones
    # (e.g. BudgetExceeded.limit, WorkerLost.worker_index).
    assert clone.__dict__ == error.__dict__


def test_budget_exceeded_keeps_constructor_state():
    error = BudgetExceeded("wall", 0.5, 0.75, elapsed_seconds=0.75,
                           steps=99)
    clone = pickle.loads(pickle.dumps(error))
    assert (clone.kind, clone.limit, clone.observed) == ("wall", 0.5, 0.75)
    assert clone.elapsed_seconds == 0.75 and clone.steps == 99
    assert clone.code == "REPRO-BUDGET-WALL"


def test_worker_lost_round_trip():
    error = WorkerLost("worker 2 died", worker_index=2)
    clone = pickle.loads(pickle.dumps(error))
    assert clone.worker_index == 2
    assert clone.code == "REPRO-CLUSTER-WORKER-LOST"


def test_instance_code_override_survives():
    error = ReproError("flattened", code="REPRO-CUSTOM")
    clone = pickle.loads(pickle.dumps(error))
    assert clone.code == "REPRO-CUSTOM"


def test_fallback_event_round_trip():
    event = FallbackEvent(from_strategy="twigjoin", to_strategy="nljoin",
                          error_code="REPRO-BUDGET-WALL",
                          error="wall budget exceeded")
    assert pickle.loads(pickle.dumps(event)) == event


def test_service_stats_round_trip():
    metrics = ServiceMetrics()
    metrics.record_submitted()
    metrics.record_accepted()
    metrics.record_done(latency_seconds=0.01, queue_seconds=0.001,
                        failed=False)
    stats = metrics.stats(queue_depth=1, in_flight=2)
    clone = pickle.loads(pickle.dumps(stats))
    assert clone == stats
