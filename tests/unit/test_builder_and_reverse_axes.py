"""The document builder, and end-to-end queries over reverse axes."""

import pytest

from repro import Engine
from repro.xmltree import serialize
from repro.xmltree.builder import E, build_document


class TestBuilder:
    def test_simple_tree(self):
        doc = build_document(E("a", E("b"), E("c", "text")))
        root = doc.root.document_element
        assert root.name == "a"
        assert [child.name for child in root.children] == ["b", "c"]
        assert root.children[1].string_value() == "text"

    def test_attributes(self):
        doc = build_document(E("a", id="1", class_="x"))
        element = doc.root.document_element
        assert element.get_attribute("id") == "1"
        assert element.get_attribute("class") == "x"

    def test_attribute_values_stringified(self):
        doc = build_document(E("a", n=42))
        assert doc.root.document_element.get_attribute("n") == "42"

    def test_regions_assigned(self):
        doc = build_document(E("a", E("b", E("c")), E("d")))
        pres = [node.pre for node in doc.nodes_by_pre]
        assert pres == list(range(doc.size))

    def test_rejects_bad_children(self):
        with pytest.raises(TypeError):
            build_document(E("a", 42))  # type: ignore[arg-type]

    def test_round_trips_through_serializer(self):
        doc = build_document(E("a", E("b", "hi", id="1")))
        assert serialize(doc.root) == '<a><b id="1">hi</b></a>'

    def test_queryable(self):
        doc = build_document(
            E("site",
              E("person", E("name", "John"), id="p1"),
              E("person", E("name", "Mary"), id="p2")))
        engine = Engine(doc)
        assert [n.string_value()
                for n in engine.run("$input//person[@id='p2']/name")] == [
            "Mary"]


@pytest.fixture(scope="module")
def reverse_engine():
    doc = build_document(
        E("library",
          E("shelf",
            E("book", E("title", "A"), E("page"), E("page")),
            E("book", E("title", "B")),
            floor="1"),
          E("shelf",
            E("book", E("title", "C"), E("page")),
            floor="2")))
    return Engine(doc)


class TestReverseAxesEndToEnd:
    """Reverse axes stay navigational TreeJoins but must still evaluate
    correctly through the whole pipeline."""

    def test_parent_axis(self, reverse_engine):
        result = reverse_engine.run("$input//page/parent::book/title")
        assert [n.string_value() for n in result] == ["A", "C"]

    def test_ancestor_axis(self, reverse_engine):
        result = reverse_engine.run("$input//page/ancestor::shelf/@floor")
        assert [n.string_value() for n in result] == ["1", "2"]

    def test_ancestor_or_self(self, reverse_engine):
        result = reverse_engine.run(
            "count($input//book[1]/ancestor-or-self::*)")
        # first book per shelf: {bookA, shelf1, library, bookC, shelf2}
        assert result == [5]

    def test_following_sibling(self, reverse_engine):
        result = reverse_engine.run(
            "$input//book[page]/following-sibling::book/title")
        assert [n.string_value() for n in result] == ["B"]

    def test_preceding_sibling(self, reverse_engine):
        result = reverse_engine.run(
            "$input//book[title = 'B']/preceding-sibling::book/title")
        assert [n.string_value() for n in result] == ["A"]

    def test_following_axis(self, reverse_engine):
        result = reverse_engine.run(
            "count($input//book[title = 'B']/following::book)")
        assert result == [1]

    def test_preceding_axis(self, reverse_engine):
        result = reverse_engine.run(
            "count($input//book[title = 'C']/preceding::book)")
        assert result == [2]

    def test_dot_dot_abbreviation(self, reverse_engine):
        result = reverse_engine.run("$input//page/../title")
        assert [n.string_value() for n in result] == ["A", "C"]

    def test_reverse_axis_results_in_document_order(self, reverse_engine):
        """Path steps over reverse axes still produce document order
        (the surrounding ddo re-sorts)."""
        result = reverse_engine.run("$input//page/ancestor::*")
        pres = [n.pre for n in result]
        assert pres == sorted(set(pres))

    @pytest.mark.parametrize("strategy", ["nljoin", "twigjoin", "scjoin",
                                          "streaming", "stacktree"])
    def test_reverse_axes_under_all_strategies(self, reverse_engine,
                                               strategy):
        reference = reverse_engine.run(
            "$input//page/ancestor::shelf/@floor", optimize=False)
        got = reverse_engine.run("$input//page/ancestor::shelf/@floor",
                                 strategy=strategy)
        assert [n.pre for n in got] == [n.pre for n in reference]

    def test_mixed_forward_reverse(self, reverse_engine):
        result = reverse_engine.run(
            "$input//page/ancestor::shelf/book[1]/title")
        assert [n.string_value() for n in result] == ["A", "C"]
