"""The ``//`` abbreviation resolver and its positional safety condition."""

from repro.xmltree.axes import Axis
from repro.xquery import ast, parse_query
from repro.xquery.abbrev import resolve_abbreviations


def axes_of(expr):
    found = []

    def walk(node):
        if isinstance(node, ast.AxisStep):
            found.append(node.axis)
        for child in ast.iter_children(node):
            walk(child)

    walk(expr)
    return found


def resolved(text):
    return resolve_abbreviations(parse_query(text))


class TestCollapse:
    def test_simple_descendant(self):
        expr = resolved("$d//person")
        assert Axis.DESCENDANT in axes_of(expr)
        assert Axis.DESCENDANT_OR_SELF not in axes_of(expr)

    def test_chained_descendants(self):
        expr = resolved("$d//a//b")
        axes = axes_of(expr)
        assert axes.count(Axis.DESCENDANT) == 2
        assert Axis.DESCENDANT_OR_SELF not in axes

    def test_mixed_with_child(self):
        expr = resolved("$d//a/b//c")
        axes = axes_of(expr)
        assert axes.count(Axis.DESCENDANT) == 2
        assert axes.count(Axis.CHILD) == 1

    def test_leading_double_slash(self):
        expr = resolved("//person")
        assert Axis.DESCENDANT in axes_of(expr)

    def test_inside_flwor(self):
        expr = resolved("for $x in $d//person return $x//name")
        assert axes_of(expr).count(Axis.DESCENDANT) == 2

    def test_inside_predicate(self):
        expr = resolved("$d/a[.//b]")
        assert Axis.DESCENDANT in axes_of(expr)

    def test_node_predicate_still_collapses(self):
        expr = resolved("$d//person[emailaddress]")
        assert Axis.DESCENDANT in axes_of(expr)

    def test_comparison_predicate_still_collapses(self):
        expr = resolved('$d//person[name = "x"]')
        assert Axis.DESCENDANT in axes_of(expr)

    def test_boolean_function_predicate_collapses(self):
        expr = resolved("$d//person[not(emailaddress)]")
        assert Axis.DESCENDANT in axes_of(expr)

    def test_and_of_safe_predicates_collapses(self):
        expr = resolved("$d//person[emailaddress and profile]")
        assert Axis.DESCENDANT in axes_of(expr)


class TestSafetyConditions:
    """``//a[pos]`` is NOT ``descendant::a[pos]`` — the collapse must not
    fire when the predicate could be positional."""

    def test_numeric_literal_blocks(self):
        expr = resolved("$d//person[1]")
        assert Axis.DESCENDANT_OR_SELF in axes_of(expr)
        assert Axis.DESCENDANT not in axes_of(expr)

    def test_position_function_blocks(self):
        expr = resolved("$d//person[position() = 1]")
        assert Axis.DESCENDANT_OR_SELF in axes_of(expr)

    def test_last_function_blocks(self):
        expr = resolved("$d//person[position() = last()]")
        assert Axis.DESCENDANT_OR_SELF in axes_of(expr)

    def test_variable_predicate_blocks(self):
        # A variable could hold a number → positional → unsafe.
        expr = resolved("$d//person[$n]")
        assert Axis.DESCENDANT_OR_SELF in axes_of(expr)

    def test_arithmetic_blocks(self):
        expr = resolved("$d//person[1 + 1]")
        assert Axis.DESCENDANT_OR_SELF in axes_of(expr)

    def test_count_blocks(self):
        expr = resolved("$d//person[count(emailaddress)]")
        assert Axis.DESCENDANT_OR_SELF in axes_of(expr)

    def test_unsafe_conjunct_blocks(self):
        expr = resolved("$d//person[emailaddress and $n]")
        assert Axis.DESCENDANT_OR_SELF in axes_of(expr)

    def test_semantics_preserved_either_way(self):
        """The collapsed and uncollapsed forms must evaluate equally."""
        from repro import Engine
        engine = Engine.from_xml(
            "<d><a><p><q/></p><p/></a><p><q/></p></d>")
        collapsed = [n.pre for n in engine.run("$input//p[q]")]
        explicit = [n.pre for n in engine.run(
            "$input/descendant-or-self::node()/child::p[child::q]")]
        assert collapsed == explicit

    def test_positional_semantics_preserved(self):
        """//p[1] (kept uncollapsed) differs from /descendant::p[1]."""
        from repro import Engine
        engine = Engine.from_xml("<d><a><p i='1'/><p i='2'/></a>"
                                 "<p i='3'/></d>")
        double_slash = [n.get_attribute("i")
                        for n in engine.run("$input//p[1]")]
        descendant = [n.get_attribute("i")
                      for n in engine.run("$input/descendant::p[1]")]
        assert double_slash == ["1", "3"]
        assert descendant == ["1"]
